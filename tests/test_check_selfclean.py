"""The repo's own sources pass ``repro check`` — and stay that way.

Self-cleanliness is the acceptance bar that makes the linter a CI gate
rather than advice: any new finding in ``src/`` fails this test before it
fails the pipeline.  The companion tests prove the gate has teeth by
seeding violations into copies of real modules and into temp trees fed
through the CLI.
"""

from pathlib import Path

from repro.check.lint import lint_paths, lint_source
from repro.cli import main

SRC = Path(__file__).resolve().parent.parent / "src"


def test_src_tree_is_self_clean():
    findings = lint_paths([str(SRC)])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_seeded_wall_clock_in_engine_copy_is_detected():
    engine = (SRC / "repro" / "sim" / "engine.py").read_text()
    seeded = engine + "\n\nimport time\n_T0 = time.time()\n"
    rules = [f.rule for f in lint_source(seeded, "repro/sim/engine.py")]
    assert "R002" in rules


def test_seeded_set_iteration_in_controller_copy_is_detected():
    controller = (SRC / "repro" / "ring" / "controller.py").read_text()
    seeded = controller + (
        "\n\ndef _bad_drain(keys: set) -> None:\n"
        "    for key in keys:\n"
        "        print(key)\n"
    )
    rules = [f.rule for f in lint_source(seeded, "repro/ring/controller.py")]
    assert "R003" in rules


def test_cli_check_clean_tree_exits_zero(capsys):
    assert main(["check", str(SRC)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_cli_check_fails_on_violation(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "hot.py").write_text("import time\nx = time.time()\n")
    assert main(["check", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "R002" in out and "1 finding(s)" in out


def test_cli_check_json_output(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "hot.py").write_text("import random\nr = random.Random(1)\n")
    assert main(["check", "--json", str(tmp_path)]) == 1
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "R001"


def test_cli_check_self_test_passes(capsys):
    assert main(["check", "--self-test"]) == 0
    assert "self-test OK" in capsys.readouterr().out
