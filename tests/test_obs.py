"""The observability layer: tracer, metrics registry, ambient session,
and the determinism guarantee (hooks observe, never schedule)."""

import json

import pytest

from repro import obs
from repro.obs import MetricsRegistry, ObsSession, Tracer, metric_key, parse_metric_key
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


class TestTracer:
    def test_span_and_instant_recorded(self):
        tracer = Tracer()
        tracer.span("service", "resource", 1.0, 2.0, "disk0", args={"bytes": 512})
        tracer.instant("send", "ring", 3.0, "outer-ring")
        assert tracer.event_count == 2

    def test_chrome_trace_shape(self):
        tracer = Tracer()
        tracer.span("work", "ip", 0.5, 1.5, "IP1")
        doc = tracer.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        # Thread-name metadata precedes the recorded events.
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "IP1"
        span = [e for e in events if e["ph"] == "X"][0]
        assert span["ts"] == 500.0 and span["dur"] == 1500.0  # ms -> us

    def test_write_produces_valid_json(self, tmp_path):
        tracer = Tracer()
        tracer.instant("event", "sim", 1.0, "simulator")
        path = tmp_path / "out.trace.json"
        tracer.write(str(path))
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert all("ph" in e and "ts" in e for e in doc["traceEvents"] if e["ph"] != "M")

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.span("x", "c", 0.0, 1.0, "t")
        tracer.instant("y", "c", 0.0, "t")
        tracer.counter("z", 0.0, {"v": 1})
        assert tracer.event_count == 0

    def test_tracks_map_to_stable_tids(self):
        tracer = Tracer()
        tracer.instant("a", "c", 0.0, "first")
        tracer.instant("b", "c", 1.0, "second")
        tracer.instant("c", "c", 2.0, "first")
        events = [e for e in tracer.chrome_trace()["traceEvents"] if e["ph"] == "i"]
        assert events[0]["tid"] == events[2]["tid"] != events[1]["tid"]


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("sim.events") == "sim.events"
        assert parse_metric_key("sim.events") == ("sim.events", {})

    def test_labels_sorted_and_roundtrip(self):
        key = metric_key("ring.bytes", {"ring": "outer-ring", "run": 1})
        assert key == "ring.bytes{ring=outer-ring,run=1}"
        assert parse_metric_key(key) == ("ring.bytes", {"ring": "outer-ring", "run": "1"})


class TestMetricsRegistry:
    def test_counter_tally_series_gauge(self):
        reg = MetricsRegistry()
        reg.counter("n", kind="a").add(2)
        reg.counter("n", kind="a").add(3)
        reg.tally("t").observe(4.0)
        reg.series("s", run=1).record(1.0, 10)
        reg.set_gauge("g", 0.5, machine="direct")
        assert reg.value("n", kind="a") == 5
        assert reg.value("g", machine="direct") == 0.5
        report = reg.report()
        assert report["counters"]["n{kind=a}"] == 5
        assert report["tallies"]["t"]["count"] == 1
        assert report["series"]["s{run=1}"]["last"] == 10

    def test_labels_namespace_instruments(self):
        reg = MetricsRegistry()
        reg.counter("n", kind="a").add()
        reg.counter("n", kind="b").add()
        assert reg.value("n", kind="a") == 1
        assert reg.value("n", kind="b") == 1

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("n").add(5)
        reg.tally("t").observe(1.0)
        reg.set_gauge("g", 1.0)
        assert reg.value("n") == 0.0
        report = reg.report()
        assert report["counters"] == {} and report["gauges"] == {}


class TestAmbientSession:
    def test_default_ambient_is_disabled(self):
        session = obs.ambient()
        assert not session.enabled

    def test_observe_installs_and_restores(self):
        before = obs.ambient()
        with obs.observe() as session:
            assert obs.ambient() is session
            assert session.tracer.enabled and session.metrics.enabled
        assert obs.ambient() is before

    def test_observe_axes_independent(self):
        with obs.observe(trace=True, metrics=False) as session:
            assert session.tracer.enabled and not session.metrics.enabled
        with obs.observe(trace=False, metrics=True) as session:
            assert not session.tracer.enabled and session.metrics.enabled

    def test_simulator_binds_session_at_construction(self):
        with obs.observe() as session:
            sim = Simulator()
        assert sim.tracer is session.tracer
        assert sim.metrics is session.metrics
        assert sim.run_id > 0
        assert Simulator().run_id == 0  # outside the block: disabled, unlabeled

    def test_explicit_arguments_beat_ambient(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        assert sim.tracer is tracer
        assert sim.metrics is obs.ambient().metrics


class TestWiring:
    def test_simulator_events_traced_and_counted(self):
        with obs.observe() as session:
            sim = Simulator()
            sim.schedule(1.0, lambda: None, label="tick")
            sim.run()
        assert session.tracer.event_count == 1
        assert session.metrics.value("sim.events") == 1

    def test_resource_service_traced_with_queue_series(self):
        with obs.observe() as session:
            sim = Simulator()
            res = Resource(sim, "disk0")
            res.submit(3.0, nbytes=100)
            sim.run()
        spans = [
            e
            for e in session.tracer.chrome_trace()["traceEvents"]
            if e["ph"] == "X" and e["name"] == "disk0.service"
        ]
        assert spans and spans[0]["args"]["bytes"] == 100
        report = session.metrics.report()
        key = metric_key(
            "resource.queue_depth", {"resource": "disk0", "run": sim.run_id}
        )
        assert key in report["series"]


class TestDeterminism:
    """Tracing must never perturb simulation results."""

    def test_experiment_identical_with_and_without_observability(self):
        from repro.experiments import figure_3_1

        plain = figure_3_1.run(scale=0.05, selectivity=0.3, processors=(5,))
        with obs.observe() as session:
            observed = figure_3_1.run(scale=0.05, selectivity=0.3, processors=(5,))
        assert observed.rows == plain.rows
        assert session.tracer.event_count > 0
        # And a second uninstrumented run is identical again.
        again = figure_3_1.run(scale=0.05, selectivity=0.3, processors=(5,))
        assert again.rows == plain.rows

    def test_null_instruments_are_shared(self):
        assert Tracer(enabled=False).event_count == 0
        assert NULL_TRACER.event_count == 0
        session = ObsSession()
        assert not session.enabled


class TestStreamingTracer:
    def test_stream_flushes_incrementally_and_close_finalizes(self, tmp_path):
        path = str(tmp_path / "stream.trace.json")
        tracer = Tracer(stream_path=path, flush_every=3)
        for i in range(7):
            tracer.span(f"e{i}", "test", float(i), 1.0, "track-a")
        # Two batches of three are on disk; one event is still buffered.
        assert tracer.event_count == 7
        total = tracer.close()
        assert total == 8  # 7 events + 1 thread_name metadata record
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == [f"e{i}" for i in range(7)]

    def test_close_is_idempotent_and_blocks_further_recording(self, tmp_path):
        path = str(tmp_path / "s.json")
        tracer = Tracer(stream_path=path, flush_every=1)
        tracer.span("a", "t", 0.0, 1.0, "x")
        first = tracer.close()
        assert tracer.close() == first
        with pytest.raises(ValueError):
            tracer.span("b", "t", 1.0, 1.0, "x")  # flushes, and the file is closed

    def test_streamed_tracer_refuses_in_memory_export(self, tmp_path):
        tracer = Tracer(stream_path=str(tmp_path / "s.json"), flush_every=1)
        tracer.span("a", "t", 0.0, 1.0, "x")
        with pytest.raises(ValueError):
            tracer.chrome_trace()

    def test_stream_matches_buffered_event_set(self, tmp_path):
        path = str(tmp_path / "s.json")
        streamed = Tracer(stream_path=path, flush_every=2)
        buffered = Tracer()
        for t in (streamed, buffered):
            t.span("a", "c", 0.0, 1.0, "x")
            t.instant("i", "c", 0.5, "x")
            t.counter("n", 0.5, {"v": 1.0})
            t.flow("f", "c", 0.25, "x", 7, phase="s")
            t.flow("f", "c", 0.25, "x", 7, phase="f")
        streamed.close()
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        key = lambda e: json.dumps(e, sort_keys=True)
        assert sorted(map(key, doc["traceEvents"])) == sorted(
            map(key, buffered.chrome_trace()["traceEvents"])
        )

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(stream_path="x.json", flush_every=0)


class TestMetricsRendering:
    """Byte-stable report/dump rendering and the CSV flattening."""

    def _filled(self, order):
        registry = MetricsRegistry()
        for name in order:
            registry.counter(name).add(1)
        registry.set_gauge("z.gauge", 2.0)
        registry.tally("t.lat").observe(5.0)
        registry.series("s.depth").record(0.0, 1.0)
        return registry

    def test_dump_bytes_independent_of_creation_order(self):
        a = self._filled(["b.count", "a.count"])
        b = self._filled(["a.count", "b.count"])
        assert json.dumps(a.dump(), sort_keys=False) == json.dumps(
            b.dump(), sort_keys=False
        )

    def test_report_csv_stable_and_parseable(self):
        from repro.obs.metrics import report_csv

        a = report_csv(self._filled(["b.count", "a.count"]).report())
        b = report_csv(self._filled(["a.count", "b.count"]).report())
        assert a == b
        lines = a.strip().split("\n")
        assert lines[0] == "section,key,field,value"
        assert any(line.startswith("counters,a.count,value,") for line in lines)
        assert any(line.startswith("tallies,t.lat,mean,") for line in lines)

    def test_report_csv_quotes_label_commas(self):
        from repro.obs.metrics import report_csv

        registry = MetricsRegistry()
        registry.counter("c", x="1", y="2").add(3)
        text = report_csv(registry.report())
        assert '"c{x=1,y=2}"' in text
