"""The bench trajectory file and its regression gate."""

import json

from repro.sweep import bench


def _report(**rates):
    return {
        "schema": bench.BENCH_SCHEMA,
        "experiments": [
            {"experiment": name, "events_per_sec": rate, "wall_s": 1.0, "sim_events": rate}
            for name, rate in rates.items()
        ],
    }


def test_load_history_missing_file_is_empty(tmp_path):
    history = bench.load_history(str(tmp_path / "nope.json"))
    assert history == {"schema": bench.HISTORY_SCHEMA, "entries": []}


def test_load_history_wraps_legacy_v1_report(tmp_path):
    path = tmp_path / "BENCH.json"
    legacy = _report(sim_core=1000)
    path.write_text(json.dumps(legacy))
    history = bench.load_history(str(path))
    assert history["schema"] == bench.HISTORY_SCHEMA
    assert history["entries"] == [legacy]


def test_append_bench_grows_the_trajectory(tmp_path):
    path = str(tmp_path / "BENCH.json")
    bench.append_bench(_report(sim_core=1000), path)
    history = bench.append_bench(_report(sim_core=1100), path)
    assert [e["experiments"][0]["events_per_sec"] for e in history["entries"]] == [1000, 1100]
    on_disk = json.loads(open(path).read())
    assert on_disk["schema"] == bench.HISTORY_SCHEMA
    assert len(on_disk["entries"]) == 2


def test_append_upgrades_legacy_file_in_place(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(_report(sim_core=900)))
    history = bench.append_bench(_report(sim_core=950), str(path))
    assert len(history["entries"]) == 2
    assert json.loads(path.read_text())["schema"] == bench.HISTORY_SCHEMA


def test_compare_entries_passes_within_threshold():
    prev = _report(sim_core=1000, figure_3_1=500)
    new = _report(sim_core=850, figure_3_1=2000)  # -15% and a big win
    assert bench.compare_entries(prev, new) == []


def test_compare_entries_fails_beyond_threshold():
    prev = _report(sim_core=1000)
    new = _report(sim_core=700)  # -30% > the 20% allowance
    failures = bench.compare_entries(prev, new)
    assert len(failures) == 1
    assert "sim_core" in failures[0]


def test_compare_entries_skips_experiments_not_in_both():
    prev = _report(sim_core=1000)
    new = _report(brand_new=10)
    assert bench.compare_entries(prev, new) == []


def test_compare_entries_custom_threshold():
    prev = _report(sim_core=1000)
    new = _report(sim_core=950)
    assert bench.compare_entries(prev, new, threshold=0.01) != []
