"""Relations and page tables."""

import pytest

from repro.errors import PageError
from repro.relational.page import Page
from repro.relational.relation import PageTable, Relation


class TestRelationShape:
    def test_from_rows_cardinality(self, simple_relation):
        assert simple_relation.cardinality == 100

    def test_page_count_matches_packing(self, simple_relation):
        per_page = simple_relation.page(0).capacity
        expected = -(-100 // per_page)
        assert simple_relation.page_count == expected

    def test_byte_size_is_page_granular(self, simple_relation):
        assert simple_relation.byte_size == simple_relation.page_count * 256

    def test_data_bytes(self, simple_relation):
        assert simple_relation.data_bytes == 100 * simple_relation.schema.record_width

    def test_len(self, simple_relation):
        assert len(simple_relation) == 100

    def test_rows_iterates_all_in_order(self, simple_relation):
        assert [r[0] for r in simple_relation.rows()] == list(range(100))

    def test_page_out_of_range_raises(self, simple_relation):
        with pytest.raises(PageError):
            simple_relation.page(999)

    def test_relation_ids_unique(self, simple_schema):
        a = Relation("a", simple_schema)
        b = Relation("b", simple_schema)
        assert a.relation_id != b.relation_id


class TestRelationMutation:
    def test_insert_opens_new_page_when_full(self, pair_schema):
        rel = Relation("r", pair_schema, page_bytes=64)  # 3 rows/page
        for i in range(4):
            rel.insert((i, i))
        assert rel.page_count == 2

    def test_insert_many_returns_count(self, pair_schema):
        rel = Relation("r", pair_schema, page_bytes=64)
        assert rel.insert_many([(i, i) for i in range(5)]) == 5

    def test_append_page_checks_width(self, simple_relation, pair_schema):
        alien = Page(pair_schema, 128)
        with pytest.raises(PageError):
            simple_relation.append_page(alien)

    def test_compact_removes_interior_slack(self, pair_schema):
        rel = Relation("r", pair_schema, page_bytes=64)
        partial = Page(pair_schema, 64)
        partial.append((1, 1))
        rel.append_page(partial)
        rel.append_page(partial.copy())
        rel.compact()
        assert rel.page_count == 1
        assert rel.cardinality == 2

    def test_empty_like(self, simple_relation):
        empty = simple_relation.empty_like("clone")
        assert empty.cardinality == 0
        assert empty.schema is simple_relation.schema
        assert empty.page_bytes == simple_relation.page_bytes


class TestBagEquality:
    def test_same_rows_ignores_page_boundaries(self, pair_schema):
        rows = [(i, i) for i in range(10)]
        a = Relation.from_rows("a", pair_schema, rows, page_bytes=64)
        b = Relation.from_rows("b", pair_schema, rows, page_bytes=256)
        assert a.same_rows_as(b)

    def test_same_rows_ignores_order(self, pair_schema):
        a = Relation.from_rows("a", pair_schema, [(1, 1), (2, 2)], page_bytes=64)
        b = Relation.from_rows("b", pair_schema, [(2, 2), (1, 1)], page_bytes=64)
        assert a.same_rows_as(b)

    def test_same_rows_respects_multiplicity(self, pair_schema):
        a = Relation.from_rows("a", pair_schema, [(1, 1), (1, 1)], page_bytes=64)
        b = Relation.from_rows("b", pair_schema, [(1, 1)], page_bytes=64)
        assert not a.same_rows_as(b)

    def test_row_multiset(self, pair_schema):
        rel = Relation.from_rows("r", pair_schema, [(1, 1), (1, 1), (2, 2)], page_bytes=64)
        assert rel.row_multiset() == {(1, 1): 2, (2, 2): 1}


class TestPageTable:
    def test_grows_then_completes(self, pair_schema):
        table = PageTable("op", pair_schema)
        table.add_page(0)
        table.add_page(1)
        assert table.page_count == 2
        table.mark_complete()
        assert table.complete

    def test_growth_after_complete_rejected(self, pair_schema):
        table = PageTable("op", pair_schema)
        table.mark_complete()
        with pytest.raises(PageError):
            table.add_page(0)

    def test_has_pages_is_the_enabling_rule(self, pair_schema):
        table = PageTable("op", pair_schema)
        assert not table.has_pages
        table.add_page(0)
        assert table.has_pages

    def test_relation_exports_complete_table(self, simple_relation):
        table = simple_relation.page_table()
        assert table.complete
        assert table.page_count == simple_relation.page_count
        assert list(table) == list(range(simple_relation.page_count))
