"""The fluent builder and the reference interpreter."""

import pytest

from repro.errors import QueryTreeError
from repro.relational import operators
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.query import execute
from repro.query.builder import delete_from, scan
from repro.query.interpreter import execute_node
from repro.query.tree import JoinNode, ProjectNode, QueryTree, RestrictNode


class TestBuilder:
    def test_scan_restrict(self, join_catalog):
        tree = scan("left_rel").restrict(attr("grp") == 1).tree("q")
        assert tree.restrict_count == 1
        tree.validate(join_catalog)

    def test_equijoin_shorthand(self, join_catalog):
        tree = scan("left_rel").equijoin(scan("right_rel"), "grp", "grp").tree()
        assert tree.join_count == 1
        tree.validate(join_catalog)

    def test_project(self, join_catalog):
        tree = scan("left_rel").project(["grp"]).tree()
        tree.validate(join_catalog)
        assert isinstance(tree.root, ProjectNode)

    def test_union(self, join_catalog):
        tree = scan("left_rel").union(scan("right_rel")).tree()
        tree.validate(join_catalog)

    def test_append_into(self, join_catalog):
        tree = scan("left_rel").append_into("right_rel").tree()
        tree.validate(join_catalog)
        assert tree.updated_relations() == ["right_rel"]

    def test_delete_from(self, join_catalog):
        tree = delete_from("left_rel", attr("k") < 5)
        tree.validate(join_catalog)

    def test_default_name_assigned(self, join_catalog):
        tree = scan("left_rel").tree()
        assert tree.name.startswith("Q")

    def test_chained_shape(self, join_catalog):
        tree = (
            scan("left_rel")
            .restrict(attr("k") < 50)
            .equijoin(scan("right_rel").restrict(attr("k") < 150), "grp", "grp")
            .project(["k", "k_1"])
            .tree("chained")
        )
        tree.validate(join_catalog)
        assert tree.depth == 4


class TestInterpreter:
    def test_restrict_matches_operator(self, join_catalog):
        tree = scan("left_rel").restrict(attr("grp") == 2).tree()
        expected = operators.restrict(join_catalog.get("left_rel"), attr("grp") == 2)
        assert execute(tree, join_catalog).same_rows_as(expected)

    def test_join_matches_operator(self, join_catalog):
        tree = scan("left_rel").equijoin(scan("right_rel"), "grp", "grp").tree()
        expected = operators.hash_join(
            join_catalog.get("left_rel"),
            join_catalog.get("right_rel"),
            attr("grp").equals_attr("grp"),
        )
        assert execute(tree, join_catalog).same_rows_as(expected)

    def test_join_algorithm_selectable(self, join_catalog):
        tree = scan("left_rel").equijoin(scan("right_rel"), "grp", "grp").tree()
        out = execute(tree, join_catalog, join_algorithm="hash")
        tree2 = scan("left_rel").equijoin(scan("right_rel"), "grp", "grp").tree()
        out2 = execute(tree2, join_catalog, join_algorithm="sort_merge")
        assert out.same_rows_as(out2)

    def test_project_dedup(self, join_catalog):
        tree = scan("left_rel").project(["grp"]).tree()
        assert execute(tree, join_catalog).cardinality == 10

    def test_union_dedup(self, join_catalog):
        tree = scan("left_rel").union(scan("left_rel")).tree()
        assert execute(tree, join_catalog).cardinality == 120

    def test_append_mutates_catalog(self, join_catalog):
        before = join_catalog.get("right_rel").cardinality
        tree = scan("left_rel").restrict(attr("k") < 10).append_into("right_rel").tree()
        out = execute(tree, join_catalog)
        assert join_catalog.get("right_rel").cardinality == before + 10
        assert out is join_catalog.get("right_rel")

    def test_delete_mutates_catalog(self, join_catalog):
        tree = delete_from("left_rel", attr("k") < 20)
        execute(tree, join_catalog)
        assert join_catalog.get("left_rel").cardinality == 100

    def test_scan_returns_base_relation(self, join_catalog):
        node = scan("left_rel").node
        assert execute_node(node, join_catalog) is join_catalog.get("left_rel")

    def test_empty_relation_flows_through(self, join_catalog):
        tree = scan("empty_rel").restrict(attr("k") == 1).tree()
        assert execute(tree, join_catalog).cardinality == 0

    def test_join_with_empty_side(self, join_catalog):
        tree = scan("left_rel").equijoin(scan("empty_rel"), "grp", "grp").tree()
        assert execute(tree, join_catalog).cardinality == 0

    def test_validation_runs_by_default(self, join_catalog):
        tree = scan("ghost").tree()
        with pytest.raises(QueryTreeError):
            execute(tree, join_catalog)

    def test_result_renamed_to_query(self, join_catalog):
        tree = scan("left_rel").restrict(attr("k") < 5).tree("myq")
        assert execute(tree, join_catalog).name == "myq.result"

    def test_deep_left_deep_chain(self, join_catalog):
        tree = (
            scan("left_rel")
            .restrict(attr("k") < 60)
            .equijoin(scan("right_rel").restrict(attr("k") < 140), "grp", "grp")
            .equijoin(scan("right_rel").restrict(attr("k") >= 140), "grp", "grp")
            .tree("deep")
        )
        out = execute(tree, join_catalog)
        # verify against composed operators
        l = operators.restrict(join_catalog.get("left_rel"), attr("k") < 60)
        r1 = operators.restrict(join_catalog.get("right_rel"), attr("k") < 140)
        r2 = operators.restrict(join_catalog.get("right_rel"), attr("k") >= 140)
        j1 = operators.hash_join(l, r1, attr("grp").equals_attr("grp"))
        j2 = operators.hash_join(j1, r2, attr("grp").equals_attr("grp"))
        assert out.same_rows_as(j2)
