"""Write transactions through the machines: locks, faults, serving, dirty pages.

The execution-side half of the durability work (ISSUE 10): the mixed
update workload runs byte-identically on all three machines against the
interpreter oracle; the MC lock manager's S->X upgrade path refuses
instead of deadlocking; soft faults (lossy ring, IC failover) abort and
retry write transactions without ever corrupting durable state; the
serving mode's ``write_mix`` reports abort/retry percentiles; and the
storage substrate tracks page dirtiness for the WAL to flush.
"""

import pytest

from repro.direct.cache import DiskCache
from repro.direct.exec_model import ExecModel
from repro.direct.traffic import TrafficMeter
from repro.errors import ConcurrencyError, WorkloadError
from repro.experiments.chaos_sweep import (
    STATEFUL_FAULTS,
    WRITE_MACHINE_FAULTS,
    _spec_for,
    run_faulted_write_benchmark,
)
from repro.faults import FaultPlan
from repro.recovery.harness import run_crash_trial
from repro.relational.heapfile import HeapFile, RowId
from repro.relational.page import Page
from repro.ring.concurrency import LockManager, LockMode, LockRequest
from repro.serve import ServeConfig, serve
from repro.sim.engine import Simulator
from repro.sim.resources import Resource
from repro.workload import generate_benchmark_database
from repro.workload.updates import mixed_update_workload


def req(name, shared=(), exclusive=()):
    return LockRequest(
        query_name=name, shared=frozenset(shared), exclusive=frozenset(exclusive)
    )


# ----------------------------------------------------------- workload stream


class TestMixedUpdateWorkload:
    def setup_method(self):
        self.db = generate_benchmark_database(scale=0.02, seed=9, page_bytes=2048)

    def test_deterministic_in_seed(self):
        a = mixed_update_workload(self.db.catalog, self.db.relation_names, seed=1)
        b = mixed_update_workload(self.db.catalog, self.db.relation_names, seed=1)
        assert [t.name for t in a] == [t.name for t in b]
        assert [type(t.root).__name__ for t in a] == [
            type(t.root).__name__ for t in b
        ]

    def test_write_fraction_extremes(self):
        from repro.recovery.apply import write_target

        reads = mixed_update_workload(
            self.db.catalog, self.db.relation_names, seed=2, write_fraction=0.0
        )
        writes = mixed_update_workload(
            self.db.catalog, self.db.relation_names, seed=2, write_fraction=1.0
        )
        assert all(write_target(t.root) is None for t in reads)
        assert all(write_target(t.root) is not None for t in writes)

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            mixed_update_workload(
                self.db.catalog, self.db.relation_names, write_fraction=1.5
            )


# -------------------------------------------------- machines vs the oracle


class TestWriteExecution:
    @pytest.mark.parametrize("machine", ["ring", "direct", "dataflow"])
    def test_all_write_stream_matches_interpreter(self, machine):
        trial = run_crash_trial(
            machine=machine, seed=8, crash_rate=0.0, write_fraction=1.0, queries=6
        )
        assert trial.commits == 6
        assert trial.byte_identical
        assert trial.ok


# ------------------------------------------------------------- lock upgrades


class TestLockUpgrade:
    def test_sole_holder_upgrades(self):
        lm = LockManager()
        lm.try_acquire(req("w", shared={"r"}))
        assert lm.try_upgrade("w", "r")
        assert lm.mode_of("r") is LockMode.EXCLUSIVE
        # The upgraded lock now excludes readers.
        assert not lm.try_acquire(req("q", shared={"r"}))

    def test_second_holder_refuses_upgrade(self):
        lm = LockManager()
        lm.try_acquire(req("w1", shared={"r"}))
        lm.try_acquire(req("w2", shared={"r"}))
        # Non-blocking refusal on both sides — the classic upgrade
        # deadlock cannot form; a refused writer aborts and retries.
        assert not lm.try_upgrade("w1", "r")
        assert not lm.try_upgrade("w2", "r")
        assert lm.mode_of("r") is LockMode.SHARED

    def test_refused_holder_releases_then_other_upgrades(self):
        lm = LockManager()
        lm.try_acquire(req("w1", shared={"r"}))
        lm.try_acquire(req("w2", shared={"r"}))
        assert not lm.try_upgrade("w2", "r")
        lm.release("w1")
        assert lm.try_upgrade("w2", "r")
        assert lm.mode_of("r") is LockMode.EXCLUSIVE

    def test_already_exclusive_is_idempotent(self):
        lm = LockManager()
        lm.try_acquire(req("w", exclusive={"r"}))
        assert lm.try_upgrade("w", "r")
        assert lm.mode_of("r") is LockMode.EXCLUSIVE

    def test_upgrade_without_any_lock_raises(self):
        with pytest.raises(ConcurrencyError):
            LockManager().try_upgrade("ghost", "r")

    def test_upgrade_without_s_on_relation_raises(self):
        lm = LockManager()
        lm.try_acquire(req("w", shared={"other"}))
        with pytest.raises(ConcurrencyError):
            lm.try_upgrade("w", "r")

    def test_release_after_upgrade_frees_relation(self):
        lm = LockManager()
        lm.try_acquire(req("w", shared={"r"}))
        lm.try_upgrade("w", "r")
        lm.release("w")
        assert lm.try_acquire(req("q", exclusive={"r"}))


# ------------------------------------------------- faulted write benchmarks


class TestFaultedWrites:
    def run_cell(self, machine, fault, rate, seed=2027):
        plan = FaultPlan(seed=seed, specs=(_spec_for(fault, rate),))
        return run_faulted_write_benchmark(
            machine, plan, scale=0.02, queries=8, processors=4, seed=seed
        )

    def test_ring_survives_ic_failover(self):
        cell = self.run_cell("ring", "ic_failure", 0.3)
        assert cell["all_correct"]
        assert cell["commits"] > 0

    def test_ring_survives_lossy_ring(self):
        cell = self.run_cell("ring", "ring_drop", 0.05)
        assert cell["all_correct"]
        drops = sum(
            n for key, n in cell["counters"].items() if key.startswith("ring.drop")
        )
        assert drops > 0

    def test_direct_survives_disk_retries(self):
        cell = self.run_cell("direct", "disk_read_error", 0.1)
        assert cell["all_correct"]

    def test_stateful_faults_not_in_read_grid(self):
        from repro.experiments.chaos_sweep import MACHINE_FAULTS

        for faults in MACHINE_FAULTS.values():
            assert not (set(faults) & set(STATEFUL_FAULTS))
        assert set(STATEFUL_FAULTS) == {
            "machine_crash", "torn_page", "log_tail_corrupt",
        }

    def test_unknown_write_machine_rejected(self):
        from repro.errors import FaultError

        plan = FaultPlan(seed=1, specs=(_spec_for("ic_failure", 0.1),))
        assert "dataflow" not in WRITE_MACHINE_FAULTS
        with pytest.raises(FaultError):
            run_faulted_write_benchmark("dataflow", plan)


# ------------------------------------------------------------ serving writes


SERVE_BASE = dict(
    rate_qps=20.0,
    duration_ms=1200.0,
    scale=0.02,
    b_domain=25,
    seed=11,
    processors=4,
    max_inflight=4,
    queue_limit=16,
)


class TestServeWriteMix:
    def test_write_mix_reports_retry_percentiles(self):
        slo = serve(ServeConfig(machine="ring", write_mix=0.4, **SERVE_BASE))
        writes = slo["writes"]
        assert writes["commits"] > 0
        assert 0.0 <= writes["abort_rate"] <= 1.0
        assert writes["retries_p50"] <= writes["retries_p99"] <= writes["retries_max"]

    def test_zero_write_mix_has_no_writes_section(self):
        slo = serve(ServeConfig(machine="ring", write_mix=0.0, **SERVE_BASE))
        assert "writes" not in slo

    def test_write_mix_is_deterministic(self):
        import json

        config = ServeConfig(machine="ring", write_mix=0.4, **SERVE_BASE)
        a = json.dumps(serve(config), sort_keys=True)
        b = json.dumps(serve(config), sort_keys=True)
        assert a == b

    def test_write_mix_out_of_range_rejected(self):
        with pytest.raises(WorkloadError, match="write_mix"):
            serve(ServeConfig(machine="ring", write_mix=1.5, **SERVE_BASE))

    @pytest.mark.parametrize("machine", ["direct", "dataflow"])
    def test_write_mix_needs_the_lock_manager(self, machine):
        with pytest.raises(WorkloadError, match="lock manager"):
            serve(ServeConfig(machine=machine, write_mix=0.2, **SERVE_BASE))


# --------------------------------------------------------- dirty page tracking


class TestPageDirty:
    def test_fresh_page_is_clean(self, pair_schema):
        assert not Page(pair_schema, page_bytes=64).dirty

    def test_append_marks_dirty(self, pair_schema):
        page = Page(pair_schema, page_bytes=64)
        page.append((1, 2))
        assert page.dirty

    def test_mutate_row_returns_old_and_marks_dirty(self, pair_schema):
        page = Page(pair_schema, page_bytes=64)
        page.append((1, 2))
        page.mark_clean()
        assert page.mutate_row(0, (9, 9)) == (1, 2)
        assert page.dirty
        assert page.row(0) == (9, 9)

    def test_mutate_row_bounds_checked(self, pair_schema):
        from repro.errors import PageError

        page = Page(pair_schema, page_bytes=64)
        with pytest.raises(PageError):
            page.mutate_row(0, (1, 1))

    def test_mutate_row_validates(self, pair_schema):
        page = Page(pair_schema, page_bytes=64)
        page.append((1, 2))
        with pytest.raises(Exception):
            page.mutate_row(0, ("bad", 1))

    def test_from_bytes_round_trip_is_clean(self, pair_schema):
        page = Page(pair_schema, page_bytes=64)
        page.append((1, 2))
        restored = Page.from_bytes(pair_schema, page.to_bytes())
        assert not restored.dirty
        assert list(restored) == [(1, 2)]

    def test_copy_preserves_dirty(self, pair_schema):
        page = Page(pair_schema, page_bytes=64)
        page.append((1, 2))
        assert page.copy().dirty
        page.mark_clean()
        assert not page.copy().dirty


class TestHeapFileDirty:
    def make_heap(self, schema, rows=6):
        hf = HeapFile("h", schema, page_bytes=64)
        hf.insert_many([(i, i * 10) for i in range(rows)])
        return hf

    def test_insert_dirties_touched_pages(self, pair_schema):
        hf = self.make_heap(pair_schema)
        assert hf.dirty_page_numbers() == list(range(hf.page_count))

    def test_flush_dirty_without_cache_clears(self, pair_schema):
        hf = self.make_heap(pair_schema)
        flushed = hf.flush_dirty()
        assert flushed == hf.page_count
        assert hf.dirty_page_numbers() == []
        assert hf.flush_dirty() == 0

    def test_mutation_redirties_one_page(self, pair_schema):
        hf = self.make_heap(pair_schema)
        hf.flush_dirty()
        hf.delete(RowId(1, 0))
        assert hf.dirty_page_numbers() == [1]

    def test_flush_dirty_through_disk_cache(self, pair_schema):
        hf = self.make_heap(pair_schema)
        sim = Simulator()
        ports = Resource(sim, "ports", capacity=2)
        disks = [Resource(sim, "d0")]
        cache = DiskCache(sim, TrafficMeter(), ExecModel(page_bytes=64), 8, ports, disks)
        flushed = hf.flush_dirty(cache)
        sim.run()
        assert flushed == hf.page_count
        assert hf.dirty_page_numbers() == []
