"""The shared disk cache: hits, misses, spills, broadcast sharing."""

import pytest

from repro.direct import traffic as tl
from repro.direct.cache import DiskCache, PageRef
from repro.direct.exec_model import ExecModel
from repro.direct.traffic import TrafficMeter
from repro.errors import MachineError
from repro.relational.page import Page
from repro.relational.schema import DataType, Schema
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

SCHEMA = Schema.build(("k", DataType.INT))


def make_cache(frames=4, disks=1):
    sim = Simulator()
    meter = TrafficMeter()
    model = ExecModel(page_bytes=128)
    ports = Resource(sim, "ports", capacity=2)
    disk_resources = [Resource(sim, f"d{i}") for i in range(disks)]
    cache = DiskCache(sim, meter, model, frames, ports, disk_resources)
    return sim, meter, cache


def make_ref(key, on_disk=True):
    page = Page(SCHEMA, 128)
    page.append((1,))
    return PageRef(key=key, nbytes=128, payload=page, on_disk=on_disk, disk_id=0, row_count=1)


def test_miss_reads_disk_then_delivers():
    sim, meter, cache = make_cache()
    ref = make_ref("base:r:0")
    done = []
    cache.read_shared(ref, lambda: done.append(sim.now))
    sim.run()
    assert done and done[0] > 0
    assert meter.bytes_at(tl.DISK_TO_CACHE) == 128
    assert meter.bytes_at(tl.CACHE_TO_PROC) > 0


def test_hit_skips_disk():
    sim, meter, cache = make_cache()
    ref = make_ref("base:r:0")
    cache.read_shared(ref, lambda: None)
    sim.run()
    before = meter.bytes_at(tl.DISK_TO_CACHE)
    cache.read_shared(ref, lambda: None)
    sim.run()
    assert meter.bytes_at(tl.DISK_TO_CACHE) == before


def test_concurrent_readers_share_one_transfer():
    sim, meter, cache = make_cache()
    ref = make_ref("base:r:0")
    done = []
    cache.read_shared(ref, lambda: done.append("a"))
    cache.read_shared(ref, lambda: done.append("b"))
    sim.run()
    assert sorted(done) == ["a", "b"]
    assert meter.bytes_at(tl.DISK_TO_CACHE) == 128
    assert meter.bytes_at(tl.CACHE_TO_PROC) == ExecModel(page_bytes=128).packet_bytes(128)


def test_write_page_counts_proc_to_cache():
    sim, meter, cache = make_cache()
    ref = make_ref("q.n1:0", on_disk=False)
    done = []
    cache.write_page(ref, lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert meter.bytes_at(tl.PROC_TO_CACHE) > 0
    assert cache.is_resident(ref)


def test_read_of_written_intermediate():
    sim, meter, cache = make_cache()
    ref = make_ref("q.n1:0", on_disk=False)
    cache.write_page(ref, lambda: None)
    sim.run()
    done = []
    cache.read_shared(ref, lambda: done.append(1))
    sim.run()
    assert done == [1]
    assert meter.bytes_at(tl.DISK_TO_CACHE) == 0


def test_discarded_intermediate_read_is_an_error():
    sim, meter, cache = make_cache()
    ref = make_ref("q.n1:0", on_disk=False)
    cache.write_page(ref, lambda: None)
    sim.run()
    cache.discard(ref)
    with pytest.raises(MachineError):
        cache.read_shared(ref, lambda: None)
        sim.run()


def test_dirty_eviction_spills_to_disk():
    sim, meter, cache = make_cache(frames=4)
    for i in range(4):
        cache.write_page(make_ref(f"q.n1:{i}", on_disk=False), lambda: None)
    sim.run()
    # A fifth page forces a dirty eviction.
    cache.write_page(make_ref("q.n1:4", on_disk=False), lambda: None)
    sim.run()
    assert meter.bytes_at(tl.CACHE_TO_DISK) == 128


def test_spilled_page_becomes_on_disk():
    sim, meter, cache = make_cache(frames=4)
    refs = [make_ref(f"q.n1:{i}", on_disk=False) for i in range(5)]
    for ref in refs:
        cache.write_page(ref, lambda: None)
        sim.run()
    assert any(r.on_disk for r in refs[:1])


def test_clean_eviction_no_disk_write():
    sim, meter, cache = make_cache(frames=4)
    for i in range(6):
        cache.read_shared(make_ref(f"base:r:{i}"), lambda: None)
        sim.run()
    assert meter.bytes_at(tl.CACHE_TO_DISK) == 0


def test_protected_frames_evicted_last():
    sim, meter, cache = make_cache(frames=4)
    protected = make_ref("base:r:0")
    cache.read_shared(protected, lambda: None)
    sim.run()
    cache.protect(protected)
    for i in range(1, 6):
        cache.read_shared(make_ref(f"base:r:{i}"), lambda: None)
        sim.run()
    assert cache.is_resident(protected)


def test_unprotect_allows_eviction():
    sim, meter, cache = make_cache(frames=4)
    ref = make_ref("base:r:0")
    cache.read_shared(ref, lambda: None)
    sim.run()
    cache.protect(ref)
    cache.unprotect(ref)
    for i in range(1, 8):
        cache.read_shared(make_ref(f"base:r:{i}"), lambda: None)
        sim.run()
    assert not cache.is_resident(ref)


def test_has_inflight_window():
    sim, meter, cache = make_cache()
    ref = make_ref("base:r:0")
    cache.read_shared(ref, lambda: None)
    assert cache.has_inflight(ref)
    sim.run()
    assert not cache.has_inflight(ref)


def test_sequential_read_faster_than_random():
    model = ExecModel(page_bytes=128)
    sim, meter, cache = make_cache()
    t_done = []
    cache.read_shared(make_ref("base:r:0"), lambda: t_done.append(sim.now))
    sim.run()
    first = t_done[0]
    cache.read_shared(make_ref("base:r:1"), lambda: t_done.append(sim.now))
    sim.run()
    second = t_done[1] - first
    assert second < first  # follow-on read skipped the seek


def test_read_during_spill_aborts_eviction():
    # Bugfix: a dirty victim's write-back takes disk time, and a reader
    # that hits the still-resident frame mid-spill pins it.  Eviction used
    # to delete the frame anyway when the spill completed, yanking it out
    # from under the pinned reader; now the eviction aborts and retries
    # against a different victim.
    sim, meter, cache = make_cache(frames=4)
    victim = make_ref("q.n1:0", on_disk=False)
    cache.write_page(victim, lambda: None)
    sim.run()
    for i in range(1, 4):
        cache.write_page(make_ref(f"q.n1:{i}", on_disk=False), lambda: None)
    sim.run()
    assert cache.resident_frames == 4

    # The fifth page forces a dirty eviction of the LRU victim; its spill
    # occupies the disk until disk_ms(128) from now.
    spill_ms = cache.model.disk_ms(128)
    port_ms = cache.model.cache_port_ms(128)
    assert port_ms < spill_ms  # the read below must still be pinned at spill end
    cache.write_page(make_ref("q.n1:4", on_disk=False), lambda: None)
    read_done = []
    sim.schedule(
        spill_ms - port_ms / 2,
        lambda: cache.read_shared(victim, lambda: read_done.append(sim.now)),
    )
    sim.run()
    assert read_done  # the pinned reader was served
    assert cache.is_resident(victim)  # eviction aborted, frame survived
    assert cache.resident_frames == 4  # capacity accounting intact
    # The aborted write-back still persisted the page.
    assert victim.on_disk
    # A later read of the survivor is a plain cache hit.
    before = meter.bytes_at(tl.DISK_TO_CACHE)
    cache.read_shared(victim, lambda: read_done.append(sim.now))
    sim.run()
    assert len(read_done) == 2
    assert meter.bytes_at(tl.DISK_TO_CACHE) == before


def test_rewrite_resident_key_does_not_leak_slots():
    # Bugfix: re-installing an already-resident key used to allocate a
    # *second* slot (evicting an innocent neighbour) while the dict entry
    # was simply overwritten, so the reserved count drifted one above the
    # real frame population on every rewrite.
    sim, meter, cache = make_cache(frames=4)
    refs = [make_ref(f"q.n1:{i}", on_disk=False) for i in range(4)]
    for ref in refs:
        cache.write_page(ref, lambda: None)
    sim.run()
    assert cache.resident_frames == 4
    for _ in range(3):  # rewrite one key repeatedly at full capacity
        cache.write_page(make_ref("q.n1:0", on_disk=False), lambda: None)
        sim.run()
        assert cache.resident_frames == 4
    # In-place refresh: nothing was evicted or spilled.
    assert all(cache.is_resident(ref) for ref in refs)
    assert meter.bytes_at(tl.CACHE_TO_DISK) == 0


def test_rewrite_updates_frame_content():
    sim, meter, cache = make_cache(frames=4)
    first = make_ref("q.n1:0", on_disk=False)
    cache.write_page(first, lambda: None)
    sim.run()
    second = make_ref("q.n1:0", on_disk=False)
    second.row_count = 7
    cache.write_page(second, lambda: None)
    sim.run()
    assert cache.resident_frames == 1
    done = []
    cache.read_shared(second, lambda: done.append(1))
    sim.run()
    assert done == [1]


def test_write_during_fill_does_not_leak_a_reservation():
    # Bugfix: write_page of a key whose disk fill was still in flight
    # installed a second frame under a second reservation; the fill's
    # completion then overwrote the dict entry, leaving the reserved count
    # one above the real frame population for the rest of the run.  Now the
    # fill detects the newer frame, keeps it, and hands its duplicate
    # reservation back.
    sim, meter, cache = make_cache(frames=4)
    ref = make_ref("base:r:0")  # on disk: the read below must fill
    read_done = []
    cache.read_shared(ref, lambda: read_done.append(sim.now))
    assert cache.has_inflight(ref)
    # While the fill is on the disk, a producer rewrites the same key.
    rewrite = make_ref("base:r:0", on_disk=False)
    write_done = []
    cache.write_page(rewrite, lambda: write_done.append(sim.now))
    sim.run()
    assert read_done and write_done
    assert cache.resident_frames == 1  # no leaked slot
    assert cache.is_resident(ref)
    # The full capacity is still usable afterwards.
    for i in range(1, 5):
        cache.write_page(make_ref(f"q.n1:{i}", on_disk=False), lambda: None)
        sim.run()
    assert cache.resident_frames == 4


def test_write_during_fill_passes_sanitizer_accounting():
    from repro.check import sanitizing

    with sanitizing():
        sim, meter, cache = make_cache(frames=4)
        ref = make_ref("base:r:0")
        cache.read_shared(ref, lambda: None)
        cache.write_page(make_ref("base:r:0", on_disk=False), lambda: None)
        sim.run()
        sim.finalize_sanitizer()  # raises on any reservation imbalance


def test_minimum_frames_enforced():
    sim = Simulator()
    with pytest.raises(MachineError):
        DiskCache(sim, TrafficMeter(), ExecModel(), 2, Resource(sim, "p"), [Resource(sim, "d")])
