"""Shared fixtures: small schemas, relations, catalogs, and workloads."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.workload import benchmark_queries, generate_benchmark_database


@pytest.fixture
def simple_schema() -> Schema:
    """(id INT, name CHAR(12), score FLOAT) — 28-byte records."""
    return Schema.build(
        ("id", DataType.INT), ("name", DataType.CHAR, 12), ("score", DataType.FLOAT)
    )


@pytest.fixture
def pair_schema() -> Schema:
    """(k INT, grp INT) — the minimal join-friendly schema."""
    return Schema.build(("k", DataType.INT), ("grp", DataType.INT))


@pytest.fixture
def simple_relation(simple_schema) -> Relation:
    """100 rows of (i, 'n<i>', i*1.5) packed into 256-byte pages."""
    rows = [(i, f"n{i}", i * 1.5) for i in range(100)]
    return Relation.from_rows("people", simple_schema, rows, page_bytes=256)


@pytest.fixture
def join_catalog(pair_schema) -> Catalog:
    """Two relations sharing a grp domain of 10, plus an empty one."""
    catalog = Catalog()
    catalog.register(
        Relation.from_rows(
            "left_rel", pair_schema, [(i, i % 10) for i in range(120)], page_bytes=128
        )
    )
    catalog.register(
        Relation.from_rows(
            "right_rel", pair_schema, [(i, i % 10) for i in range(80)], page_bytes=128
        )
    )
    catalog.register(Relation("empty_rel", pair_schema, page_bytes=128))
    return catalog


@pytest.fixture(scope="session")
def tiny_benchmark():
    """A tiny (scale 0.03) instance of the paper's benchmark database."""
    return generate_benchmark_database(scale=0.03, seed=11, b_domain=25, page_bytes=2048)


@pytest.fixture(scope="session")
def tiny_queries(tiny_benchmark):
    """The ten-query mix over the tiny database."""
    return benchmark_queries(
        tiny_benchmark.catalog, tiny_benchmark.relation_names, selectivity=0.3
    )
