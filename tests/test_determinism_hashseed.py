"""Run-to-run identity under ``PYTHONHASHSEED`` variation.

Python randomizes ``str.__hash__`` per process, so any set/dict-order
dependence in scheduling or packet emission shows up as two different
outputs for the same command under two hash seeds.  These tests run the
real CLI in subprocesses — the hash seed is fixed at interpreter start,
so an in-process test could never vary it.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

FIGURE_3_1 = [
    "run",
    "figure_3_1",
    "--scale",
    "0.05",
    "--processors",
    "2",
    "--selectivity",
    "0.3",
]


def run_cli(args, hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("other_seed", ["1", "31337"])
def test_figure_3_1_is_hashseed_invariant(other_seed):
    baseline = run_cli(FIGURE_3_1, hashseed="0")
    varied = run_cli(FIGURE_3_1, hashseed=other_seed)
    assert varied == baseline


def test_figure_3_1_sanitized_is_hashseed_invariant_and_identical():
    baseline = run_cli(FIGURE_3_1, hashseed="0")
    sanitized = run_cli(FIGURE_3_1 + ["--sanitize"], hashseed="7")
    assert sanitized == baseline


def test_workload_database_is_hashseed_invariant():
    args = ["workload", "--scale", "0.05"]
    assert run_cli(args, hashseed="0") == run_cli(args, hashseed="99")
