"""Packet formats (Figures 4.3-4.5): byte-exact round trips."""

import pytest

from repro.errors import PacketError
from repro.relational.page import Page
from repro.relational.schema import DataType, Schema
from repro.ring.packets import (
    CONTROL_PACKET_BYTES,
    ControlMessage,
    ControlPacket,
    InstructionPacket,
    ResultPacket,
    SourceOperand,
    instruction_packet_bytes,
    result_packet_bytes,
    schema_field_bytes,
)

SCHEMA = Schema.build(("k", DataType.INT), ("v", DataType.FLOAT), ("s", DataType.CHAR, 7))


def page_bytes(rows=3, size=256):
    page = Page(SCHEMA, size)
    for i in range(rows):
        page.append((i, i * 0.5, f"s{i}"))
    return page.to_bytes()


def make_instruction(**overrides):
    fields = dict(
        ip_id=9,
        query_id=4,
        sender_ic=2,
        destination_ic=6,
        flush_when_done=True,
        opcode="restrict",
        result_relation="out",
        result_schema=SCHEMA,
        operands=[SourceOperand("src", SCHEMA, page_bytes())],
        tag=3,
    )
    fields.update(overrides)
    return InstructionPacket(**fields)


class TestInstructionPacket:
    def test_roundtrip(self):
        packet = make_instruction()
        assert InstructionPacket.decode(packet.encode()) == packet

    def test_roundtrip_all_opcodes(self):
        for opcode in InstructionPacket._OPCODES:
            packet = make_instruction(opcode=opcode)
            assert InstructionPacket.decode(packet.encode()).opcode == opcode

    def test_unknown_opcode_rejected(self):
        with pytest.raises(PacketError):
            make_instruction(opcode="teleport").encode()

    def test_two_operands(self):
        packet = make_instruction(
            operands=[
                SourceOperand("a", SCHEMA, page_bytes(2)),
                SourceOperand("b", SCHEMA, page_bytes(5)),
            ]
        )
        back = InstructionPacket.decode(packet.encode())
        assert [op.relation_name for op in back.operands] == ["a", "b"]

    def test_zero_operands(self):
        packet = make_instruction(operands=[])
        assert InstructionPacket.decode(packet.encode()).operands == []

    def test_length_field_matches_actual(self):
        wire = make_instruction().encode()
        import struct

        assert struct.unpack_from("<I", wire, 4)[0] == len(wire)

    def test_truncated_packet_rejected(self):
        wire = make_instruction().encode()
        with pytest.raises(PacketError):
            InstructionPacket.decode(wire[:-3])

    def test_schema_survives(self):
        back = InstructionPacket.decode(make_instruction().encode())
        assert back.result_schema == SCHEMA
        assert back.operands[0].schema == SCHEMA

    def test_page_payload_survives(self):
        raw = page_bytes(3)
        packet = make_instruction(operands=[SourceOperand("x", SCHEMA, raw)])
        back = InstructionPacket.decode(packet.encode())
        page = Page.from_bytes(SCHEMA, back.operands[0].page_bytes)
        assert page.row_count == 3

    def test_predicted_size_exact(self):
        raw = page_bytes()
        packet = make_instruction(
            operands=[SourceOperand("a", SCHEMA, raw), SourceOperand("b", SCHEMA, raw)]
        )
        predicted = instruction_packet_bytes(SCHEMA, [(SCHEMA, len(raw)), (SCHEMA, len(raw))])
        assert predicted == len(packet.encode())

    def test_predicted_size_no_operands(self):
        packet = make_instruction(operands=[])
        assert instruction_packet_bytes(SCHEMA, []) == len(packet.encode())

    def test_long_relation_name_truncated_not_crashing(self):
        packet = make_instruction(result_relation="x" * 40)
        back = InstructionPacket.decode(packet.encode())
        assert back.result_relation == "x" * 16

    def test_field_out_of_range_rejected(self):
        with pytest.raises(PacketError):
            make_instruction(ip_id=-1).encode()

    def test_wire_bytes_property(self):
        packet = make_instruction()
        assert packet.wire_bytes == len(packet.encode())


class TestResultPacket:
    def test_roundtrip(self):
        packet = ResultPacket(ic_id=5, relation_name="res", page_bytes=page_bytes())
        assert ResultPacket.decode(packet.encode()) == packet

    def test_empty_page(self):
        packet = ResultPacket(ic_id=5, relation_name="res", page_bytes=b"")
        assert ResultPacket.decode(packet.encode()).page_bytes == b""

    def test_predicted_size_exact(self):
        raw = page_bytes()
        packet = ResultPacket(ic_id=1, relation_name="r", page_bytes=raw)
        assert result_packet_bytes(len(raw)) == len(packet.encode())

    def test_truncated_rejected(self):
        wire = ResultPacket(ic_id=1, relation_name="r", page_bytes=page_bytes()).encode()
        with pytest.raises(PacketError):
            ResultPacket.decode(wire[:-1])


class TestControlPacket:
    @pytest.mark.parametrize("message", list(ControlMessage))
    def test_roundtrip_every_message(self, message):
        packet = ControlPacket(ic_id=2, sender_ip=7, message=message, argument=13)
        assert ControlPacket.decode(packet.encode()) == packet

    def test_fixed_size(self):
        packet = ControlPacket(ic_id=2, sender_ip=7, message=ControlMessage.DONE)
        assert len(packet.encode()) == packet.wire_bytes == CONTROL_PACKET_BYTES

    def test_wrong_size_rejected(self):
        with pytest.raises(PacketError):
            ControlPacket.decode(b"\x00" * 19)


class TestSchemaField:
    def test_schema_field_size_formula(self):
        from repro.ring.packets import _pack_schema

        assert schema_field_bytes(SCHEMA) == len(_pack_schema(SCHEMA))

    def test_corrupt_schema_width_rejected(self):
        from repro.ring.packets import _pack_schema

        import struct

        raw = bytearray(_pack_schema(SCHEMA))
        struct.pack_into("<I", raw, 0, 999)
        from repro.ring.packets import _unpack_schema

        with pytest.raises(PacketError):
            _unpack_schema(bytes(raw), 0)
