"""Causal span tracing: collector, attribution, time series, exports.

The headline guarantees under test:

* :func:`attribute_query` partitions a query's latency *exactly* — the
  five buckets sum to end-to-end latency up to float addition error —
  with service > disk > transit > retransmission > queueing precedence;
* a traced serving run yields an explain report whose p99 decomposition
  and per-query attributions all satisfy that partition identity;
* the repro-tsdb/v1 and Chrome-trace exports validate against their
  schema checks;
* armed span collection changes no output bytes (the tracing identity
  gate, exercised here on a cheap subset);
* an armed collector forces ``map_points`` into its serial fallback —
  one global span timeline cannot be split across worker processes.
"""

import json

import pytest

from repro.obs.critical_path import BUCKETS, attribute_query, explain
from repro.obs.spans import SpanCollector, active_collector, collecting
from repro.obs.timeseries import (
    build_tsdb,
    spans_chrome_trace,
    validate_chrome_trace,
    validate_tsdb,
)
from repro.serve import ServeConfig, serve

QUICK = dict(
    rate_qps=60.0,
    duration_ms=800.0,
    scale=0.05,
    seed=7,
    b_domain=50,
)


def _record(name="Q1", start=0.0, end=100.0, spans=()):
    collector = SpanCollector()
    collector.query_begin(name, start)
    for kind, span_name, s, e in spans:
        collector.record(kind, name, s, e, name=span_name)
    collector.query_end(name, end, rows=3)
    return collector.completed[-1]


# -- collector lifecycle ----------------------------------------------------


class TestSpanCollector:
    def test_query_begin_is_idempotent_earliest_wins(self):
        collector = SpanCollector()
        collector.query_begin("Q1", 5.0)
        collector.query_begin("Q1", 9.0)  # machine submit after serve offer
        collector.query_end("Q1", 10.0)
        assert collector.completed[0].start == 5.0
        assert collector.completed[0].latency_ms == 5.0

    def test_record_drops_unknown_and_completed_queries(self):
        collector = SpanCollector()
        collector.record("service", "ghost", 0.0, 1.0)
        collector.query_begin("Q1", 0.0)
        collector.query_end("Q1", 10.0)
        collector.record("service", "Q1", 5.0, 6.0)  # late control traffic
        assert collector.completed[0].spans == []

    def test_record_drops_empty_intervals_and_none_query(self):
        collector = SpanCollector()
        collector.query_begin("Q1", 0.0)
        collector.record("service", "Q1", 5.0, 5.0)
        collector.record("service", None, 5.0, 6.0)
        collector.query_end("Q1", 10.0)
        assert collector.completed[0].spans == []

    def test_cancel_counts_and_drops(self):
        collector = SpanCollector()
        collector.query_begin("Q1", 0.0)
        collector.query_cancel("Q1")
        collector.query_cancel("Q1")  # double cancel is a no-op
        assert collector.cancelled == 1
        assert collector.completed == []

    def test_collecting_installs_and_restores(self):
        assert active_collector() is None
        with collecting() as collector:
            assert active_collector() is collector
            with collecting(SpanCollector()) as inner:
                assert active_collector() is inner
            assert active_collector() is collector
        assert active_collector() is None

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanCollector(window_ms=0.0)


# -- critical-path attribution ----------------------------------------------


class TestAttribution:
    def test_uncovered_time_is_queueing(self):
        buckets = attribute_query(_record(start=0.0, end=100.0))
        assert buckets["queueing"] == 100.0
        assert sum(buckets.values()) == 100.0

    def test_service_wins_over_overlapping_disk(self):
        record = _record(
            spans=[
                ("service", "ip", 10.0, 30.0),
                ("disk", "cache", 20.0, 50.0),
            ]
        )
        buckets = attribute_query(record)
        assert buckets["service"] == 20.0
        assert buckets["disk"] == 20.0  # only the non-overlapped tail
        assert buckets["queueing"] == 60.0
        assert sum(buckets.values()) == pytest.approx(100.0, abs=1e-9)

    def test_spans_clip_to_query_window(self):
        record = _record(
            start=10.0,
            end=20.0,
            spans=[("transit", "ring", 0.0, 15.0), ("disk", "d", 18.0, 40.0)],
        )
        buckets = attribute_query(record)
        assert buckets["transit"] == 5.0
        assert buckets["disk"] == 2.0
        assert buckets["queueing"] == 3.0

    def test_identical_overlapping_spans_merge(self):
        record = _record(
            spans=[("service", "a", 10.0, 30.0), ("service", "b", 10.0, 30.0)]
        )
        buckets = attribute_query(record)
        assert buckets["service"] == 20.0

    def test_unknown_kind_falls_back_to_queueing(self):
        record = _record(spans=[("mystery", "x", 0.0, 100.0)])
        assert attribute_query(record)["queueing"] == 100.0

    def test_partition_sums_to_latency(self):
        record = _record(
            end=97.0,
            spans=[
                ("service", "a", 3.0, 21.5),
                ("disk", "b", 11.0, 40.25),
                ("transit", "c", 39.0, 41.125),
                ("retransmission", "d", 60.0, 61.0),
                ("queueing", "admission", 0.0, 3.0),
            ],
        )
        buckets = attribute_query(record)
        assert sum(buckets.values()) == pytest.approx(97.0, abs=1e-9)
        assert buckets["retransmission"] == 1.0


# -- explain report on a real serving run ------------------------------------


class TestExplainServing:
    @pytest.fixture(scope="class")
    def traced(self):
        collector = SpanCollector()
        with collecting(collector):
            slo = serve(ServeConfig(machine="ring", **QUICK))
        return collector, slo

    def test_buckets_sum_to_end_to_end_latency(self, traced):
        collector, _slo = traced
        assert collector.completed
        for record in collector.completed:
            buckets = attribute_query(record)
            assert sum(buckets.values()) == pytest.approx(
                record.latency_ms, rel=1e-9, abs=1e-6
            )

    def test_explain_report_shape_and_partition(self, traced):
        collector, _slo = traced
        report = explain(collector, top=3)
        assert report["schema"] == "repro-explain/v1"
        assert report["queries"] == len(collector.completed)
        decomp = report["p99_decomposition"]
        assert sum(decomp["buckets"].values()) == pytest.approx(
            decomp["latency_ms"], abs=1e-3
        )
        shares = [report["buckets"][kind]["share"] for kind in BUCKETS]
        assert sum(shares) == pytest.approx(1.0, abs=1e-3)
        assert len(report["slowest"]) == 3
        assert report["slowest"][0]["latency_ms"] >= report["slowest"][1]["latency_ms"]

    def test_explain_queueing_includes_admission_wait(self, traced):
        collector, _slo = traced
        # At 60 qps this quick ring config is saturated: admission spans
        # must appear and queueing must carry real time.
        names = {
            name
            for record in collector.completed
            for (_kind, name, _s, _e) in record.spans
        }
        assert "admission" in names
        report = explain(collector)
        assert report["buckets"]["queueing"]["total_ms"] > 0.0

    def test_machine_spans_cover_all_kinds_but_retransmission(self, traced):
        collector, _slo = traced
        kinds = {
            kind
            for record in collector.completed
            for (kind, _n, _s, _e) in record.spans
        }
        # No faults armed, so no retransmission backoff; everything else
        # must be observed on a saturated ring run.
        assert {"service", "disk", "transit", "queueing"} <= kinds

    def test_tsdb_builds_and_validates(self, traced):
        collector, slo = traced
        doc = build_tsdb(collector, end_ms=float(slo["elapsed_ms"]))
        validate_tsdb(doc)
        series = doc["series"]
        for expected in ("inflight", "queue_depth", "throughput_qps", "shed_rate"):
            assert expected in series
        assert any(key.startswith("utilization.") for key in series)
        # Completions observed in the SLO report appear as rate mass.
        total_completed = sum(series["throughput_qps"]["values"])
        assert total_completed > 0.0

    def test_chrome_trace_builds_and_validates(self, traced):
        collector, _slo = traced
        doc = spans_chrome_trace(collector)
        validate_chrome_trace(doc)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert {"X", "s", "f", "M"} <= phases
        # Every flow start has a matching finish with the same id.
        starts = {e["id"] for e in doc["traceEvents"] if e["ph"] == "s"}
        finishes = {e["id"] for e in doc["traceEvents"] if e["ph"] == "f"}
        assert starts == finishes

    def test_serve_report_identical_with_and_without_collector(self, traced):
        _collector, slo = traced
        untraced = serve(ServeConfig(machine="ring", **QUICK))
        assert json.dumps(untraced, sort_keys=True) == json.dumps(
            slo, sort_keys=True
        )


# -- tracing identity gate (cheap subset) ------------------------------------


def test_tracing_identity_on_quick_subset():
    from repro.check.identity import identity_mismatches

    assert identity_mismatches("tracing", ["section_3_3", "packets"]) == []


# -- fused chains compose into analytic sub-spans ----------------------------


def test_fused_chain_spans_match_sequential_accumulation():
    from repro.direct.exec_model import fused_chain_end, fused_chain_spans

    now = 123.456
    parts = (1.5, 2.25, 0.75)
    links = fused_chain_spans(now, parts)
    assert len(links) == len(parts)
    cursor = now
    for (start, duration), part in zip(links, parts):
        assert start == cursor
        assert duration == part
        cursor = start + duration
    assert cursor == fused_chain_end(now, parts)


# -- serial fallback when spans are armed (satellite) ------------------------

_SPAN_CALLS = []


def _record_inline_spans(x):
    _SPAN_CALLS.append(x)
    return x * 10


def test_armed_collector_forces_map_points_serial_fallback():
    from repro.sweep import map_points

    _SPAN_CALLS.clear()
    serial = map_points(_record_inline_spans, [dict(x=1), dict(x=2)])
    _SPAN_CALLS.clear()
    with collecting():
        parallel = map_points(
            _record_inline_spans, [dict(x=1), dict(x=2)], workers=2
        )
    # Inline execution: side effects land in this process, results match
    # the serial run exactly.
    assert _SPAN_CALLS == [1, 2]
    assert parallel == serial == [10, 20]
