"""External merge sort."""

import pytest

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.sorting import is_sorted, make_runs, merge_runs, sort_relation


@pytest.fixture
def relation(pair_schema):
    rows = [(i * 7 % 23, i % 4) for i in range(23)]
    return Relation.from_rows("S", pair_schema, rows, page_bytes=64)


def test_sorted_output_is_ordered(relation):
    out = sort_relation(relation, ["k"])
    assert is_sorted(out, ["k"])


def test_sort_preserves_bag(relation):
    out = sort_relation(relation, ["k"])
    assert out.same_rows_as(relation)


def test_multi_key_sort(relation):
    out = sort_relation(relation, ["grp", "k"])
    assert is_sorted(out, ["grp", "k"])


def test_tiny_memory_forces_many_runs(relation):
    runs = make_runs(relation, ["k"], memory_pages=1)
    assert len(runs) == relation.page_count
    for run in runs:
        assert run == sorted(run)


def test_merge_of_runs_is_globally_sorted(relation):
    runs = make_runs(relation, ["k"], memory_pages=2)
    merged = list(merge_runs(runs, relation, ["k"]))
    assert merged == sorted(merged)
    assert len(merged) == 23


def test_single_run_when_memory_large(relation):
    assert len(make_runs(relation, ["k"], memory_pages=999)) == 1


def test_zero_memory_rejected(relation):
    with pytest.raises(SchemaError):
        make_runs(relation, ["k"], memory_pages=0)


def test_no_key_rejected(relation):
    with pytest.raises(SchemaError):
        sort_relation(relation, [])


def test_sort_is_stable(pair_schema):
    rows = [(1, 3), (1, 1), (1, 2)]
    rel = Relation.from_rows("T", pair_schema, rows, page_bytes=256)
    out = sort_relation(rel, ["k"])
    assert [r[1] for r in out.rows()] == [3, 1, 2]


def test_empty_relation_sorts_to_empty(pair_schema):
    rel = Relation("E", pair_schema, page_bytes=64)
    assert sort_relation(rel, ["k"]).cardinality == 0


def test_is_sorted_detects_disorder(pair_schema):
    rel = Relation.from_rows("U", pair_schema, [(2, 0), (1, 0)], page_bytes=64)
    assert not is_sorted(rel, ["k"])


def test_is_sorted_accepts_equal_keys(pair_schema):
    rel = Relation.from_rows("V", pair_schema, [(1, 0), (1, 1)], page_bytes=64)
    assert is_sorted(rel, ["k"])
