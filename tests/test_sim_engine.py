"""The discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_single_event_fires_at_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_events_scheduled_during_run():
    sim = Simulator()
    trace = []

    def first():
        trace.append(sim.now)
        sim.schedule(2.0, lambda: trace.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert trace == [1.0, 3.0]


def test_cancelled_events_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_counts_not_processed():
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()
    sim.run()
    assert sim.events_processed == 0


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == []
    sim.run()
    assert fired == [1]


def test_run_until_advances_clock_when_heap_drains():
    # Bugfix: the clock used to stall at the last event when the heap
    # drained before ``until``, skewing elapsed-time denominators.
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    assert sim.run(until=10.0) == 10.0
    assert sim.now == 10.0


def test_run_until_on_empty_heap_returns_until():
    sim = Simulator()
    assert sim.run(until=7.5) == 7.5
    assert sim.now == 7.5


def test_run_until_never_rewinds_clock():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    assert sim.run(until=3.0) == 5.0
    assert sim.now == 5.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(7.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7.0]


def test_max_events_raises_on_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None).cancel()
    assert sim.pending == 1


def test_not_reentrant():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_exception_in_callback_propagates():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.schedule(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()
