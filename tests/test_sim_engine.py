"""The discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_single_event_fires_at_time():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for tag in "abc":
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_zero_delay_allowed():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_events_scheduled_during_run():
    sim = Simulator()
    trace = []

    def first():
        trace.append(sim.now)
        sim.schedule(2.0, lambda: trace.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert trace == [1.0, 3.0]


def test_cancelled_events_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_counts_not_processed():
    sim = Simulator()
    sim.schedule(1.0, lambda: None).cancel()
    sim.run()
    assert sim.events_processed == 0


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == []
    sim.run()
    assert fired == [1]


def test_run_until_advances_clock_when_heap_drains():
    # Bugfix: the clock used to stall at the last event when the heap
    # drained before ``until``, skewing elapsed-time denominators.
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    assert sim.run(until=10.0) == 10.0
    assert sim.now == 10.0


def test_run_until_on_empty_heap_returns_until():
    sim = Simulator()
    assert sim.run(until=7.5) == 7.5
    assert sim.now == 7.5


def test_run_until_never_rewinds_clock():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    assert sim.run(until=3.0) == 5.0
    assert sim.now == 5.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    fired = []
    sim.schedule_at(7.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [7.0]


def test_max_events_raises_on_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_step_fires_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None).cancel()
    assert sim.pending == 1


def test_not_reentrant():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_exception_in_callback_propagates():
    sim = Simulator()

    def boom():
        raise ValueError("boom")

    sim.schedule(1.0, boom)
    with pytest.raises(ValueError):
        sim.run()


# ------------------------------------------------------- batched dispatch


def test_batched_ties_preserve_order_across_many_events():
    sim = Simulator()
    order = []
    for i, t in enumerate((2.0, 1.0, 2.0, 1.0, 2.0)):
        sim.schedule(t, lambda i=i: order.append(i))
    sim.run()
    # Time order first, insertion order within the t=1.0 / t=2.0 batches.
    assert order == [1, 3, 0, 2, 4]


def test_same_time_event_scheduled_mid_batch_fires_after_batch():
    # A callback scheduling at delay 0 opens a fresh bucket at the same
    # timestamp; the new event must fire after the rest of the current
    # batch, exactly as (time, sequence) order dictates.
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, lambda: order.append("late"))

    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "late"]


def test_max_events_stops_mid_batch_and_resumes_in_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: order.append(i))
    with pytest.raises(SimulationError):
        sim.run(max_events=3)
    assert order == [0, 1, 2]
    sim.run()
    assert order == [0, 1, 2, 3, 4]
    assert sim.events_processed == 5


def test_step_resumes_batch_left_by_run():
    sim = Simulator()
    order = []
    for i in range(3):
        sim.schedule(1.0, lambda i=i: order.append(i))
    with pytest.raises(SimulationError):
        sim.run(max_events=1)
    assert sim.step() is True
    assert sim.step() is True
    assert sim.step() is False
    assert order == [0, 1, 2]


# ------------------------------------------------------- until + cancellation


def test_cancelled_events_beyond_until_are_not_drained():
    # run(until=...) used to eagerly pop batches past the horizon just to
    # drop their cancelled events, leaving the event list in a different
    # state than an equivalent step() sequence.
    sim = Simulator()
    fired = []
    doomed = sim.schedule(10.0, lambda: fired.append("doomed"))
    sim.schedule(10.0, lambda: fired.append("survivor"))
    doomed.cancel()
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0
    assert fired == []
    assert sim.pending == 1
    sim.run()
    assert fired == ["survivor"]
    assert sim.now == 10.0


def test_all_cancelled_batch_does_not_advance_clock():
    sim = Simulator()
    for _ in range(3):
        sim.schedule(10.0, lambda: None).cancel()
    sim.run(until=5.0)
    assert sim.now == 5.0
    sim.run()
    # Only fires advance the clock; draining cancelled events must not.
    assert sim.now == 5.0
    assert sim.events_processed == 0


def test_pending_is_zero_after_mass_cancel():
    sim = Simulator()
    events = [sim.schedule(float(i % 7), lambda: None) for i in range(100)]
    assert sim.pending == 100
    for event in events:
        event.cancel()
    assert sim.pending == 0
    # Double-cancel must not drive the counter negative.
    events[0].cancel()
    assert sim.pending == 0
    sim.run()
    assert sim.events_processed == 0


def test_pending_tracks_fires():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.step()
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


# ------------------------------------------------------- reentrancy


def test_step_inside_callback_raises():
    sim = Simulator()

    def nested():
        sim.step()

    sim.schedule(1.0, nested)
    sim.schedule(2.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_inside_step_raises():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.step()


# ------------------------------------------------------- fused-event credits


def test_count_fused_credits_events_processed():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.count_fused(2))
    sim.run()
    assert sim.events_processed == 3


def test_count_fused_ignores_nonpositive():
    sim = Simulator()
    sim.count_fused(0)
    sim.count_fused(-4)
    assert sim.events_processed == 0


def test_schedule_abs_rejects_past():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_abs(4.0, lambda: None)


def test_schedule_abs_stores_exact_timestamp():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, lambda: sim.schedule_abs(0.30000000000000004, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [0.30000000000000004]
