"""Relation statistics and selectivity estimation."""

import pytest

from repro.relational.predicate import FalsePredicate, TruePredicate, attr
from repro.relational.relation import Relation
from repro.relational.statistics import (
    collect_stats,
    estimate_join_cardinality,
    estimate_selectivity,
)


@pytest.fixture
def stats(pair_schema):
    rows = [(i, i % 5) for i in range(100)]
    return collect_stats(Relation.from_rows("S", pair_schema, rows, page_bytes=128))


class TestCollectStats:
    def test_cardinality(self, stats):
        assert stats.cardinality == 100

    def test_distinct_counts(self, stats):
        assert stats.column("k").distinct == 100
        assert stats.column("grp").distinct == 5

    def test_min_max(self, stats):
        assert stats.column("k").minimum == 0
        assert stats.column("k").maximum == 99

    def test_pages_recorded(self, stats):
        assert stats.pages > 0


class TestSelectivity:
    def test_true_false(self, stats):
        assert estimate_selectivity(TruePredicate(), stats) == 1.0
        assert estimate_selectivity(FalsePredicate(), stats) == 0.0

    def test_equality_uses_distinct(self, stats):
        assert estimate_selectivity(attr("grp") == 2, stats) == pytest.approx(0.2)

    def test_inequality(self, stats):
        assert estimate_selectivity(attr("grp") != 2, stats) == pytest.approx(0.8)

    def test_range_interpolation(self, stats):
        sel = estimate_selectivity(attr("k") < 50, stats)
        assert 0.4 < sel < 0.6

    def test_between(self, stats):
        sel = estimate_selectivity(attr("k").between(0, 49), stats)
        assert 0.4 < sel < 0.6

    def test_out_of_range_is_zero(self, stats):
        assert estimate_selectivity(attr("k").between(500, 600), stats) == 0.0

    def test_conjunction_multiplies(self, stats):
        sel = estimate_selectivity((attr("grp") == 2) & (attr("grp") == 3), stats)
        assert sel == pytest.approx(0.04)

    def test_disjunction_inclusion_exclusion(self, stats):
        sel = estimate_selectivity((attr("grp") == 2) | (attr("grp") == 3), stats)
        assert sel == pytest.approx(0.2 + 0.2 - 0.04)

    def test_negation(self, stats):
        sel = estimate_selectivity(~(attr("grp") == 2), stats)
        assert sel == pytest.approx(0.8)

    def test_clamped_to_unit_interval(self, stats):
        pred = (attr("k") >= 0) | (attr("k") <= 99)
        assert 0.0 <= estimate_selectivity(pred, stats) <= 1.0


class TestJoinCardinality:
    def test_equijoin_divides_by_max_distinct(self, stats):
        est = estimate_join_cardinality(stats, stats, attr("grp").equals_attr("grp"))
        assert est == 100 * 100 // 5

    def test_theta_join_uses_default(self, stats):
        from repro.relational.predicate import CompareOp

        est = estimate_join_cardinality(stats, stats, attr("k").joins(CompareOp.LT, "k"))
        assert est == int(100 * 100 / 3)

    def test_empty_relation(self, pair_schema):
        empty = collect_stats(Relation("E", pair_schema, page_bytes=128))
        est = estimate_join_cardinality(empty, empty, attr("grp").equals_attr("grp"))
        assert est == 0
