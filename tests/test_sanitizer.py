"""The runtime simulation sanitizer: every violation class, injected.

Each test seeds exactly one invariant violation and asserts the sanitizer
converts it into a :class:`SanitizerError`; the closing tests prove the
sanitizer changes *nothing* about a clean run's results and costs nothing
when off.
"""

import pytest

from repro import hw
from repro.check import is_active, sanitizing
from repro.check.sanitizer import Sanitizer
from repro.direct.cache import DiskCache, PageRef
from repro.direct.exec_model import ExecModel
from repro.direct.traffic import TrafficMeter
from repro.errors import SanitizerError, SimulationError
from repro.relational.page import Page
from repro.relational.schema import DataType, Schema
from repro.ring.network import Ring
from repro.sim.engine import Simulator
from repro.sim.resources import Resource

SCHEMA = Schema.build(("k", DataType.INT))


def sanitized_sim():
    return Simulator(sanitize=True)


# ---------------------------------------------------------------------- modes


def test_sanitizer_off_by_default():
    assert Simulator().sanitizer is None


def test_explicit_flag_enables():
    assert sanitized_sim().sanitizer is not None


def test_ambient_context_enables():
    assert not is_active()
    with sanitizing():
        assert is_active()
        assert Simulator().sanitizer is not None
    assert not is_active()
    assert Simulator().sanitizer is None


def test_finalize_without_sanitizer_is_a_noop():
    sim = Simulator()
    sim.run()
    sim.finalize_sanitizer()  # must not raise


# ---------------------------------------------------------------------- delays


def test_nan_delay_raises():
    sim = sanitized_sim()
    with pytest.raises(SanitizerError, match="NaN"):
        sim.schedule(float("nan"), lambda: None, label="x")


def test_infinite_delay_raises():
    sim = sanitized_sim()
    with pytest.raises(SanitizerError, match="infinite"):
        sim.schedule(float("inf"), lambda: None, label="x")


def test_negative_delay_raises_simulation_error_in_both_modes():
    # Delay validation runs before the sanitizer, so callers see the same
    # exception type whether or not sanitize mode is on.  (The sanitizer
    # used to win with SanitizerError, making error handling mode-
    # dependent.)  SanitizerError still covers NaN/inf, which the engine
    # itself does not validate.
    sim = sanitized_sim()
    with pytest.raises(SimulationError, match="into the past"):
        sim.schedule(-0.5, lambda: None, label="x")
    with pytest.raises(SimulationError, match="into the past"):
        Simulator().schedule(-0.5, lambda: None)


def test_breadcrumb_carries_recent_events():
    sim = sanitized_sim()
    sim.schedule(1.0, lambda: None, label="alpha")
    sim.run()
    with pytest.raises(SanitizerError, match="alpha"):
        sim.schedule(float("nan"), lambda: None, label="boom")


# ---------------------------------------------------------------------- tie audit


def test_unlabeled_tie_raises():
    sim = sanitized_sim()
    sim.schedule(5.0, lambda: None)
    with pytest.raises(SanitizerError, match="order hazard"):
        sim.schedule(5.0, lambda: None)


def test_labeled_tie_is_auditable_and_fine():
    sim = sanitized_sim()
    sim.schedule(5.0, lambda: None, label="a")
    sim.schedule(5.0, lambda: None, label="b")
    sim.schedule(5.0, lambda: None, label="c")
    sim.run()
    sim.finalize_sanitizer()


def test_unlabeled_events_without_ties_are_fine():
    sim = sanitized_sim()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    sim.finalize_sanitizer()


def test_fired_events_leave_the_tie_window():
    # An unlabeled event that already fired cannot form a hazard with a
    # later arrival at the same timestamp: by then the order is decided.
    sim = sanitized_sim()
    sim.schedule(5.0, lambda: None)
    sim.run()
    sim.schedule(0.0, lambda: None)  # lands at t=5.0 again — no pending tie
    sim.run()
    sim.finalize_sanitizer()


def test_cancelled_events_leave_the_tie_window():
    sim = sanitized_sim()
    event = sim.schedule(5.0, lambda: None)
    event.cancel()
    sim.run()
    sim.schedule(0.0, lambda: None)
    sim.run()
    sim.finalize_sanitizer()


# ---------------------------------------------------------------------- leases


def test_leaked_lease_reported_at_finish():
    sim = sanitized_sim()
    resource = Resource(sim, "disk", capacity=2)
    resource.acquire(label="held-forever")  # repro: allow[R005]
    sim.run()
    with pytest.raises(SanitizerError, match="held-forever"):
        sim.finalize_sanitizer()


def test_released_lease_is_clean():
    sim = sanitized_sim()
    resource = Resource(sim, "disk", capacity=1)
    lease = resource.acquire(label="work")
    lease.release()
    sim.run()
    sim.finalize_sanitizer()


def test_context_manager_lease():
    sim = sanitized_sim()
    resource = Resource(sim, "disk", capacity=1)
    with resource.acquire(label="work"):
        assert resource.open_leases == 1
    assert resource.open_leases == 0
    sim.run()
    sim.finalize_sanitizer()


def test_double_release_is_an_error():
    sim = sanitized_sim()
    lease = Resource(sim, "disk", capacity=1).acquire(label="w")
    lease.release()
    with pytest.raises(SimulationError, match="released twice"):
        lease.release()


def test_acquire_beyond_capacity_is_an_error():
    sim = sanitized_sim()
    resource = Resource(sim, "disk", capacity=1)
    resource.acquire(label="a")  # repro: allow[R005]
    with pytest.raises(SimulationError, match="no idle server"):
        resource.acquire(label="b")  # repro: allow[R005]


def test_lease_accounting_feeds_busy_time():
    sim = sanitized_sim()
    resource = Resource(sim, "disk", capacity=1)
    lease = resource.acquire(label="w")
    sim.schedule(3.0, lease.release, label="release")
    sim.run()
    assert resource.stats.busy_time == pytest.approx(3.0)
    sim.finalize_sanitizer()


# ---------------------------------------------------------------------- disk cache


def make_cache(sim, frames=4):
    ports = Resource(sim, "ports", capacity=2)
    disks = [Resource(sim, "d0")]
    return DiskCache(sim, TrafficMeter(), ExecModel(page_bytes=128), frames, ports, disks)


def make_ref(key, on_disk=True):
    page = Page(SCHEMA, 128)
    page.append((1,))
    return PageRef(key=key, nbytes=128, payload=page, on_disk=on_disk, disk_id=0, row_count=1)


def test_pinned_frame_leak_reported():
    sim = sanitized_sim()
    cache = make_cache(sim)
    cache.write_page(make_ref("q.n1:0", on_disk=False), lambda: None)
    sim.run()
    cache._pin("q.n1:0")  # injected leak: a pin with no matching unpin
    with pytest.raises(SanitizerError, match="leaked 1 pin"):
        sim.finalize_sanitizer()


def test_double_reserve_raises_immediately():
    sim = sanitized_sim()
    cache = make_cache(sim, frames=4)
    for _ in range(4):
        cache._reserve_slot()
    with pytest.raises(SanitizerError, match="double-reserve"):
        cache._reserve_slot()


def test_undelivered_inflight_read_reported():
    sim = sanitized_sim()
    cache = make_cache(sim)
    from repro.direct.cache import _SharedRead

    # Injected: a read registered but whose delivery never ran.
    cache._inflight_reads["ghost:0"] = _SharedRead(waiters=[lambda: None])
    with pytest.raises(SanitizerError, match="ghost:0"):
        sim.finalize_sanitizer()


def test_clean_cache_workload_passes_finish_checks():
    sim = sanitized_sim()
    cache = make_cache(sim)
    for i in range(6):  # forces evictions through a full cache
        cache.read_shared(make_ref(f"base:r:{i}"), lambda: None)
        sim.run()
    cache.write_page(make_ref("q.n1:0", on_disk=False), lambda: None)
    sim.run()
    sim.finalize_sanitizer()


# ---------------------------------------------------------------------- ring


def test_ring_packet_conservation_violation_reported():
    sim = sanitized_sim()
    ring = Ring(sim, hw.OUTER_RING_TTL, "outer")
    ring.send(100, lambda: None)
    sim.run()
    ring.packets_injected += 1  # injected imbalance
    with pytest.raises(SanitizerError, match="packet conservation"):
        sim.finalize_sanitizer()


def test_ring_conserves_packets_on_clean_run():
    sim = sanitized_sim()
    ring = Ring(sim, hw.OUTER_RING_TTL, "outer")
    for i in range(5):
        ring.send(100 * (i + 1), lambda: None)
    ring.broadcast(500, lambda: None)
    sim.run()
    assert ring.packets_injected == ring.packets_removed == 6
    sim.finalize_sanitizer()


# ---------------------------------------------------------------------- identity


def test_sanitized_run_matches_unsanitized_results():
    from repro.experiments import figure_3_1

    plain = figure_3_1.run(processors=(2,), scale=0.05, selectivity=0.3)
    with sanitizing():
        checked = figure_3_1.run(processors=(2,), scale=0.05, selectivity=0.3)
    assert checked.rows == plain.rows


def test_sanitizer_counts_audited_events():
    sim = sanitized_sim()
    for i in range(5):
        sim.schedule(float(i), lambda: None, label=f"e{i}")
    sim.run()
    assert sim.sanitizer.events_audited == 5
    sim.finalize_sanitizer()
    assert sim.sanitizer.finished


def test_finish_check_registration_is_direct():
    sim = sanitized_sim()
    sanitizer = sim.sanitizer
    assert isinstance(sanitizer, Sanitizer)
    sanitizer.register_finish_check("custom", lambda: ["it broke"])
    with pytest.raises(SanitizerError, match="custom: it broke"):
        sim.finalize_sanitizer()
