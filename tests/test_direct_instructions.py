"""Runtime instruction objects: tasks, operand tables, output assembly."""

import pytest

from repro.direct.cache import PageRef
from repro.direct.instructions import (
    JoinInstruction,
    OperandTable,
    OutputAssembler,
    RestrictInstruction,
    Task,
)
from repro.errors import MachineError
from repro.relational.page import Page
from repro.relational.predicate import attr
from repro.relational.schema import DataType, Schema
from repro.query.builder import scan
from repro.query.tree import JoinNode, RestrictNode, ScanNode

PAIR = Schema.build(("k", DataType.INT), ("g", DataType.INT))


def ref(key, rows, on_disk=False):
    page = Page(PAIR, 128)
    for row in rows:
        page.append(row)
    return PageRef(key=key, nbytes=128, payload=page, on_disk=on_disk, disk_id=0, row_count=page.row_count)


def make_restrict():
    node = RestrictNode(ScanNode("r"), attr("g") == 1)
    tree = scan("r").tree("q")
    return RestrictInstruction(node, tree, PAIR, page_bytes=128)


def make_join():
    node = JoinNode(ScanNode("a"), ScanNode("b"), attr("g").equals_attr("g"))
    tree = scan("a").tree("q")
    return JoinInstruction(node, tree, PAIR, PAIR, page_bytes=128)


class TestOperandTable:
    def test_grows_and_completes(self):
        table = OperandTable("in", PAIR)
        table.add_page(ref("p0", [(1, 1)]))
        assert table.page_count == 1
        assert table.total_rows == 1
        table.mark_complete()
        with pytest.raises(MachineError):
            table.add_page(ref("p1", [(2, 2)]))


class TestOutputAssembler:
    def test_buffers_until_page_full(self):
        asm = OutputAssembler("q.n1", PAIR, page_bytes=128)
        capacity = Page(PAIR, 128).capacity
        pages = asm.add_rows([(i, i) for i in range(capacity - 1)])
        assert pages == []
        pages = asm.add_rows([(99, 99)])
        assert len(pages) == 1
        assert pages[0].row_count == capacity

    def test_flush_emits_partial(self):
        asm = OutputAssembler("q.n1", PAIR, page_bytes=128)
        asm.add_rows([(1, 1)])
        final = asm.flush()
        assert final is not None and final.row_count == 1
        assert asm.flush() is None

    def test_keys_are_sequential(self):
        asm = OutputAssembler("q.n1", PAIR, page_bytes=128)
        capacity = Page(PAIR, 128).capacity
        pages = asm.add_rows([(i, i) for i in range(capacity * 2)])
        assert [p.key for p in pages] == ["q.n1:0", "q.n1:1"]

    def test_rows_emitted_counter(self):
        asm = OutputAssembler("q.n1", PAIR, page_bytes=128)
        asm.add_rows([(1, 1), (2, 2)])
        assert asm.rows_emitted == 2


class TestRestrictInstruction:
    def test_pages_become_tasks(self):
        instr = make_restrict()
        instr.operand_page_arrived(0, ref("p0", [(1, 1), (2, 0)]))
        assert instr.has_dispatchable()
        task = instr.pop_task()
        assert instr.compute(task) == [(1, 1)]

    def test_not_complete_until_operand_complete(self):
        instr = make_restrict()
        instr.operand_page_arrived(0, ref("p0", [(1, 1)]))
        instr.pop_task()
        assert not instr.is_complete()
        instr.operand_completed(0)
        assert instr.is_complete()

    def test_in_flight_blocks_completion(self):
        instr = make_restrict()
        instr.operand_page_arrived(0, ref("p0", [(1, 1)]))
        instr.pop_task()
        instr.in_flight = 1
        instr.operand_completed(0)
        assert not instr.is_complete()


class TestJoinInstruction:
    def test_outer_pages_become_tasks(self):
        instr = make_join()
        instr.operand_page_arrived(0, ref("o0", [(1, 1)]))
        assert len(instr.pending) == 1

    def test_not_dispatchable_without_inner(self):
        instr = make_join()
        instr.operand_page_arrived(0, ref("o0", [(1, 1)]))
        assert not instr.has_dispatchable()
        instr.operand_page_arrived(1, ref("i0", [(2, 1)]))
        assert instr.has_dispatchable()

    def test_dispatchable_with_complete_empty_inner(self):
        instr = make_join()
        instr.operand_page_arrived(0, ref("o0", [(1, 1)]))
        instr.operand_completed(1)
        assert instr.has_dispatchable()

    def test_compute_pair(self):
        instr = make_join()
        outer = ref("o0", [(1, 5), (2, 6)])
        inner = ref("i0", [(3, 5)])
        instr.operand_page_arrived(0, outer)
        instr.operand_page_arrived(1, inner)
        task = instr.pop_task()
        rows = instr.compute_pair(task, inner)
        assert rows == [(1, 5, 3, 5)]

    def test_next_unseen_inner_tracks_task_state(self):
        instr = make_join()
        i0, i1 = ref("i0", [(1, 1)]), ref("i1", [(2, 2)])
        instr.operand_page_arrived(0, ref("o0", [(0, 1)]))
        instr.operand_page_arrived(1, i0)
        instr.operand_page_arrived(1, i1)
        task = instr.pop_task()
        first = instr.next_unseen_inner(task)
        task.seen_inner.add(first.key)
        second = instr.next_unseen_inner(task)
        assert {first.key, second.key} == {"i0", "i1"}
        task.seen_inner.add(second.key)
        assert instr.next_unseen_inner(task) is None

    def test_inner_exhausted(self):
        instr = make_join()
        i0 = ref("i0", [(1, 1)])
        instr.operand_page_arrived(0, ref("o0", [(0, 1)]))
        instr.operand_page_arrived(1, i0)
        task = instr.pop_task()
        assert not instr.inner_exhausted(task)
        task.seen_inner.add("i0")
        instr.operand_completed(1)
        assert instr.inner_exhausted(task)

    def test_inner_page_consumed_waits_for_all_outers(self):
        instr = make_join()
        i0 = ref("i0", [(1, 1)])
        instr.operand_page_arrived(0, ref("o0", [(0, 1)]))
        instr.operand_page_arrived(0, ref("o1", [(0, 1)]))
        instr.operand_page_arrived(1, i0)
        assert not instr.inner_page_consumed(i0)  # outer not complete
        instr.operand_completed(0)
        assert instr.inner_page_consumed(i0)  # second consumption of two

    def test_park_and_unpark(self):
        instr = make_join()
        instr.operand_page_arrived(0, ref("o0", [(0, 1)]))
        instr.operand_page_arrived(1, ref("i0", [(1, 1)]))
        task = instr.pop_task()
        instr.park(task)
        assert not instr.pending
        instr.operand_page_arrived(1, ref("i1", [(2, 2)]))  # triggers unpark
        assert list(instr.pending) == [task]

    def test_task_is_join_flag(self):
        join_task = Task(make_join(), ref("o", [(1, 1)]))
        unary_task = Task(make_restrict(), ref("p", [(1, 1)]))
        assert join_task.is_join and not unary_task.is_join
