"""Pages: capacity, mutation, serialization, and packing."""

import pytest

from repro.errors import PageError
from repro.relational.page import DEFAULT_PAGE_BYTES, Page, pack_rows_into_pages
from repro.relational.schema import DataType, Schema


@pytest.fixture
def small_page(pair_schema):
    """A 64-byte page of 16-byte records: header 8B -> capacity 3."""
    return Page(pair_schema, page_bytes=64)


class TestCapacity:
    def test_capacity_accounts_for_header(self, small_page):
        assert small_page.capacity == 3

    def test_page_too_small_for_one_record_rejected(self, pair_schema):
        with pytest.raises(PageError):
            Page(pair_schema, page_bytes=16)

    def test_default_page_size(self, pair_schema):
        assert Page(pair_schema).page_bytes == DEFAULT_PAGE_BYTES

    def test_free_slots_decrease(self, small_page):
        small_page.append((1, 1))
        assert small_page.free_slots == 2

    def test_used_bytes(self, small_page):
        small_page.append((1, 1))
        assert small_page.used_bytes == 8 + 16


class TestMutation:
    def test_append_then_iterate(self, small_page):
        small_page.append((1, 2))
        small_page.append((3, 4))
        assert list(small_page) == [(1, 2), (3, 4)]

    def test_append_full_raises(self, small_page):
        for i in range(3):
            small_page.append((i, i))
        with pytest.raises(PageError):
            small_page.append((9, 9))

    def test_try_append_reports_fullness(self, small_page):
        for i in range(3):
            assert small_page.try_append((i, i))
        assert not small_page.try_append((9, 9))

    def test_extend_stops_at_capacity(self, small_page):
        taken = small_page.extend([(i, i) for i in range(10)])
        assert taken == 3
        assert small_page.is_full

    def test_clear(self, small_page):
        small_page.append((1, 1))
        small_page.clear()
        assert small_page.is_empty

    def test_append_validates_row(self, small_page):
        with pytest.raises(Exception):
            small_page.append(("bad", 1))

    def test_row_by_slot(self, small_page):
        small_page.append((5, 6))
        assert small_page.row(0) == (5, 6)

    def test_bad_slot_raises(self, small_page):
        with pytest.raises(PageError):
            small_page.row(0)

    def test_len_tracks_rows(self, small_page):
        small_page.append((1, 1))
        assert len(small_page) == 1

    def test_copy_is_independent(self, small_page):
        small_page.append((1, 1))
        dup = small_page.copy()
        dup.append((2, 2))
        assert small_page.row_count == 1
        assert dup.row_count == 2


class TestSerialization:
    def test_to_bytes_is_exactly_page_size(self, small_page):
        small_page.append((1, 2))
        assert len(small_page.to_bytes()) == 64

    def test_roundtrip(self, pair_schema, small_page):
        small_page.append((1, 2))
        small_page.append((3, 4))
        back = Page.from_bytes(pair_schema, small_page.to_bytes())
        assert list(back) == [(1, 2), (3, 4)]

    def test_empty_page_roundtrip(self, pair_schema, small_page):
        back = Page.from_bytes(pair_schema, small_page.to_bytes())
        assert back.is_empty

    def test_wrong_schema_width_rejected(self, small_page):
        wide = Schema.build(("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT))
        small_page.append((1, 2))
        with pytest.raises(PageError):
            Page.from_bytes(wide, small_page.to_bytes())

    def test_truncated_bytes_rejected(self, pair_schema, small_page):
        small_page.append((1, 2))
        small_page.append((3, 4))
        with pytest.raises(PageError):
            Page.from_bytes(pair_schema, small_page.to_bytes()[:20])

    def test_header_shorter_than_header_rejected(self, pair_schema):
        with pytest.raises(PageError):
            Page.from_bytes(pair_schema, b"\x01")

    def test_corrupt_count_over_capacity_rejected(self, pair_schema, small_page):
        import struct

        data = bytearray(small_page.to_bytes())
        struct.pack_into("<I", data, 0, 99)
        with pytest.raises(PageError):
            Page.from_bytes(pair_schema, bytes(data))


class TestPackRowsIntoPages:
    def test_fills_pages_densely(self, pair_schema):
        pages = pack_rows_into_pages(pair_schema, [(i, i) for i in range(10)], page_bytes=64)
        assert [p.row_count for p in pages] == [3, 3, 3, 1]

    def test_empty_rows_give_no_pages(self, pair_schema):
        assert pack_rows_into_pages(pair_schema, [], page_bytes=64) == []

    def test_exact_multiple_has_no_partial_page(self, pair_schema):
        pages = pack_rows_into_pages(pair_schema, [(i, i) for i in range(6)], page_bytes=64)
        assert len(pages) == 2
        assert all(p.is_full for p in pages)

    def test_order_preserved(self, pair_schema):
        rows = [(i, i * 2) for i in range(7)]
        pages = pack_rows_into_pages(pair_schema, rows, page_bytes=64)
        assert [r for p in pages for r in p.rows()] == rows
