"""Schema construction, packing, and projection."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, DataType, Schema


class TestAttribute:
    def test_int_width_is_eight(self):
        assert Attribute("x", DataType.INT).byte_width == 8

    def test_float_width_is_eight(self):
        assert Attribute("x", DataType.FLOAT).byte_width == 8

    def test_char_width_is_declared(self):
        assert Attribute("x", DataType.CHAR, 17).byte_width == 17

    def test_bad_identifier_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("bad name", DataType.INT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", DataType.INT)

    def test_char_needs_positive_width(self):
        with pytest.raises(SchemaError):
            Attribute("x", DataType.CHAR, 0)


class TestSchemaConstruction:
    def test_build_two_field_specs(self):
        schema = Schema.build(("a", DataType.INT), ("b", DataType.FLOAT))
        assert schema.names == ("a", "b")

    def test_build_three_field_spec(self):
        schema = Schema.build(("s", DataType.CHAR, 5))
        assert schema.attribute("s").width == 5

    def test_build_rejects_bad_spec(self):
        with pytest.raises(SchemaError):
            Schema.build(("a",))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.build(("a", DataType.INT), ("a", DataType.FLOAT))

    def test_record_width_sums_attributes(self):
        schema = Schema.build(("a", DataType.INT), ("s", DataType.CHAR, 12))
        assert schema.record_width == 20

    def test_arity_and_len(self):
        schema = Schema.build(("a", DataType.INT), ("b", DataType.INT))
        assert schema.arity == 2
        assert len(schema) == 2

    def test_contains(self):
        schema = Schema.build(("a", DataType.INT))
        assert "a" in schema
        assert "z" not in schema

    def test_index_of_missing_raises(self):
        schema = Schema.build(("a", DataType.INT))
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_iteration_yields_attributes(self):
        schema = Schema.build(("a", DataType.INT), ("b", DataType.FLOAT))
        assert [a.name for a in schema] == ["a", "b"]


class TestPacking:
    def test_roundtrip_int_float_char(self, simple_schema):
        row = (42, "hello", 3.25)
        assert simple_schema.unpack(simple_schema.pack(row)) == row

    def test_packed_width_matches(self, simple_schema):
        assert len(simple_schema.pack((1, "a", 0.0))) == simple_schema.record_width

    def test_char_padding_stripped(self, simple_schema):
        packed = simple_schema.pack((1, "ab", 0.0))
        assert simple_schema.unpack(packed)[1] == "ab"

    def test_empty_string_roundtrip(self, simple_schema):
        assert simple_schema.unpack(simple_schema.pack((1, "", 0.0)))[1] == ""

    def test_char_overflow_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.pack((1, "x" * 13, 0.0))

    def test_arity_mismatch_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.pack((1, "a"))

    def test_type_mismatch_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.pack(("one", "a", 0.0))

    def test_bool_is_not_int(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.pack((True, "a", 0.0))

    def test_int_accepted_for_float_field(self, simple_schema):
        assert simple_schema.unpack(simple_schema.pack((1, "a", 2)))[2] == 2.0

    def test_negative_int_roundtrip(self, simple_schema):
        assert simple_schema.unpack(simple_schema.pack((-7, "a", 0.0)))[0] == -7

    def test_unpack_wrong_length_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.unpack(b"\x00" * 3)

    def test_pack_many_roundtrip(self, simple_schema):
        rows = [(i, f"n{i}", float(i)) for i in range(5)]
        assert simple_schema.unpack_many(simple_schema.pack_many(rows)) == rows

    def test_unpack_many_misaligned_rejected(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.unpack_many(b"\x00" * (simple_schema.record_width + 1))


class TestSchemaTransforms:
    def test_project_keeps_order_given(self, simple_schema):
        assert simple_schema.project(["score", "id"]).names == ("score", "id")

    def test_project_missing_raises(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.project(["ghost"])

    def test_rename(self, simple_schema):
        renamed = simple_schema.rename({"id": "emp_id"})
        assert renamed.names == ("emp_id", "name", "score")

    def test_rename_preserves_widths(self, simple_schema):
        renamed = simple_schema.rename({"name": "label"})
        assert renamed.attribute("label").width == 12

    def test_concat_disjoint(self, simple_schema):
        other = Schema.build(("x", DataType.INT))
        assert simple_schema.concat(other).names == ("id", "name", "score", "x")

    def test_concat_collision_raises_without_prefix(self, simple_schema):
        with pytest.raises(SchemaError):
            simple_schema.concat(simple_schema)

    def test_concat_with_prefixes(self, simple_schema):
        joined = simple_schema.concat(simple_schema, prefix_self="l_", prefix_other="r_")
        assert "l_id" in joined and "r_id" in joined

    def test_concat_unique_suffixes_collisions(self, simple_schema):
        joined = simple_schema.concat_unique(simple_schema)
        assert joined.names == ("id", "name", "score", "id_1", "name_1", "score_1")

    def test_concat_unique_chains(self, simple_schema):
        twice = simple_schema.concat_unique(simple_schema)
        thrice = twice.concat_unique(simple_schema)
        assert "id_2" in thrice

    def test_concat_unique_keeps_outer_names(self, simple_schema):
        joined = simple_schema.concat_unique(simple_schema)
        assert joined.index_of("id") == 0
