"""Catalog registration, lookup, and aggregates."""

import pytest

from repro.errors import CatalogError
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation


@pytest.fixture
def catalog(pair_schema):
    cat = Catalog()
    cat.register(Relation.from_rows("a", pair_schema, [(1, 1)], page_bytes=64))
    cat.register(Relation.from_rows("b", pair_schema, [(2, 2), (3, 3)], page_bytes=64))
    return cat


def test_get(catalog):
    assert catalog.get("a").cardinality == 1


def test_getitem(catalog):
    assert catalog["b"].cardinality == 2


def test_missing_raises_with_names(catalog):
    with pytest.raises(CatalogError) as exc:
        catalog.get("ghost")
    assert "a" in str(exc.value)


def test_duplicate_register_rejected(catalog, pair_schema):
    with pytest.raises(CatalogError):
        catalog.register(Relation("a", pair_schema))


def test_replace_swaps(catalog, pair_schema):
    catalog.replace(Relation.from_rows("a", pair_schema, [(9, 9), (8, 8)], page_bytes=64))
    assert catalog.get("a").cardinality == 2


def test_drop(catalog):
    catalog.drop("a")
    assert "a" not in catalog


def test_drop_missing_raises(catalog):
    with pytest.raises(CatalogError):
        catalog.drop("ghost")


def test_contains(catalog):
    assert "a" in catalog and "zz" not in catalog


def test_names_sorted(catalog):
    assert catalog.names == ["a", "b"]


def test_len_and_iter(catalog):
    assert len(catalog) == 2
    assert {r.name for r in catalog} == {"a", "b"}


def test_total_rows(catalog):
    assert catalog.total_rows == 3


def test_total_bytes(catalog):
    assert catalog.total_bytes == sum(r.byte_size for r in catalog)


def test_summary_mentions_all(catalog):
    text = catalog.summary()
    assert "a" in text and "b" in text and "TOTAL" in text
