"""The ``repro check`` determinism linter: rules R001-R005."""

import json

from repro.check.lint import (
    iter_python_files,
    lint_paths,
    lint_source,
    module_rel,
    render_json,
    render_text,
    self_test,
)

SIM_PATH = "repro/sim/module.py"
RING_PATH = "repro/ring/module.py"


def rules_in(source, path=SIM_PATH):
    return [f.rule for f in lint_source(source, path)]


# ---------------------------------------------------------------------- framework


def test_module_rel_strips_leading_prefixes():
    assert module_rel("src/repro/sim/engine.py") == "repro/sim/engine.py"
    assert module_rel("/abs/path/src/repro/ring/network.py") == "repro/ring/network.py"
    assert module_rel("repro/direct/cache.py") == "repro/direct/cache.py"
    # No repro/ segment: bare basename, unscoped rules still apply.
    assert module_rel("/tmp/xyz/snippet.py") == "snippet.py"


def test_syntax_error_reports_r000():
    findings = lint_source("def broken(:\n", SIM_PATH)
    assert [f.rule for f in findings] == ["R000"]


def test_suppression_comment_is_per_rule():
    source = "import time\nx = time.time()  # repro: allow[R002]\n"
    assert rules_in(source) == []
    wrong_rule = "import time\nx = time.time()  # repro: allow[R001]\n"
    assert rules_in(wrong_rule) == ["R002"]


def test_suppression_comment_accepts_rule_list():
    source = (
        "import time, random\n"
        "x = time.time() + random.random()  # repro: allow[R001, R002]\n"
    )
    assert rules_in(source) == []


def test_render_text_and_json():
    findings = lint_source("import time\nx = time.time()\n", SIM_PATH)
    text = render_text(findings)
    assert "repro/sim/module.py:2" in text and "R002" in text
    assert text.endswith("1 finding(s)")
    payload = json.loads(render_json(findings))
    assert payload["count"] == 1
    assert payload["findings"][0]["rule"] == "R002"


def test_iter_python_files_walks_sorted(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "sub"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n")
    (sub / "notes.txt").write_text("not python\n")
    names = [p.split("/")[-1] for p in iter_python_files([str(tmp_path)])]
    assert names == ["a.py", "b.py", "c.py"]


def test_lint_paths_on_files(tmp_path):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    target = bad / "hot.py"
    target.write_text("import time\nx = time.time()\n")
    findings = lint_paths([str(target)])
    assert [f.rule for f in findings] == ["R002"]


def test_self_test_all_rules_fire():
    assert self_test() == []


# ---------------------------------------------------------------------- R001


def test_r001_flags_random_calls_everywhere():
    source = "import random\nrng = random.Random(7)\n"
    assert rules_in(source, "repro/workload/generator.py") == ["R001"]
    assert rules_in("import random\nx = random.random()\n", "repro/hw.py") == ["R001"]
    assert rules_in("import random\nrandom.seed(0)\n", "top.py") == ["R001"]


def test_r001_exempts_the_streams_module():
    source = "import random\nrng = random.Random(7)\n"
    assert rules_in(source, "repro/sim/random.py") == []


def test_r001_ignores_annotations_and_instances():
    source = (
        "import random\n"
        "def gen(rng: random.Random) -> int:\n"
        "    return rng.randint(0, 9)\n"
    )
    assert rules_in(source, "repro/workload/zipf.py") == []


# ---------------------------------------------------------------------- R002


def test_r002_flags_wall_clock_in_simulator_packages():
    assert rules_in("import time\nx = time.time()\n", RING_PATH) == ["R002"]
    assert rules_in("import time\nx = time.perf_counter()\n", SIM_PATH) == ["R002"]
    source = "from datetime import datetime\nx = datetime.now()\n"
    assert rules_in(source, "repro/direct/machine.py") == ["R002"]


def test_r002_out_of_scope_modules_are_free():
    assert rules_in("import time\nx = time.time()\n", "repro/analysis/report.py") == []


def test_r002_bench_harness_is_allowlisted():
    source = "import time\nstart = time.perf_counter()\n"
    assert rules_in(source, "repro/sweep/bench.py") == []
    # The rest of the sweep package is still in scope.
    assert rules_in(source, "repro/sweep/runner.py") == ["R002"]


# ---------------------------------------------------------------------- R003


def test_r003_flags_iteration_over_set_typed_attribute():
    source = (
        "from typing import Set\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.pending: Set[str] = set()\n"
        "    def drain(self):\n"
        "        for key in self.pending:\n"
        "            print(key)\n"
    )
    assert rules_in(source) == ["R003"]


def test_r003_flags_bare_set_constructions():
    assert rules_in("for x in set([3, 1]):\n    pass\n") == ["R003"]
    assert rules_in("for x in frozenset((1, 2)):\n    pass\n") == ["R003"]
    assert rules_in("for x in {1, 2}:\n    pass\n") == ["R003"]
    assert rules_in("items = [y for y in {v for v in (1, 2)}]\n") == ["R003"]


def test_r003_flags_dict_keys_views():
    assert rules_in("d = {}\nfor k in d.keys():\n    pass\n") == ["R003"]


def test_r003_accepts_sorted_and_ordered_containers():
    source = (
        "from typing import Dict, Set\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self.pending: Set[str] = set()\n"
        "        self.ordered: Dict[str, None] = {}\n"
        "    def drain(self):\n"
        "        for key in sorted(self.pending):\n"
        "            print(key)\n"
        "        for key in self.ordered:\n"
        "            print(key)\n"
    )
    assert rules_in(source) == []


def test_r003_membership_tests_are_fine():
    source = (
        "seen = set()\n"
        "for x in range(5):\n"
        "    if x in seen:\n"
        "        continue\n"
        "    seen.add(x)\n"
    )
    assert rules_in(source) == []


def test_r003_dataclass_frozenset_fields():
    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Req:\n"
        "    shared: frozenset\n"
        "def grant(req: Req):\n"
        "    for name in req.shared:\n"
        "        print(name)\n"
    )
    assert rules_in(source) == ["R003"]


def test_r003_only_in_simulation_packages():
    source = "for x in {1, 2}:\n    pass\n"
    assert rules_in(source, "repro/analysis/report.py") == []


# ---------------------------------------------------------------------- R004


def test_r004_flags_exact_timestamp_equality():
    assert rules_in("def f(a, now):\n    return now == a\n") == ["R004"]
    assert rules_in("def f(e):\n    return e.started_at != e.finished_at\n") == ["R004"]


def test_r004_window_comparisons_are_fine():
    assert rules_in("def f(a, now):\n    return now <= a\n") == []
    assert rules_in("def f(e):\n    return e.started_at < e.deadline\n") == []


def test_r004_ignores_tags_and_none():
    assert rules_in("def f(kind):\n    return kind == 'time'\n") == []
    assert rules_in("def f(e):\n    return e.kind_time == 'abs'\n") == []
    assert rules_in("def f(e):\n    return e.started_at == None\n") == []


def test_r004_chained_comparisons():
    source = "def f(a, b, now):\n    return a <= now == b\n"
    assert rules_in(source) == ["R004"]


# ---------------------------------------------------------------------- R005


def test_r005_flags_unpaired_acquire():
    assert rules_in("def f(r):\n    r.acquire(label='x')\n") == ["R005"]


def test_r005_context_manager_is_paired():
    source = "def f(r):\n    with r.acquire(label='x'):\n        pass\n"
    assert rules_in(source) == []


def test_r005_lexical_release_is_paired():
    source = (
        "def f(r):\n"
        "    lease = r.acquire(label='x')\n"
        "    try:\n"
        "        work()\n"
        "    finally:\n"
        "        lease.release()\n"
    )
    assert rules_in(source) == []


def test_r005_returned_lease_escapes_by_design():
    assert rules_in("def f(r):\n    return r.acquire(label='x')\n") == []


def test_r005_nested_callback_is_its_own_scope():
    # The release lives in a nested callback: pairing is strictly lexical,
    # so this is a finding unless suppressed.
    source = (
        "def f(r, sim):\n"
        "    lease = r.acquire(label='x')\n"
        "    def later():\n"
        "        lease.release()\n"
        "    sim.schedule(1.0, later)\n"
    )
    assert rules_in(source) == ["R005"]
    suppressed = source.replace(
        "lease = r.acquire(label='x')",
        "lease = r.acquire(label='x')  # repro: allow[R005]",
    )
    assert rules_in(suppressed) == []
