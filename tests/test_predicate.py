"""The predicate DSL: comparisons, combinators, join conditions."""

import pytest

from repro.errors import PredicateError
from repro.relational.predicate import (
    And,
    Between,
    CompareOp,
    Comparison,
    FalsePredicate,
    JoinCondition,
    Not,
    Or,
    TruePredicate,
    attr,
)
from repro.relational.schema import DataType, Schema

SCHEMA = Schema.build(("a", DataType.INT), ("b", DataType.INT), ("s", DataType.CHAR, 8))
ROW = (5, 10, "hi")


def ev(pred, row=ROW):
    return pred.evaluate(row, SCHEMA)


def cp(pred, row=ROW):
    return pred.compile(SCHEMA)(row)


class TestComparisons:
    @pytest.mark.parametrize(
        "pred,expected",
        [
            (attr("a") == 5, True),
            (attr("a") == 6, False),
            (attr("a") != 6, True),
            (attr("a") < 6, True),
            (attr("a") <= 5, True),
            (attr("a") > 4, True),
            (attr("a") >= 6, False),
            (attr("s") == "hi", True),
        ],
    )
    def test_evaluate(self, pred, expected):
        assert ev(pred) is expected

    @pytest.mark.parametrize(
        "pred",
        [attr("a") == 5, attr("a") < 6, attr("a") >= 6, attr("s") == "hi"],
    )
    def test_compiled_agrees_with_interpreted(self, pred):
        assert cp(pred) == ev(pred)

    def test_attr_to_attr_comparison(self):
        assert ev(attr("a") < attr("b"))
        assert not ev(attr("a") == attr("b"))

    def test_compiled_attr_to_attr(self):
        assert cp(attr("b") > attr("a"))

    def test_references(self):
        assert (attr("a") == 5).references() == frozenset({"a"})
        assert (attr("a") == attr("b")).references() == frozenset({"a", "b"})

    def test_validate_missing_attribute(self):
        with pytest.raises(PredicateError):
            (attr("ghost") == 1).validate(SCHEMA)

    def test_flipped_op(self):
        assert CompareOp.LT.flipped() is CompareOp.GT
        assert CompareOp.EQ.flipped() is CompareOp.EQ


class TestCombinators:
    def test_and(self):
        assert ev((attr("a") == 5) & (attr("b") == 10))
        assert not ev((attr("a") == 5) & (attr("b") == 11))

    def test_or(self):
        assert ev((attr("a") == 0) | (attr("b") == 10))
        assert not ev((attr("a") == 0) | (attr("b") == 0))

    def test_not(self):
        assert ev(~(attr("a") == 0))

    def test_nested_combination(self):
        pred = ((attr("a") > 0) & (attr("b") > 0)) | FalsePredicate()
        assert ev(pred) and cp(pred)

    def test_true_false_predicates(self):
        assert ev(TruePredicate()) and not ev(FalsePredicate())
        assert cp(TruePredicate()) and not cp(FalsePredicate())

    def test_combinator_references_union(self):
        pred = (attr("a") == 1) & (attr("b") == 2)
        assert pred.references() == frozenset({"a", "b"})

    def test_between(self):
        assert ev(attr("a").between(5, 9))
        assert not ev(attr("a").between(6, 9))
        assert cp(attr("b").between(0, 10))

    def test_repr_is_readable(self):
        text = repr((attr("a") == 5) & ~(attr("b") < 3))
        assert "AND" in text and "NOT" in text


class TestJoinConditions:
    LEFT = Schema.build(("x", DataType.INT))
    RIGHT = Schema.build(("y", DataType.INT))

    def test_equijoin_builder(self):
        cond = attr("x").equals_attr("y")
        assert cond.is_equijoin
        assert cond.evaluate((3,), self.LEFT, (3,), self.RIGHT)
        assert not cond.evaluate((3,), self.LEFT, (4,), self.RIGHT)

    def test_theta_join(self):
        cond = attr("x").joins(CompareOp.LT, "y")
        assert not cond.is_equijoin
        assert cond.evaluate((1,), self.LEFT, (2,), self.RIGHT)

    def test_compiled_join_condition(self):
        fn = attr("x").equals_attr("y").compile(self.LEFT, self.RIGHT)
        assert fn((7,), (7,)) and not fn((7,), (8,))

    def test_validate_outer_side(self):
        with pytest.raises(PredicateError):
            attr("ghost").equals_attr("y").validate(self.LEFT, self.RIGHT)

    def test_validate_inner_side(self):
        with pytest.raises(PredicateError):
            attr("x").equals_attr("ghost").validate(self.LEFT, self.RIGHT)

    def test_repr(self):
        assert "outer.x" in repr(attr("x").equals_attr("y"))


class TestDatasetSemantics:
    def test_comparison_dataclass_equality(self):
        assert Comparison("a", CompareOp.EQ, 5) == Comparison("a", CompareOp.EQ, 5)

    def test_and_or_not_are_values(self):
        p = And(Comparison("a", CompareOp.EQ, 1), Not(Comparison("b", CompareOp.LT, 2)))
        q = And(Comparison("a", CompareOp.EQ, 1), Not(Comparison("b", CompareOp.LT, 2)))
        assert p == q

    def test_or_evaluate_short_circuit_semantics(self):
        # Right side references a missing attr; OR must still be buildable
        # and fail only at validate time.
        pred = Or(Comparison("a", CompareOp.EQ, 5), Comparison("ghost", CompareOp.EQ, 1))
        with pytest.raises(PredicateError):
            pred.validate(SCHEMA)

    def test_between_dataclass(self):
        assert Between("a", 1, 2) == Between("a", 1, 2)
