"""Reference relational algebra operators (the oracle)."""

import pytest

from repro.errors import PredicateError, SchemaError
from repro.relational import operators
from repro.relational.predicate import CompareOp, FalsePredicate, TruePredicate, attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema


@pytest.fixture
def left(pair_schema):
    return Relation.from_rows("L", pair_schema, [(i, i % 3) for i in range(9)], page_bytes=64)


@pytest.fixture
def right(pair_schema):
    return Relation.from_rows("R", pair_schema, [(i + 100, i % 3) for i in range(6)], page_bytes=64)


class TestRestrict:
    def test_keeps_matching_rows(self, left):
        out = operators.restrict(left, attr("grp") == 1)
        assert sorted(r[0] for r in out.rows()) == [1, 4, 7]

    def test_true_predicate_is_identity(self, left):
        assert operators.restrict(left, TruePredicate()).same_rows_as(left)

    def test_false_predicate_is_empty(self, left):
        assert operators.restrict(left, FalsePredicate()).cardinality == 0

    def test_keeps_schema(self, left):
        assert operators.restrict(left, attr("k") > 0).schema == left.schema

    def test_validates_predicate(self, left):
        with pytest.raises(Exception):
            operators.restrict(left, attr("ghost") == 1)

    def test_result_name_default(self, left):
        assert operators.restrict(left, TruePredicate()).name == "restrict(L)"

    def test_result_page_bytes_inherited(self, left):
        assert operators.restrict(left, TruePredicate()).page_bytes == 64


class TestProject:
    def test_attribute_cut(self, left):
        out = operators.project(left, ["grp"], eliminate_duplicates=False)
        assert out.schema.names == ("grp",)
        assert out.cardinality == 9

    def test_duplicate_elimination(self, left):
        out = operators.project(left, ["grp"])
        assert sorted(r[0] for r in out.rows()) == [0, 1, 2]

    def test_order_of_first_occurrence_kept(self, left):
        out = operators.project(left, ["grp"])
        assert [r[0] for r in out.rows()] == [0, 1, 2]

    def test_reorder_attributes(self, left):
        out = operators.project(left, ["grp", "k"], eliminate_duplicates=False)
        assert out.schema.names == ("grp", "k")
        assert next(iter(out.rows())) == (0, 0)

    def test_distinct_is_full_schema_project(self, pair_schema):
        rel = Relation.from_rows("D", pair_schema, [(1, 1), (1, 1), (2, 2)], page_bytes=64)
        assert operators.distinct(rel).cardinality == 2


class TestJoins:
    def test_nested_loops_equijoin(self, left, right):
        out = operators.nested_loops_join(left, right, attr("grp").equals_attr("grp"))
        assert out.cardinality == 9 * 6 // 3  # 3 rows per group each side

    def test_join_schema_concat_unique(self, left, right):
        out = operators.nested_loops_join(left, right, attr("grp").equals_attr("grp"))
        assert out.schema.names == ("k", "grp", "k_1", "grp_1")

    def test_all_equijoin_algorithms_agree(self, left, right):
        cond = attr("grp").equals_attr("grp")
        nl = operators.nested_loops_join(left, right, cond)
        sm = operators.sort_merge_join(left, right, cond)
        hj = operators.hash_join(left, right, cond)
        assert nl.same_rows_as(sm) and nl.same_rows_as(hj)

    def test_theta_join_nested_loops_only(self, left, right):
        cond = attr("k").joins(CompareOp.LT, "k")
        out = operators.nested_loops_join(left, right, cond)
        assert out.cardinality == 9 * 6  # every left k < every right k (+100)

    def test_sort_merge_rejects_theta(self, left, right):
        with pytest.raises(PredicateError):
            operators.sort_merge_join(left, right, attr("k").joins(CompareOp.LT, "k"))

    def test_hash_rejects_theta(self, left, right):
        with pytest.raises(PredicateError):
            operators.hash_join(left, right, attr("k").joins(CompareOp.LT, "k"))

    def test_join_dispatch_unknown_algorithm(self, left, right):
        with pytest.raises(PredicateError):
            operators.join(left, right, attr("grp").equals_attr("grp"), algorithm="quantum")

    def test_join_with_empty_inner(self, left, pair_schema):
        empty = Relation("E", pair_schema, page_bytes=64)
        out = operators.nested_loops_join(left, empty, attr("grp").equals_attr("grp"))
        assert out.cardinality == 0

    def test_join_with_empty_outer(self, right, pair_schema):
        empty = Relation("E", pair_schema, page_bytes=64)
        out = operators.hash_join(empty, right, attr("grp").equals_attr("grp"))
        assert out.cardinality == 0

    def test_duplicate_keys_produce_cross_products(self, pair_schema):
        a = Relation.from_rows("A", pair_schema, [(1, 7), (2, 7)], page_bytes=64)
        b = Relation.from_rows("B", pair_schema, [(3, 7), (4, 7), (5, 7)], page_bytes=64)
        cond = attr("grp").equals_attr("grp")
        assert operators.sort_merge_join(a, b, cond).cardinality == 6

    def test_semijoin(self, left, right):
        smaller = operators.restrict(right, attr("grp") == 1, name="r1")
        out = operators.semijoin(left, smaller, attr("grp").equals_attr("grp"))
        assert sorted(r[0] for r in out.rows()) == [1, 4, 7]
        assert out.schema == left.schema


class TestUpdateOperators:
    def test_append_concatenates(self, left, pair_schema):
        extra = Relation.from_rows("X", pair_schema, [(100, 0)], page_bytes=64)
        out = operators.append(left, extra)
        assert out.cardinality == 10

    def test_append_keeps_target_name(self, left, pair_schema):
        extra = Relation.from_rows("X", pair_schema, [(100, 0)], page_bytes=64)
        assert operators.append(left, extra).name == "L"

    def test_append_arity_mismatch_rejected(self, left, simple_relation):
        with pytest.raises(SchemaError):
            operators.append(left, simple_relation)

    def test_delete_removes_matching(self, left):
        out = operators.delete(left, attr("grp") == 0)
        assert out.cardinality == 6
        assert all(r[1] != 0 for r in out.rows())

    def test_delete_nothing(self, left):
        assert operators.delete(left, FalsePredicate()).same_rows_as(left)

    def test_delete_everything(self, left):
        assert operators.delete(left, TruePredicate()).cardinality == 0


class TestSetOperators:
    @pytest.fixture
    def a(self, pair_schema):
        return Relation.from_rows("A", pair_schema, [(1, 1), (2, 2), (2, 2)], page_bytes=64)

    @pytest.fixture
    def b(self, pair_schema):
        return Relation.from_rows("B", pair_schema, [(2, 2), (3, 3)], page_bytes=64)

    def test_union_eliminates_duplicates(self, a, b):
        out = operators.union(a, b)
        assert sorted(r[0] for r in out.rows()) == [1, 2, 3]

    def test_difference(self, a, b):
        out = operators.difference(a, b)
        assert sorted(r[0] for r in out.rows()) == [1]

    def test_intersect(self, a, b):
        out = operators.intersect(a, b)
        assert sorted(r[0] for r in out.rows()) == [2]

    def test_union_requires_compatibility(self, a, simple_relation):
        with pytest.raises(SchemaError):
            operators.union(a, simple_relation)

    def test_difference_with_empty(self, a, pair_schema):
        empty = Relation("E", pair_schema, page_bytes=64)
        out = operators.difference(a, empty)
        assert sorted(r[0] for r in out.rows()) == [1, 2]

    def test_sort_operator(self, a):
        out = operators.sort(a, ["k"])
        assert [r[0] for r in out.rows()] == [1, 2, 2]
