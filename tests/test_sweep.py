"""The sweep runner: worker resolution, fan-out, deterministic merge.

The headline guarantee under test: ``map_points(..., workers=N)`` for any
N produces byte-identical experiment output *and* byte-identical ambient
metrics to the serial run, including the ``run`` labels and the global
run-id counter's final position.
"""

import pytest

from repro import obs
from repro.errors import SimulationError
from repro.sweep import effective_workers, map_points

SMALL = dict(scale=0.05, selectivity=0.3)


# -- worker resolution ------------------------------------------------------


def test_effective_workers_defaults_to_serial():
    assert effective_workers(None, points=10) == 1
    assert effective_workers(1, points=10) == 1


def test_effective_workers_clamps_to_points():
    assert effective_workers(8, points=3) == 3


def test_effective_workers_zero_means_cpu_count():
    resolved = effective_workers(0, points=1000)
    assert 1 <= resolved <= 1000


def test_effective_workers_rejects_negative():
    with pytest.raises(SimulationError):
        effective_workers(-1, points=4)


# -- fan-out mechanics ------------------------------------------------------


def _square(x):
    """Module-level so it pickles by reference into worker processes."""
    return x * x


def test_map_points_serial_order():
    points = [dict(x=i) for i in range(5)]
    assert map_points(_square, points) == [0, 1, 4, 9, 16]


def test_map_points_parallel_order():
    points = [dict(x=i) for i in range(5)]
    assert map_points(_square, points, workers=2) == [0, 1, 4, 9, 16]


_INLINE_CALLS = []


def _record_inline(x):
    _INLINE_CALLS.append(x)
    return x


def test_tracing_forces_serial_fallback():
    # A single global trace timeline cannot be split across processes, so
    # an ambient tracer makes map_points run inline (side effects land in
    # this process) even when workers > 1.
    _INLINE_CALLS.clear()
    with obs.observe(trace=True, metrics=False):
        out = map_points(_record_inline, [dict(x=1), dict(x=2)], workers=2)
    assert out == [1, 2]
    assert _INLINE_CALLS == [1, 2]


# -- deterministic metrics merge -------------------------------------------


def _obs_point(value):
    """A cheap instrumented point: consumes a run id, records everything."""
    session = obs.ambient()
    run = obs.next_run_id()
    session.metrics.counter("point.calls").add()
    session.metrics.counter("point.bytes", run=run).add(100 * value)
    tally = session.metrics.tally("point.value")
    tally.observe(float(value))
    tally.observe(float(value) / 3.0)  # non-trivial float, order-sensitive
    session.metrics.set_gauge("point.last", value, run=run)
    session.metrics.series("point.depth", run=run).record(0.0, value)
    return value * 2


def _run_obs_sweep(workers):
    obs.set_next_run_id(1)
    points = [dict(value=v) for v in (3, 1, 4, 1, 5)]
    with obs.observe(trace=False, metrics=True) as session:
        values = map_points(_obs_point, points, workers=workers)
    return values, session.metrics.report(), obs.peek_run_id()


def test_parallel_metrics_merge_matches_serial():
    serial_values, serial_report, serial_next = _run_obs_sweep(workers=1)
    par_values, par_report, par_next = _run_obs_sweep(workers=2)
    assert par_values == serial_values
    assert par_report == serial_report  # counters, gauges, tallies, series
    assert par_next == serial_next == 6  # run-id counter continues identically


def test_merged_run_labels_follow_point_order():
    _, report, _ = _run_obs_sweep(workers=3)
    # Point i consumed run id i+1 regardless of which worker executed it.
    assert report["gauges"] == {
        "point.last{run=1}": 3,
        "point.last{run=2}": 1,
        "point.last{run=3}": 4,
        "point.last{run=4}": 1,
        "point.last{run=5}": 5,
    }


# -- end to end: a real experiment sweep ------------------------------------


def test_figure_3_1_parallel_byte_identical_to_serial():
    from repro.experiments import figure_3_1

    obs.set_next_run_id(1)
    with obs.observe(trace=False, metrics=True) as s_serial:
        serial = figure_3_1.run(processors=(2,), workers=1, **SMALL)
    serial_next = obs.peek_run_id()

    obs.set_next_run_id(1)
    with obs.observe(trace=False, metrics=True) as s_par:
        parallel = figure_3_1.run(processors=(2,), workers=2, **SMALL)
    parallel_next = obs.peek_run_id()

    assert parallel.render() == serial.render()
    assert parallel.rows == serial.rows
    assert s_par.metrics.report() == s_serial.metrics.report()
    assert parallel_next == serial_next


def test_uninstrumented_parallel_matches_serial():
    from repro.experiments import figure_3_1

    serial = figure_3_1.run(processors=(2,), workers=1, **SMALL)
    parallel = figure_3_1.run(processors=(2,), workers=2, **SMALL)
    assert parallel.render() == serial.render()
