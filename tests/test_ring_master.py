"""MC pool arbitration and admission invariants, observed mid-flight."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query.builder import delete_from, scan
from repro.ring.machine import RingMachine

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Relation.from_rows("a", SCHEMA, [(i, i % 6) for i in range(240)], page_bytes=128)
    )
    cat.register(
        Relation.from_rows("b", SCHEMA, [(i, i % 6) for i in range(120)], page_bytes=128)
    )
    return cat


def join_tree(name):
    return (
        scan("a").restrict(attr("k") < 200)
        .equijoin(scan("b").restrict(attr("k") < 100), "g", "g")
        .tree(name)
    )


class TestPoolInvariants:
    def test_grants_never_exceed_pool(self, catalog):
        machine = RingMachine(catalog, processors=3, controllers=8, page_bytes=128)
        machine.submit(join_tree("q"))
        # Step the simulation manually, asserting the invariant throughout:
        # owned + free == total.
        steps = 0
        while machine.sim.step() and steps < 20_000:
            steps += 1
            owned = sum(1 for ip in machine.ips if ip.owner is not None)
            granted_in_flight = len(machine.ips) - owned - len(machine.mc.free_ips)
            assert 0 <= granted_in_flight <= len(machine.ips)
        assert machine.mc.free_ip_count == 3

    def test_wants_drained_at_completion(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=8, page_bytes=128)
        machine.submit(join_tree("q"))
        machine.run()
        assert machine.mc.wants == {}

    def test_fifo_admission_order(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=4, page_bytes=128)
        # Each query needs 3 ICs; with 4 ICs they must run one at a time,
        # in submission order.
        first = join_tree("first")
        second = join_tree("second")
        machine.submit(first)
        machine.submit(second)
        report = machine.run()
        assert report.query_times["first"] < report.query_times["second"]

    def test_lock_conflict_blocks_tail_not_head(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=12, page_bytes=128)
        machine.submit(scan("a").restrict(attr("g") == 1).tree("reader"))
        machine.submit(delete_from("a", attr("g") == 5, name="writer"))
        machine.submit(scan("b").restrict(attr("g") == 2).tree("independent"))
        report = machine.run()
        # FIFO admission: the blocked writer also blocks the later reader
        # of an unrelated relation (the paper's simple queue; documented).
        assert report.query_times["writer"] > report.query_times["reader"]
        assert report.queries_admitted == 3

    def test_single_ip_machine_completes_deep_query(self, catalog):
        machine = RingMachine(catalog, processors=1, controllers=8, page_bytes=128)
        deep = (
            scan("a").restrict(attr("k") < 150)
            .equijoin(scan("b").restrict(attr("k") < 80), "g", "g")
            .equijoin(scan("b").restrict(attr("k") >= 80), "g", "g")
            .tree("deep")
        )
        machine.submit(deep)
        report = machine.run()  # the reserved-IP rule must keep this live
        assert report.results["deep"].cardinality >= 0
        assert machine.mc.free_ip_count == 1


class TestControllerBookkeeping:
    def test_no_ic_keeps_refs_after_run(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=8, page_bytes=128)
        machine.submit(join_tree("q"))
        machine.run()
        assert machine.active_ics() == []

    def test_ic_memory_accounting_bounded(self, catalog):
        machine = RingMachine(
            catalog, processors=2, controllers=8, page_bytes=128, ic_memory_pages=4
        )
        machine.submit(join_tree("q"))
        peak = 0
        steps = 0
        while machine.sim.step() and steps < 50_000:
            steps += 1
            for ic in machine.active_ics():
                live = len(ic._local) - len(ic._overflowing)
                peak = max(peak, live)
        # Live (non-overflowing) local pages never exceed the IC budget by
        # more than the page being installed.
        assert peak <= 4 + 1
