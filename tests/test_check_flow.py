"""The interprocedural flow analyses: call graph, lock order, effects.

Covers the ``repro.check.flow`` subpackage (F001 deadlock detection with
witness chains, F002 fusion-safety proofs), the runtime
``LockOrderWitness``, the new lint rules R006-R010, multi-id ``allow[]``
suppression, the output renderers, and the fusion-safety gate inside
``resolve_fusion``.
"""

import json
from pathlib import Path

import pytest

from repro.check.flow import (
    analyze_fusion_safety,
    analyze_lock_order,
    analyze_paths,
    build_call_graph,
    flow_self_test,
)
from repro.check.flow.callgraph import CallGraph
from repro.check.flow.effects import DURATION_PURE, EFFECTFUL, PURE, classify_effects
from repro.check.lint import lint_source, self_test
from repro.check.render import render, render_github, render_sarif
from repro.check.sanitizer import LockOrderWitness, active_witness, sanitizing
from repro.errors import SanitizerError
from repro.ring.concurrency import LockManager, LockRequest

SRC = Path(__file__).resolve().parent.parent / "src"
SIM_PATH = "repro/sim/module.py"


def graph_of(source, path=SIM_PATH):
    graph = CallGraph()
    graph.add_module(source, path)
    graph.freeze()
    return graph


# ------------------------------------------------------------------ call graph


def test_self_call_resolves_to_same_class_method():
    graph = graph_of(
        "class A:\n"
        "    def f(self):\n"
        "        self.g()\n"
        "    def g(self):\n"
        "        pass\n"
        "class B:\n"
        "    def g(self):\n"
        "        pass\n"
    )
    caller = graph.functions[f"{SIM_PATH}::A.f"]
    targets = graph.resolve(caller, caller.calls[0])
    assert [t.qualname for t in targets] == [f"{SIM_PATH}::A.g"]


def test_self_call_without_own_method_falls_back_to_all_methods():
    graph = graph_of(
        "class A:\n"
        "    def f(self):\n"
        "        self.h()\n"
        "class B:\n"
        "    def h(self):\n"
        "        pass\n"
        "class C:\n"
        "    def h(self):\n"
        "        pass\n"
    )
    caller = graph.functions[f"{SIM_PATH}::A.f"]
    names = sorted(t.qualname for t in graph.resolve(caller, caller.calls[0]))
    assert names == [f"{SIM_PATH}::B.h", f"{SIM_PATH}::C.h"]


def test_bare_call_prefers_same_module():
    graph = CallGraph()
    graph.add_module("def helper():\n    pass\ndef f():\n    helper()\n", SIM_PATH)
    graph.add_module("def helper():\n    pass\n", "repro/ring/other.py")
    graph.freeze()
    caller = graph.functions[f"{SIM_PATH}::f"]
    targets = graph.resolve(caller, caller.calls[0])
    assert [t.qualname for t in targets] == [f"{SIM_PATH}::helper"]


def test_attribute_call_resolves_to_every_def_named():
    graph = CallGraph()
    graph.add_module("class A:\n    def go(self):\n        pass\n", SIM_PATH)
    graph.add_module(
        "class B:\n    def go(self):\n        pass\n"
        "def f(obj):\n    obj.go()\n",
        "repro/ring/other.py",
    )
    graph.freeze()
    caller = graph.functions["repro/ring/other.py::f"]
    names = sorted(t.qualname for t in graph.resolve(caller, caller.calls[0]))
    assert names == ["repro/ring/other.py::B.go", f"{SIM_PATH}::A.go"]


def test_nested_defs_are_indexed():
    graph = graph_of("def outer():\n    def inner():\n        pass\n    inner()\n")
    assert f"{SIM_PATH}::inner" in graph.functions


# ------------------------------------------------------------------ lock order


INVERTED = (
    "class Worker:\n"
    "    def grab_ab(self, request):\n"
    "        self.lock_a.acquire(request)\n"
    "        self.lock_b.acquire(request)\n"
    "        self.lock_b.release(request)\n"
    "        self.lock_a.release(request)\n"
    "\n"
    "    def grab_ba(self, request):\n"
    "        self.lock_b.acquire(request)\n"
    "        self.lock_a.acquire(request)\n"
    "        self.lock_a.release(request)\n"
    "        self.lock_b.release(request)\n"
)


def test_inverted_orders_report_a_cycle_with_witness_chains():
    analysis = analyze_lock_order(graph_of(INVERTED))
    assert len(analysis.cycles) == 1
    cycle = analysis.cycles[0]
    assert cycle.locks == ("lock_a", "lock_b")
    rendered = cycle.render()
    # Witness chains carry the acquire sites of both directions.
    assert "acquire 'lock_a'" in rendered and "acquire 'lock_b'" in rendered
    assert f"{SIM_PATH}:3" in rendered or f"{SIM_PATH}:4" in rendered


def test_consistent_orders_report_no_cycle():
    consistent = INVERTED.replace(
        "        self.lock_b.acquire(request)\n"
        "        self.lock_a.acquire(request)\n"
        "        self.lock_a.release(request)\n"
        "        self.lock_b.release(request)\n",
        "        self.lock_a.acquire(request)\n"
        "        self.lock_b.acquire(request)\n"
        "        self.lock_b.release(request)\n"
        "        self.lock_a.release(request)\n",
    )
    analysis = analyze_lock_order(graph_of(consistent))
    assert analysis.cycles == []
    assert len(analysis.edges) >= 1  # the order edge itself is still there


def test_release_cuts_the_region_before_a_reacquire():
    # The MasterController pattern: release, then retry admission.  The
    # re-acquire happens after the release, so no self-edge (deadlock)
    # may be reported.
    source = (
        "class MC:\n"
        "    def try_admit(self, request):\n"
        "        self.locks.try_acquire(request)\n"
        "\n"
        "    def query_finished(self, name, request):\n"
        "        self.locks.release(name)\n"
        "        self.try_admit(request)\n"
    )
    analysis = analyze_lock_order(graph_of(source))
    assert analysis.cycles == []


def test_interprocedural_edge_has_call_chain():
    source = (
        "class MC:\n"
        "    def admit(self, request):\n"
        "        self.locks.try_acquire(request)\n"
        "        self.notify(request)\n"
        "\n"
        "    def notify(self, request):\n"
        "        self.audit_lock.acquire(request)\n"
    )
    analysis = analyze_lock_order(graph_of(source))
    edges = [e for e in analysis.edges if e.target.lock == "audit_lock"]
    assert len(edges) == 1
    chain = edges[0].render_chain()
    assert "acquire 'locks'" in chain
    assert "MC.notify" in chain
    assert "acquire 'audit_lock'" in chain


def test_project_tree_has_no_lock_cycles():
    analysis = analyze_lock_order(build_call_graph([str(SRC)]))
    assert analysis.cycles == []
    # The one real acquire site (MasterController.try_admit) is found.
    assert any(s.function.endswith("MasterController.try_admit") for s in analysis.sites)


# --------------------------------------------------------------------- effects


def test_effect_lattice_classification():
    graph = graph_of(
        "def pure(a, b):\n"
        "    return a + b\n"
        "class M:\n"
        "    def duration(self, rows):\n"
        "        return rows * self.per_row\n"
        "    def effectful(self, rows):\n"
        "        self.count = self.count + rows\n"
        "        return rows\n"
    )
    effects = classify_effects(graph)
    assert effects[f"{SIM_PATH}::pure"] == PURE
    assert effects[f"{SIM_PATH}::M.duration"] == DURATION_PURE
    assert effects[f"{SIM_PATH}::M.effectful"] == EFFECTFUL


def test_effectful_callee_poisons_caller_through_fixpoint():
    graph = graph_of(
        "class M:\n"
        "    def leaf(self):\n"
        "        self.hits = 1\n"
        "    def mid(self):\n"
        "        return self.leaf()\n"
        "    def top(self):\n"
        "        return self.mid()\n"
    )
    effects = classify_effects(graph)
    assert effects[f"{SIM_PATH}::M.top"] == EFFECTFUL


def test_raise_context_call_is_exempt():
    graph = graph_of(
        "def f(x):\n"
        "    if x < 0:\n"
        "        raise ValueError(f'bad {x}')\n"
        "    return x\n"
    )
    assert classify_effects(graph)[f"{SIM_PATH}::f"] == PURE


def test_unresolved_call_classifies_effectful():
    graph = graph_of("def f(x):\n    return mystery(x)\n")
    assert classify_effects(graph)[f"{SIM_PATH}::f"] == EFFECTFUL


def test_annotations_do_not_demote_purity():
    graph = graph_of(
        "from __future__ import annotations\n"
        "def f(x: SomeType) -> OtherType:\n"
        "    return x\n"
    )
    assert classify_effects(graph)[f"{SIM_PATH}::f"] == PURE


# --------------------------------------------------------------- fusion safety


UNSAFE_CHAIN = (
    "class Operator:\n"
    "    def scan_cost_ms(self, rows):\n"
    "        self.calls = self.calls + 1\n"
    "        return rows * 0.25\n"
    "\n"
    "    def charge(self, rows):\n"
    "        return fused_chain_end([self.scan_cost_ms(rows)])\n"
)


def test_effectful_obligation_makes_chain_unsafe():
    report = analyze_fusion_safety(graph_of(UNSAFE_CHAIN))
    assert len(report.chains) == 1
    chain = report.chains[0]
    assert not chain.safe
    assert chain.unsafe[0][0] == "scan_cost_ms"
    assert not report.module_proven_safe(SIM_PATH)


def test_duration_pure_obligations_prove_the_chain():
    safe = UNSAFE_CHAIN.replace("        self.calls = self.calls + 1\n", "")
    report = analyze_fusion_safety(graph_of(safe))
    assert len(report.chains) == 1
    assert report.chains[0].safe
    assert report.module_proven_safe(SIM_PATH)


def test_module_without_chains_is_not_proven():
    # Fail closed: a scan that finds nothing is a broken scan, not a
    # safety certificate.
    report = analyze_fusion_safety(graph_of("def f():\n    pass\n"))
    assert not report.module_proven_safe(SIM_PATH)


def test_project_machines_are_proven_safe():
    report = analyze_fusion_safety(build_call_graph([str(SRC)]))
    assert report.module_proven_safe("repro/ring/processor.py")
    assert report.module_proven_safe("repro/direct/machine.py")
    assert report.unsafe_chains() == []


def test_report_to_dict_is_byte_stable():
    report = analyze_fusion_safety(graph_of(UNSAFE_CHAIN))
    first = json.dumps(report.to_dict(), sort_keys=True)
    second = json.dumps(
        analyze_fusion_safety(graph_of(UNSAFE_CHAIN)).to_dict(), sort_keys=True
    )
    assert first == second


# ------------------------------------------------------------------ the driver


def test_analyze_paths_is_clean_on_src():
    assert analyze_paths([str(SRC)]) == []


def test_flow_self_test_passes():
    assert flow_self_test() == []


def test_seeded_violations_produce_findings(tmp_path):
    scratch = tmp_path / "repro" / "sim"
    scratch.mkdir(parents=True)
    (scratch / "bad.py").write_text(INVERTED + "\n\n" + UNSAFE_CHAIN)
    findings = analyze_paths([str(tmp_path)])
    rules = {f.rule for f in findings}
    assert rules == {"F001", "F002"}
    deadlock = next(f for f in findings if f.rule == "F001")
    assert "->" in deadlock.message  # witness chain present
    assert deadlock.line > 0


def test_allow_comment_suppresses_flow_finding(tmp_path):
    scratch = tmp_path / "repro" / "sim"
    scratch.mkdir(parents=True)
    suppressed = INVERTED.replace(
        "        self.lock_a.acquire(request)\n"
        "        self.lock_b.acquire(request)\n"
        "        self.lock_b.release(request)\n",
        "        self.lock_a.acquire(request)  # repro: allow[F001]\n"
        "        self.lock_b.acquire(request)\n"
        "        self.lock_b.release(request)\n",
        1,
    )
    (scratch / "bad.py").write_text(suppressed)
    assert [f.rule for f in analyze_paths([str(tmp_path)])] == []


# ------------------------------------------------------------- rules R006-R010


def rules_in(source, path=SIM_PATH):
    return [f.rule for f in lint_source(source, path)]


def test_r006_fires_on_inverted_module_order():
    findings = [f for f in lint_source(INVERTED, SIM_PATH) if f.rule == "R006"]
    assert len(findings) == 1
    assert "inverted order" in findings[0].message
    assert findings[0].line == 10  # the second acquire of the late function


def test_r006_silent_on_consistent_order():
    consistent = (
        "def f(self, r):\n"
        "    self.lock_a.acquire(r)\n"
        "    self.lock_b.acquire(r)\n"
        "    self.lock_b.release(r)\n"
        "def g(self, r):\n"
        "    self.lock_a.acquire(r)\n"
        "    self.lock_b.acquire(r)\n"
        "    self.lock_b.release(r)\n"
    )
    assert "R006" not in rules_in(consistent)


def test_r007_fires_on_attribute_write_in_duration_callable():
    source = "def scan_cost_ms(self, rows):\n    self.calls = 1\n    return rows\n"
    assert "R007" in rules_in(source)


def test_r007_silent_on_reads_and_local_stores():
    source = (
        "def join_cpu_ms(self, rows):\n"
        "    per_pair = self.join_pair_ms\n"
        "    return rows * per_pair\n"
    )
    assert "R007" not in rules_in(source)


def test_r007_ignores_nested_closures():
    source = (
        "def cost_ms(self, rows):\n"
        "    def settle():\n"
        "        self.counter = 1\n"
        "    return rows\n"
    )
    assert "R007" not in rules_in(source)


def test_r008_fires_on_mutable_default():
    assert "R008" in rules_in("def f(pending=[]):\n    return pending\n")
    assert "R008" in rules_in("def f(cache={}):\n    return cache\n")
    assert "R008" in rules_in("def f(seen=set()):\n    return seen\n")


def test_r008_silent_on_immutable_defaults():
    assert "R008" not in rules_in("def f(x=None, y=(), z=0):\n    return x\n")


def test_r009_fires_outside_with():
    assert "R009" in rules_in("def f():\n    ctx = sanitizing()\n    return ctx\n")


def test_r009_allows_with_and_enter_context():
    ok = (
        "def f(stack):\n"
        "    with sanitizing():\n"
        "        pass\n"
        "    stack.enter_context(injecting(None))\n"
    )
    assert "R009" not in rules_in(ok)


def test_r010_fires_without_sort_keys():
    assert "R010" in rules_in("import json\ndef f(d):\n    return json.dumps(d)\n")


def test_r010_allows_sorted_serialization():
    source = "import json\ndef f(d):\n    return json.dumps(d, sort_keys=True)\n"
    assert "R010" not in rules_in(source)


def test_multi_id_allow_comment_suppresses_both_rules():
    source = (
        "import time, random\n"
        "x = random.random() + time.time()  # repro: allow[R001,R002]\n"
    )
    assert rules_in(source) == []


def test_two_allow_groups_on_one_line_are_both_honored():
    source = (
        "import time, random\n"
        "x = random.random() + time.time()"
        "  # repro: allow[R001]  # repro: allow[R002]\n"
    )
    assert rules_in(source) == []


def test_lint_self_test_covers_all_ten_rules():
    assert self_test() == []


# ------------------------------------------------------------------- renderers


def _sample_findings():
    return lint_source("import json\ndef f(d):\n    return json.dumps(d)\n", SIM_PATH)


def test_sarif_document_shape():
    document = json.loads(render_sarif(_sample_findings()))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    result = run["results"][0]
    assert result["ruleId"] == "R010"
    location = result["locations"][0]["physicalLocation"]
    assert location["region"]["startLine"] == 3
    assert location["region"]["startColumn"] >= 1
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"R006", "R007", "R008", "R009", "R010", "F001", "F002"} <= rule_ids


def test_github_format_emits_error_annotations():
    text = render_github(_sample_findings())
    assert text.startswith("::error file=")
    assert "title=R010" in text
    assert render_github([]).startswith("::notice")


def test_render_dispatch_and_unknown_format():
    findings = _sample_findings()
    assert "finding(s)" in render(findings, "text")
    assert json.loads(render(findings, "json"))["count"] == 1
    with pytest.raises(ValueError):
        render(findings, "html")


# ------------------------------------------------------------ runtime witness


def test_witness_raises_on_inversion_naming_both_sites():
    witness = LockOrderWitness()
    witness.record("q1", "rel_a", "site-one")
    witness.record("q1", "rel_b", "site-two")
    witness.release("q1")
    witness.record("q2", "rel_b", "site-three")
    with pytest.raises(SanitizerError) as excinfo:
        witness.record("q2", "rel_a", "site-four")
    message = str(excinfo.value)
    assert "site-four" in message and "site-two" in message
    assert "rel_a" in message and "rel_b" in message


def test_witness_consistent_orders_pass():
    witness = LockOrderWitness()
    for query in ("q1", "q2", "q3"):
        witness.record(query, "rel_a", f"{query}-a")
        witness.record(query, "rel_b", f"{query}-b")
        witness.release(query)
    assert witness.acquisitions == 6
    assert witness.edge_count == 1


def test_witness_two_query_interleaved_inversion():
    # The seeded scenario from the issue: two live queries acquiring in
    # opposite orders; the second acquisition of the second query trips.
    witness = LockOrderWitness()
    witness.record("q1", "parts", "q1 acquires parts")
    witness.record("q1", "orders", "q1 acquires orders")
    witness.record("q2", "orders", "q2 acquires orders")
    with pytest.raises(SanitizerError) as excinfo:
        witness.record("q2", "parts", "q2 acquires parts")
    message = str(excinfo.value)
    assert "q2 acquires parts" in message
    assert "q1 acquires orders" in message


def test_lock_manager_feeds_the_ambient_witness():
    with sanitizing():
        witness = active_witness()
        assert witness is not None
        manager = LockManager()
        granted = manager.try_acquire(
            LockRequest("q1", frozenset({"r1", "r2"}), frozenset({"r3"}))
        )
        assert granted
        assert witness.acquisitions == 3
        manager.release("q1")
        assert witness._held == {}
    assert active_witness() is None


def test_sorted_all_at_once_grants_never_trip_the_witness():
    with sanitizing():
        manager = LockManager()
        # Overlapping lock sets granted sequentially; sorted acquisition
        # order inside try_acquire keeps every pair consistent.
        manager.try_acquire(LockRequest("q1", frozenset({"a", "b", "c"}), frozenset()))
        manager.release("q1")
        manager.try_acquire(LockRequest("q2", frozenset({"c", "a"}), frozenset({"b"})))
        manager.release("q2")
        manager.try_acquire(LockRequest("q3", frozenset(), frozenset({"b", "a"})))
        manager.release("q3")


def test_zero_inversion_serving_run_is_byte_identical_to_unwitnessed():
    from repro.serve import ServeConfig
    from repro.serve.service import serve

    config = ServeConfig(
        machine="ring",
        rate_qps=20.0,
        duration_ms=400.0,
        scale=0.02,
        b_domain=25,
        processors=2,
    )
    plain = json.dumps(serve(config), sort_keys=True)
    with sanitizing():
        witnessed = json.dumps(serve(config), sort_keys=True)
    assert witnessed == plain


# ----------------------------------------------------------- resolve_fusion gate


def test_resolve_fusion_grants_proven_components():
    from repro.sim.engine import Simulator
    from repro.sim.fusion import resolve_fusion

    sim = Simulator()
    assert resolve_fusion(True, sim, component="ring")
    assert resolve_fusion(True, sim, component="direct")


def test_resolve_fusion_refuses_unknown_component():
    from repro.sim.engine import Simulator
    from repro.sim.fusion import resolve_fusion

    assert not resolve_fusion(True, Simulator(), component="mystery")


def test_resolve_fusion_without_component_is_ungated():
    from repro.sim.engine import Simulator
    from repro.sim.fusion import resolve_fusion

    assert resolve_fusion(True, Simulator())
    assert not resolve_fusion(False, Simulator())


def test_machines_still_fuse_with_the_gate_active():
    from repro.ring.machine import RingMachine
    from repro.workload.generator import generate_benchmark_database

    db = generate_benchmark_database(scale=0.02, seed=7, b_domain=25)
    machine = RingMachine(db.catalog, processors=2, fuse_ops=True)
    assert machine.fuse_ops
