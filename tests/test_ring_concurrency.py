"""The MC's lock manager."""

import pytest

from repro.errors import ConcurrencyError
from repro.relational.predicate import attr
from repro.query.builder import delete_from, scan
from repro.ring.concurrency import LockManager, LockMode, LockRequest


def req(name, shared=(), exclusive=()):
    return LockRequest(query_name=name, shared=frozenset(shared), exclusive=frozenset(exclusive))


class TestLockModes:
    def test_shared_compatible_with_shared(self):
        assert LockMode.SHARED.compatible(LockMode.SHARED)

    def test_exclusive_incompatible(self):
        assert not LockMode.EXCLUSIVE.compatible(LockMode.SHARED)
        assert not LockMode.SHARED.compatible(LockMode.EXCLUSIVE)
        assert not LockMode.EXCLUSIVE.compatible(LockMode.EXCLUSIVE)


class TestLockManager:
    def test_two_readers_share(self):
        lm = LockManager()
        assert lm.try_acquire(req("q1", shared={"r"}))
        assert lm.try_acquire(req("q2", shared={"r"}))
        assert lm.holders_of("r") == ["q1", "q2"]

    def test_writer_blocks_reader(self):
        lm = LockManager()
        assert lm.try_acquire(req("w", exclusive={"r"}))
        assert not lm.try_acquire(req("q", shared={"r"}))

    def test_reader_blocks_writer(self):
        lm = LockManager()
        assert lm.try_acquire(req("q", shared={"r"}))
        assert not lm.try_acquire(req("w", exclusive={"r"}))

    def test_all_or_nothing(self):
        lm = LockManager()
        lm.try_acquire(req("w", exclusive={"b"}))
        assert not lm.try_acquire(req("q", shared={"a", "b"}))
        # "a" must not be half-locked.
        assert lm.holders_of("a") == []

    def test_release_unblocks(self):
        lm = LockManager()
        lm.try_acquire(req("w", exclusive={"r"}))
        lm.release("w")
        assert lm.try_acquire(req("q", shared={"r"}))

    def test_release_shared_keeps_other_holder(self):
        lm = LockManager()
        lm.try_acquire(req("q1", shared={"r"}))
        lm.try_acquire(req("q2", shared={"r"}))
        lm.release("q1")
        assert lm.holders_of("r") == ["q2"]
        assert not lm.try_acquire(req("w", exclusive={"r"}))

    def test_double_acquire_rejected(self):
        lm = LockManager()
        lm.try_acquire(req("q", shared={"r"}))
        with pytest.raises(ConcurrencyError):
            lm.try_acquire(req("q", shared={"r2"}))

    def test_release_without_locks_rejected(self):
        with pytest.raises(ConcurrencyError):
            LockManager().release("ghost")

    def test_mode_of(self):
        lm = LockManager()
        lm.try_acquire(req("q", shared={"r"}, exclusive={"w"}))
        assert lm.mode_of("r") is LockMode.SHARED
        assert lm.mode_of("w") is LockMode.EXCLUSIVE

    def test_mode_of_unlocked_raises(self):
        with pytest.raises(ConcurrencyError):
            LockManager().mode_of("r")

    def test_active_queries(self):
        lm = LockManager()
        lm.try_acquire(req("a", shared={"x"}))
        lm.try_acquire(req("b", shared={"y"}))
        assert lm.active_queries == ["a", "b"]

    def test_disjoint_writers_coexist(self):
        lm = LockManager()
        assert lm.try_acquire(req("w1", exclusive={"a"}))
        assert lm.try_acquire(req("w2", exclusive={"b"}))


class TestLockRequestFromTree:
    def test_read_only_query(self):
        tree = scan("a").equijoin(scan("b"), "b", "b").tree()
        request = LockRequest.for_tree(tree)
        assert request.shared == frozenset({"a", "b"})
        assert request.exclusive == frozenset()

    def test_delete_takes_exclusive(self):
        tree = delete_from("a", attr("key") == 1)
        request = LockRequest.for_tree(tree)
        assert request.exclusive == frozenset({"a"})

    def test_append_reads_source_writes_target(self):
        tree = scan("src").append_into("dst").tree()
        request = LockRequest.for_tree(tree)
        assert request.shared == frozenset({"src"})
        assert request.exclusive == frozenset({"dst"})

    def test_self_append_is_exclusive_only(self):
        tree = scan("a").append_into("a").tree()
        request = LockRequest.for_tree(tree)
        assert request.exclusive == frozenset({"a"})
        assert request.shared == frozenset()
