"""The ring machine: oracle equivalence, protocol behaviour, updates."""

import pytest

from repro.errors import MachineError
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.query import execute
from repro.query.builder import delete_from, scan
from repro.ring.machine import RingMachine, run_ring_benchmark


def fresh_queries(db, selectivity=0.3):
    from repro.workload import benchmark_queries

    return benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)


class TestOracleEquivalence:
    def test_benchmark_matches_oracle(self, tiny_benchmark, tiny_queries):
        oracle = {t.name: execute(t, tiny_benchmark.catalog) for t in tiny_queries}
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            controllers=12,
            page_bytes=2048,
        )
        for name, expected in oracle.items():
            assert report.results[name].same_rows_as(expected), name

    def test_single_ip(self, tiny_benchmark, tiny_queries):
        oracle = {t.name: execute(t, tiny_benchmark.catalog) for t in tiny_queries}
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=1,
            controllers=12,
            page_bytes=2048,
        )
        for name, expected in oracle.items():
            assert report.results[name].same_rows_as(expected), name

    def test_direct_ip_routing_correct(self, tiny_benchmark, tiny_queries):
        oracle = {t.name: execute(t, tiny_benchmark.catalog) for t in tiny_queries}
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            controllers=12,
            page_bytes=2048,
            direct_ip_routing=True,
        )
        for name, expected in oracle.items():
            assert report.results[name].same_rows_as(expected), name

    def test_minimal_ics_serialize_queries(self, tiny_benchmark, tiny_queries):
        oracle = {t.name: execute(t, tiny_benchmark.catalog) for t in tiny_queries}
        # q10 needs 11 ICs; with exactly 11 the machine runs nearly
        # one query at a time and must still be correct.
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            controllers=11,
            page_bytes=2048,
        )
        for name, expected in oracle.items():
            assert report.results[name].same_rows_as(expected), name

    def test_tiny_ic_memory_still_correct(self, tiny_benchmark, tiny_queries):
        oracle = {t.name: execute(t, tiny_benchmark.catalog) for t in tiny_queries}
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=3,
            controllers=12,
            page_bytes=2048,
            ic_memory_pages=2,
        )
        for name, expected in oracle.items():
            assert report.results[name].same_rows_as(expected), name


class TestProtocol:
    def test_broadcasts_occur_for_joins(self, tiny_benchmark):
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            controllers=12,
            page_bytes=2048,
        )
        assert report.broadcasts > 0

    def test_inner_ring_much_quieter_than_outer(self, tiny_benchmark):
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            controllers=12,
            page_bytes=2048,
        )
        assert report.inner_ring_bytes < report.outer_ring_bytes / 10

    def test_all_queries_admitted(self, tiny_benchmark):
        report = run_ring_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            controllers=12,
            page_bytes=2048,
        )
        assert report.queries_admitted == 10

    def test_ips_all_returned_to_pool(self, tiny_benchmark):
        machine = RingMachine(
            tiny_benchmark.catalog, processors=4, controllers=12, page_bytes=2048
        )
        for tree in fresh_queries(tiny_benchmark):
            machine.submit(tree)
        machine.run()
        assert machine.mc.free_ip_count == 4
        assert all(ip.is_free for ip in machine.ips)

    def test_all_ics_freed(self, tiny_benchmark):
        machine = RingMachine(
            tiny_benchmark.catalog, processors=4, controllers=12, page_bytes=2048
        )
        for tree in fresh_queries(tiny_benchmark):
            machine.submit(tree)
        machine.run()
        assert machine.free_ic_count() == 12
        assert machine.active_ics() == []

    def test_locks_released_at_end(self, tiny_benchmark):
        machine = RingMachine(
            tiny_benchmark.catalog, processors=4, controllers=12, page_bytes=2048
        )
        for tree in fresh_queries(tiny_benchmark):
            machine.submit(tree)
        machine.run()
        assert machine.mc.locks.active_queries == []

    def test_query_needing_too_many_ics_rejected(self, tiny_benchmark):
        machine = RingMachine(
            tiny_benchmark.catalog, processors=2, controllers=3, page_bytes=2048
        )
        big = fresh_queries(tiny_benchmark)[-1]  # 5 joins + 6 restricts = 11 ICs
        machine.submit(big)
        with pytest.raises(MachineError):
            machine.run()


class TestUpdatesAndLocking:
    @pytest.fixture
    def catalog(self, pair_schema):
        cat = Catalog()
        cat.register(
            Relation.from_rows("t", pair_schema, [(i, i % 4) for i in range(60)], page_bytes=128)
        )
        cat.register(Relation("sink", pair_schema, page_bytes=128))
        return cat

    def test_delete_applies_to_catalog(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=4, page_bytes=128)
        machine.submit(delete_from("t", attr("grp") == 0, name="d"))
        machine.run()
        assert catalog.get("t").cardinality == 45
        assert all(r[1] != 0 for r in catalog.get("t").rows())

    def test_append_applies_to_catalog(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=4, page_bytes=128)
        machine.submit(scan("t").restrict(attr("k") < 10).append_into("sink").tree("a"))
        machine.run()
        assert catalog.get("sink").cardinality == 10

    def test_conflicting_writer_serialized_after_readers(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=8, page_bytes=128)
        reader = scan("t").restrict(attr("grp") == 1).tree("reader")
        deleter = delete_from("t", attr("grp") == 1, name="deleter")
        machine.submit(reader)
        machine.submit(deleter)
        report = machine.run()
        # The reader was admitted first and must have seen all 15 rows.
        assert report.results["reader"].cardinality == 15
        assert catalog.get("t").cardinality == 45
        assert report.query_times["deleter"] > report.query_times["reader"]

    def test_writer_then_reader_sees_update(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=8, page_bytes=128)
        machine.submit(delete_from("t", attr("grp") == 1, name="deleter"))
        machine.submit(scan("t").restrict(attr("grp") == 1).tree("reader"))
        report = machine.run()
        assert report.results["reader"].cardinality == 0


class TestErrors:
    def test_no_queries(self, tiny_benchmark):
        with pytest.raises(MachineError):
            RingMachine(tiny_benchmark.catalog).run()

    def test_zero_components_rejected(self, tiny_benchmark):
        with pytest.raises(MachineError):
            RingMachine(tiny_benchmark.catalog, processors=0)
        with pytest.raises(MachineError):
            RingMachine(tiny_benchmark.catalog, controllers=0)
