"""Hardware constants, exec model, traffic meter, routing analysis."""

import pytest

from repro import hw
from repro.direct import traffic as tl
from repro.direct.exec_model import ExecModel, join_pages, project_rows, restrict_page
from repro.direct.traffic import TrafficMeter
from repro.relational.page import Page
from repro.relational.predicate import CompareOp, attr
from repro.relational.schema import DataType, Schema
from repro.ring.routing import break_even_fill_fraction, page_routing_savings


class TestHardwareConstants:
    def test_lsi11_reads_16k_in_33ms(self):
        assert hw.RING_PAGE_BYTES / hw.LSI11_SCAN_RATE == pytest.approx(33.0)

    def test_ibm3330_sequential_faster(self):
        random_ = hw.IBM_3330.access_time_ms(16384)
        sequential = hw.IBM_3330.access_time_ms(16384, sequential=True)
        assert sequential < random_
        assert random_ - sequential == pytest.approx(hw.IBM_3330.avg_seek_ms)

    def test_ttl_ring_rate(self):
        assert hw.OUTER_RING_TTL.bit_rate_mbps == 40.0

    def test_inner_ring_within_paper_range(self):
        assert 1.0 <= hw.INNER_RING.bit_rate_mbps <= 2.0

    def test_benchmark_constants(self):
        assert hw.BENCHMARK_NUM_RELATIONS == 15
        assert hw.BENCHMARK_DB_BYTES == int(5.5 * 1024 * 1024)
        assert hw.MEMORY_CELLS_PER_PROCESSOR == 2

    def test_ccd_access(self):
        t = hw.INTEL_2314_CCD.access_time_ms(2048)
        assert t == pytest.approx(0.1 + 2048 / (2 * 1024 * 1024 / 1000.0))


class TestExecModel:
    def test_proc_read_matches_scan_rate(self):
        model = ExecModel(page_bytes=16384)
        assert model.proc_read_ms(16384) == pytest.approx(33.0)

    def test_join_cpu_quadratic(self):
        model = ExecModel()
        assert model.join_cpu_ms(100, 100) == pytest.approx(4 * model.join_cpu_ms(50, 50))

    def test_packet_bytes_adds_overhead(self):
        model = ExecModel(packet_overhead_bytes=64)
        assert model.packet_bytes(1000) == 1064


SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))


def make_page(rows):
    page = Page(SCHEMA, 256)
    for row in rows:
        page.append(row)
    return page


class TestKernels:
    def test_restrict_page(self):
        page = make_page([(i, i % 2) for i in range(10)])
        test = (attr("g") == 0).compile(SCHEMA)
        assert len(restrict_page(page, test)) == 5

    def test_join_pages_equijoin_equals_nested(self):
        a = make_page([(i, i % 3) for i in range(9)])
        b = make_page([(i, i % 3) for i in range(6)])
        eq = attr("g").equals_attr("g")
        out = join_pages(a, b, eq, 1, 1)
        brute = [x + y for x in a.rows() for y in b.rows() if x[1] == y[1]]
        assert sorted(out) == sorted(brute)

    def test_join_pages_theta(self):
        a = make_page([(1, 1), (2, 2)])
        b = make_page([(1, 1), (2, 2), (3, 3)])
        lt = attr("g").joins(CompareOp.LT, "g")
        out = join_pages(a, b, lt, 1, 1)
        assert len(out) == 2 + 1

    def test_project_rows(self):
        assert project_rows([(1, 2), (3, 4)], [1]) == [(2,), (4,)]


class TestTrafficMeter:
    def test_add_and_read(self):
        meter = TrafficMeter()
        meter.add(tl.DISK_TO_CACHE, 100)
        assert meter.bytes_at(tl.DISK_TO_CACHE) == 100

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            TrafficMeter().add("warp", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TrafficMeter().add(tl.CONTROL, -1)

    def test_interconnect_excludes_disk(self):
        meter = TrafficMeter()
        meter.add(tl.DISK_TO_CACHE, 1000)
        meter.add(tl.CACHE_TO_PROC, 10)
        assert meter.interconnect_bytes == 10
        assert meter.disk_bytes == 1000

    def test_bandwidth_math(self):
        meter = TrafficMeter()
        meter.add(tl.CACHE_TO_PROC, 125_000)  # 1 megabit
        assert meter.bandwidth_mbps(tl.CACHE_TO_PROC, 1000.0) == pytest.approx(1.0)

    def test_bandwidth_of_level_list(self):
        meter = TrafficMeter()
        meter.add(tl.CACHE_TO_PROC, 62_500)
        meter.add(tl.PROC_TO_CACHE, 62_500)
        assert meter.bandwidth_mbps([tl.CACHE_TO_PROC, tl.PROC_TO_CACHE], 1000.0) == pytest.approx(1.0)

    def test_snapshot_is_a_copy(self):
        meter = TrafficMeter()
        snap = meter.snapshot()
        snap[tl.CONTROL] = 999
        assert meter.bytes_at(tl.CONTROL) == 0


class TestRoutingAnalysis:
    def test_direct_saves_for_full_pages(self):
        savings = page_routing_savings(SCHEMA, SCHEMA, 4096)
        assert savings.saved_bytes > 0
        assert 0 < savings.saved_fraction < 1

    def test_break_even_in_unit_interval(self):
        f = break_even_fill_fraction(SCHEMA, SCHEMA, 4096)
        assert 0.0 < f < 1.0

    def test_break_even_lower_for_bigger_pages(self):
        small = break_even_fill_fraction(SCHEMA, SCHEMA, 1024)
        large = break_even_fill_fraction(SCHEMA, SCHEMA, 16384)
        assert large < small
