"""The DLCN ring model."""

import pytest

from repro import hw
from repro.ring.network import Ring
from repro.sim.engine import Simulator


def test_transfer_time_scales_with_bytes():
    ring = hw.OUTER_RING_TTL
    assert ring.transfer_time_ms(10_000) > ring.transfer_time_ms(100)


def test_bytes_per_ms():
    assert hw.OUTER_RING_TTL.bytes_per_ms == pytest.approx(5000.0)


def test_send_delivers_after_serialization():
    sim = Simulator()
    ring = Ring(sim, hw.OUTER_RING_TTL, "test")
    arrived = []
    ring.send(5000, lambda: arrived.append(sim.now))
    sim.run()
    assert arrived[0] == pytest.approx(1.0 + hw.OUTER_RING_TTL.insertion_delay_ms)


def test_messages_serialize_fifo():
    sim = Simulator()
    ring = Ring(sim, hw.OUTER_RING_TTL, "test")
    order = []
    ring.send(5000, lambda: order.append("a"))
    ring.send(50, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b"]


def test_byte_and_message_accounting():
    sim = Simulator()
    ring = Ring(sim, hw.OUTER_RING_TTL, "test")
    ring.send(100, lambda: None)
    ring.broadcast(200, lambda: None)
    sim.run()
    assert ring.bytes_carried == 300
    assert ring.messages_carried == 2
    assert ring.broadcasts == 1


def test_offered_mbps():
    sim = Simulator()
    ring = Ring(sim, hw.OUTER_RING_TTL, "test")
    ring.send(125_000, lambda: None)  # one megabit
    sim.run()
    assert ring.offered_mbps(1000.0) == pytest.approx(1.0)


def test_utilization_bounded():
    sim = Simulator()
    ring = Ring(sim, hw.INNER_RING, "test")
    for _ in range(5):
        ring.send(1000, lambda: None)
    sim.run()
    assert 0 < ring.utilization(sim.now) <= 1.0


def test_faster_technology_is_faster():
    slow_done, fast_done = [], []
    sim = Simulator()
    Ring(sim, hw.OUTER_RING_TTL, "slow").send(100_000, lambda: slow_done.append(sim.now))
    sim.run()
    sim2 = Simulator()
    Ring(sim2, hw.OUTER_RING_ECL, "fast").send(100_000, lambda: fast_done.append(sim2.now))
    sim2.run()
    assert fast_done[0] < slow_done[0]
