"""Cost model: cardinality/page estimation over trees."""

import pytest

from repro.relational.predicate import attr
from repro.query.builder import delete_from, scan
from repro.query.cost import CostModel


@pytest.fixture
def model(join_catalog):
    return CostModel(join_catalog, page_bytes=128)


def test_scan_estimate_is_exact(model, join_catalog):
    tree = scan("left_rel").tree()
    est = model.estimate_root(tree)
    assert est.rows == 120


def test_restrict_scales_by_selectivity(model):
    tree = scan("left_rel").restrict(attr("grp") == 3).tree()
    est = model.estimate_root(tree)
    assert est.rows == pytest.approx(12, abs=2)


def test_equijoin_estimate(model):
    tree = scan("left_rel").equijoin(scan("right_rel"), "grp", "grp").tree()
    est = model.estimate_root(tree)
    assert est.rows == 120 * 80 // 10


def test_join_width_is_sum(model, join_catalog):
    tree = scan("left_rel").equijoin(scan("right_rel"), "grp", "grp").tree()
    est = model.estimate_root(tree)
    width = est.output_bytes // max(1, est.rows)
    assert width == 2 * join_catalog.get("left_rel").schema.record_width


def test_project_width_shrinks(model):
    tree = scan("left_rel").project(["grp"], eliminate_duplicates=False).tree()
    est = model.estimate_root(tree)
    assert est.output_bytes == 120 * 8


def test_pages_ceiling(model):
    tree = scan("left_rel").tree()
    est = model.estimate_root(tree)
    per_page = (128 - 8) // 16
    assert est.pages == -(-120 // per_page)


def test_empty_estimate(model):
    tree = scan("empty_rel").tree()
    est = model.estimate_root(tree)
    assert est.rows == 0 and est.pages == 0


def test_estimates_for_all_nodes(model):
    tree = scan("left_rel").restrict(attr("k") < 60).equijoin(scan("right_rel"), "grp", "grp").tree()
    estimates = model.estimate_tree(tree)
    assert len(estimates) == len(tree.nodes())


def test_delete_estimate(model):
    tree = delete_from("left_rel", attr("grp") == 0)
    est = model.estimate_root(tree)
    assert est.rows == pytest.approx(108, abs=2)


def test_append_estimate(model):
    tree = scan("left_rel").append_into("right_rel").tree()
    est = model.estimate_root(tree)
    assert est.rows == 200


def test_union_estimate(model):
    tree = scan("left_rel").union(scan("right_rel")).tree()
    assert model.estimate_root(tree).rows == 200


def test_stats_cached_across_trees(model):
    model.estimate_root(scan("left_rel").tree())
    model.estimate_root(scan("left_rel").restrict(attr("k") < 5).tree())
    assert set(model._stats_cache) == {"left_rel"}
