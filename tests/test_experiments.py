"""Experiment harness at small scale: every table/figure regenerates and
shows the paper's shape."""

import pytest

from repro.experiments import dataflow_machine, figure_3_1, figure_4_2
from repro.experiments import granularity_tuple, packets_demo, project_operator
from repro.experiments import ring_sizing_exp, ring_vs_direct, section_3_3
from repro.experiments.common import ExperimentResult, render_table

SMALL = dict(scale=0.05, selectivity=0.3)


class TestHarness:
    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}])
        assert "a" in text and "b" in text and "c" in text and "2.50" in text

    def test_render_empty(self):
        assert render_table([]) == "(no rows)"

    def test_result_render_and_column(self):
        res = ExperimentResult("E0", "t", {"p": 1}, rows=[{"x": 1}, {"x": 2}])
        assert res.column("x") == [1, 2]
        assert "E0" in res.render()


class TestE2Section33:
    def test_paper_anchor(self):
        assert section_3_3.paper_anchor_ratio() == pytest.approx(10.0)

    def test_table_has_tuple_and_page_rows(self):
        res = section_3_3.run()
        granularities = set(res.column("granularity"))
        assert granularities == {"tuple", "page"}

    def test_10k_pages_ratio_100(self):
        res = section_3_3.run(overhead_values=[0])
        big = [r for r in res.rows if r["page_bytes"] == 10_000][0]
        assert big["ratio_vs_tuple"] == pytest.approx(100.0)


class TestE4Packets:
    def test_all_roundtrips_ok(self):
        res = packets_demo.run()
        assert all(row["roundtrip_ok"] for row in res.rows)

    def test_predicted_sizes_exact(self):
        res = packets_demo.run()
        assert all(row["wire_bytes"] == row["predicted_bytes"] for row in res.rows)


class TestE1Figure31:
    def test_small_scale_shape(self):
        res = figure_3_1.run(processors=(2, 6), **SMALL)
        assert len(res.rows) == 2
        # Times decrease (or stay flat) with more processors.
        assert res.rows[1]["page_ms"] <= res.rows[0]["page_ms"] * 1.05
        # Page-level is not slower than relation-level.
        for row in res.rows:
            assert row["ratio"] > 0.9


class TestE3Figure42:
    def test_small_scale_shape(self):
        res = figure_4_2.run(ips=(2, 6), **SMALL, controllers=12)
        assert len(res.rows) == 2
        # Offered load grows with IPs at fixed work.
        assert res.rows[1]["outer_ring_mbps"] >= res.rows[0]["outer_ring_mbps"] * 0.8
        assert all(row["fits_100mbps"] for row in res.rows)


class TestE7RingSizing:
    def test_table_includes_limit(self):
        res = ring_sizing_exp.run(ips=(2, 4), **SMALL)
        assert "ttl_ring_ip_limit_linear" in res.parameters
        assert res.parameters["ttl_ring_ip_limit_linear"] > 0


class TestE8TupleGranularity:
    def test_tuple_blowup_measured(self):
        res = granularity_tuple.run(processors=(4,), **SMALL)
        row = res.rows[0]
        assert row["traffic_blowup"] > 1.5
        assert row["tuple_ms"] >= row["page_ms"] * 0.9


class TestE6Dataflow:
    def test_three_granularities_run(self):
        res = dataflow_machine.run(processors=(2,), scale=0.05)
        row = res.rows[0]
        assert row["relation_ms"] > 0
        assert row["page_ms"] > 0
        assert row["tuple_ms"] > 0
        assert row["tuple_traffic_blowup"] > 1.0


class TestE10RingVsDirect:
    def test_three_machines_run(self):
        res = ring_vs_direct.run(ips=(3,), **SMALL, controllers=12)
        row = res.rows[0]
        assert row["direct_ms"] > 0
        assert row["ring_ms"] > 0
        assert row["ring_routed_ms"] > 0


class TestE11Project:
    def test_all_strategies_correct_and_hash_scales(self):
        res = project_operator.run(processors=(1, 8), rows=3000, scale=0.05)
        row = res.rows[-1]
        assert row["hash_partition_speedup"] > 1.5
        assert row["serial_speedup"] == 1.0

    def test_sort_merge_is_slowest_at_scale(self):
        res = project_operator.run(processors=(8,), rows=3000, scale=0.05)
        row = res.rows[0]
        assert row["sort_merge_ms"] > row["hash_partition_ms"]
