"""Storage faults on the DIRECT machine: transient disk read errors and
poisoned cache frames, both recovered from the mass-storage copy."""

import pytest

from repro.check.sanitizer import sanitizing
from repro.errors import RetryExhaustedError
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.direct.machine import DirectMachine

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Relation.from_rows("big", SCHEMA, [(i, i % 8) for i in range(400)], page_bytes=128)
    )
    cat.register(
        Relation.from_rows("small", SCHEMA, [(i, i % 8) for i in range(200)], page_bytes=128)
    )
    return cat


def join_tree(name="storage"):
    return (
        scan("big")
        .restrict(attr("k") < 300)
        .equijoin(scan("small").restrict(attr("k") < 150), "g", "g")
        .tree(name)
    )


def build_machine(catalog, plan=None, **kwargs):
    defaults = dict(processors=4, page_bytes=128)
    defaults.update(kwargs)
    if plan is None:
        return DirectMachine(catalog, **defaults)
    with injecting(plan):
        return DirectMachine(catalog, **defaults)


class TestDiskReadErrors:
    def test_transient_errors_retried_oracle_exact(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = FaultPlan(seed=5, specs=(FaultSpec(kind="disk_read_error", rate=0.15),))
        machine = build_machine(catalog, plan=plan)
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        inj = machine.sim.faults
        assert inj.total("disk.read_error") > 0
        assert inj.total("disk.retry") == inj.total("disk.read_error")

    def test_retries_cost_time(self, catalog):
        tree_a = join_tree("a")
        clean = build_machine(catalog)
        clean.submit(tree_a)
        healthy = clean.run().elapsed_ms

        tree_b = join_tree("b")
        plan = FaultPlan(seed=5, specs=(FaultSpec(kind="disk_read_error", rate=0.15),))
        faulty = build_machine(catalog, plan=plan)
        faulty.submit(tree_b)
        degraded = faulty.run().elapsed_ms
        assert degraded > healthy

    def test_exhaustion_raises_naming_the_drive(self, catalog):
        plan = FaultPlan(
            seed=5,
            specs=(FaultSpec(kind="disk_read_error", rate=1.0, max_retries=2),),
        )
        machine = build_machine(catalog, plan=plan)
        machine.submit(join_tree())
        with pytest.raises(RetryExhaustedError, match="disk"):
            machine.run()


class TestCachePoison:
    def test_poisoned_frames_refetched_oracle_exact(self, catalog):
        # Poison strikes clean resident frames at hit time, so run the
        # join three times: the later runs hit the frames the first run
        # faulted in.
        trees = [join_tree(n) for n in ("p1", "p2", "p3")]
        oracles = {t.name: execute(t, catalog) for t in trees}
        plan = FaultPlan(seed=5, specs=(FaultSpec(kind="cache_poison", rate=0.10),))
        machine = build_machine(catalog, plan=plan)
        for tree in trees:
            machine.submit(tree)
        report = machine.run()
        for name, oracle in oracles.items():
            assert report.results[name].same_rows_as(oracle), name
        inj = machine.sim.faults
        assert inj.total("cache.poison") > 0
        assert inj.total("cache.refetch") == inj.total("cache.poison")

    def test_combined_storage_faults_under_sanitizer(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(kind="disk_read_error", rate=0.10),
                FaultSpec(kind="cache_poison", rate=0.05),
            ),
        )
        with sanitizing():
            machine = build_machine(catalog, plan=plan)
            tree = join_tree()
            machine.submit(tree)
            report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        assert machine.sim.faults.total("disk.retry") > 0


class TestStorageDeterminism:
    def test_same_seed_same_run(self, catalog):
        def one_run():
            plan = FaultPlan(
                seed=5,
                specs=(
                    FaultSpec(kind="disk_read_error", rate=0.10),
                    FaultSpec(kind="cache_poison", rate=0.05),
                ),
            )
            machine = build_machine(catalog, plan=plan)
            tree = join_tree()
            machine.submit(tree)
            report = machine.run()
            return (report.elapsed_ms, machine.sim.faults.snapshot())

        assert one_run() == one_run()

    def test_zero_strike_armed_run_identical_to_unarmed(self, catalog):
        # Ring fault kinds never match a DIRECT machine site, so the plan
        # arms the injector without a single strike.
        def one_run(plan):
            machine = build_machine(catalog, plan=plan)
            tree = join_tree()
            machine.submit(tree)
            report = machine.run()
            return (report.elapsed_ms, report.events_processed)

        unarmed = one_run(None)
        ghost = one_run(
            FaultPlan(seed=5, specs=(FaultSpec(kind="ring_drop", rate=0.5),))
        )
        assert ghost == unarmed
