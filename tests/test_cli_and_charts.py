"""The CLI and the ASCII chart renderer."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.ascii_chart import (
    figure_3_1_chart,
    figure_4_2_chart,
    line_chart,
)


class TestLineChart:
    def test_contains_title_and_legend(self):
        text = line_chart("My Title", "x", "y", [1, 2, 3], {"alpha": [1.0, 2.0, 3.0]})
        assert "My Title" in text
        assert "alpha" in text
        assert "*" in text

    def test_two_series_get_distinct_markers(self):
        text = line_chart(
            "t", "x", "y", [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]}
        )
        assert "* a" in text and "o b" in text

    def test_axis_extremes_labelled(self):
        text = line_chart("t", "x", "y", [10, 90], {"a": [5.0, 25.0]})
        assert "10" in text and "90" in text
        assert "25" in text and "5" in text

    def test_flat_series_does_not_crash(self):
        text = line_chart("t", "x", "y", [1, 2, 3], {"a": [7.0, 7.0, 7.0]})
        assert "*" in text

    def test_single_point(self):
        text = line_chart("t", "x", "y", [5], {"a": [3.0]})
        assert "*" in text

    def test_empty_data(self):
        assert "(no data)" in line_chart("t", "x", "y", [], {})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart("t", "x", "y", [1, 2], {"a": [1.0]})

    def test_marker_rows_monotone_for_increasing_series(self):
        text = line_chart("t", "x", "y", [1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=30, height=9)
        rows_with_marker = [i for i, line in enumerate(text.split("\n")) if "*" in line]
        assert rows_with_marker == sorted(rows_with_marker)

    def test_figure_3_1_chart_wrapper(self):
        rows = [
            {"processors": 5, "page_ms": 100.0, "relation_ms": 200.0},
            {"processors": 10, "page_ms": 60.0, "relation_ms": 150.0},
        ]
        text = figure_3_1_chart(rows)
        assert "page-level" in text and "relation-level" in text

    def test_figure_4_2_chart_wrapper(self):
        rows = [
            {"ips": 5, "outer_ring_mbps": 4.0, "cache_level_mbps": 1.0, "disk_level_mbps": 0.5},
            {"ips": 50, "outer_ring_mbps": 16.0, "cache_level_mbps": 4.0, "disk_level_mbps": 3.0},
        ]
        text = figure_4_2_chart(rows)
        assert "outer ring" in text and "disk level" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure_3_1" in out and "project" in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "figure_9_9"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_run_section_3_3(self, capsys):
        assert main(["run", "section_3_3"]) == 0
        out = capsys.readouterr().out
        assert "tuple" in out and "10.00" in out

    def test_run_packets(self, capsys):
        assert main(["run", "packets"]) == 0
        assert "True" in capsys.readouterr().out

    def test_run_figure_3_1_small_draws_chart(self, capsys):
        assert main([
            "run", "figure_3_1", "--scale", "0.03", "--selectivity", "0.3",
            "--processors", "2,4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 3.1" in out  # the chart
        assert "ratio" in out  # the table

    def test_run_rejects_wrong_option(self, capsys):
        # section_3_3 takes no --scale option.
        assert main(["run", "section_3_3", "--scale", "0.5"]) == 2
        assert "rejected options" in capsys.readouterr().out

    def test_workload(self, capsys):
        assert main(["workload", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "rel01" in out and "bench-q10" in out

    def test_bench_info(self, capsys):
        assert main(["bench-info"]) == 0
        assert "pytest benchmarks/" in capsys.readouterr().out

    def test_parser_int_lists(self):
        parser = build_parser()
        args = parser.parse_args(["run", "figure_3_1", "--processors", "5,10,20"])
        assert args.processors == [5, 10, 20]
