"""E9: the broadcast-join protocol under pressure.

Section 4.2's protocol has its interesting behaviour exactly when things
go wrong: IPs are busy when a broadcast passes (missed pages), requests
race (duplicate suppression), IC local memory overflows mid-join, and
partial pages must be compressed.  These tests construct those conditions
deliberately and assert both correctness (oracle equality) and that the
protocol paths actually fired (broadcast counts, overflow traffic).
"""

import pytest

from repro.direct import traffic as tl
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.ring.machine import RingMachine

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT), ("pad", DataType.CHAR, 24))


def catalog_with(outer_rows: int, inner_rows: int, groups: int = 16, page_bytes: int = 256):
    catalog = Catalog()
    catalog.register(
        Relation.from_rows(
            "outer_rel", SCHEMA, [(i, i % groups, "") for i in range(outer_rows)], page_bytes
        )
    )
    catalog.register(
        Relation.from_rows(
            "inner_rel", SCHEMA, [(i, (i * 3) % groups, "") for i in range(inner_rows)], page_bytes
        )
    )
    return catalog


def join_tree():
    return (
        scan("outer_rel")
        .restrict(attr("k") >= 0)
        .equijoin(scan("inner_rel").restrict(attr("k") >= 0), "g", "g")
        .tree("stress-join")
    )


def run_machine(catalog, **kwargs):
    defaults = dict(processors=5, controllers=6, page_bytes=256, cache_bytes=24 * 256)
    defaults.update(kwargs)
    machine = RingMachine(catalog, **defaults)
    tree = join_tree()
    machine.submit(tree)
    return machine, machine.run(), tree


class TestMissedPageRecovery:
    def test_many_ips_few_inner_pages_correct(self):
        """Multiple IPs consuming broadcasts out of sync: with more IPs
        than inner pages, most broadcasts are missed by someone."""
        catalog = catalog_with(600, 120)
        oracle = execute(join_tree(), catalog)
        machine, report, tree = run_machine(catalog, processors=8)
        assert report.results[tree.name].same_rows_as(oracle)

    def test_rebroadcasts_prove_misses_happened(self):
        """With several outer waves per IP, inner pages must be broadcast
        repeatedly — direct evidence of the missed-page/recovery path."""
        catalog = catalog_with(600, 120)
        inner_pages = -(-120 // (256 - 8) * SCHEMA.record_width)  # rough
        machine, report, tree = run_machine(catalog, processors=4)
        inner_page_count = len(machine._base_pages["inner_rel"])
        assert report.broadcasts > inner_page_count

    def test_single_inner_page(self):
        catalog = catalog_with(200, 4)
        oracle = execute(join_tree(), catalog)
        machine, report, tree = run_machine(catalog)
        assert report.results[tree.name].same_rows_as(oracle)

    def test_inner_larger_than_outer(self):
        catalog = catalog_with(40, 400)
        oracle = execute(join_tree(), catalog)
        machine, report, tree = run_machine(catalog)
        assert report.results[tree.name].same_rows_as(oracle)


class TestMemoryPressure:
    def test_tiny_ic_memory_overflows_to_cache(self):
        """IC local memory of 2 pages forces the three-level hierarchy to
        actually spill and refetch operand pages mid-join."""
        catalog = catalog_with(500, 300)
        oracle = execute(join_tree(), catalog)
        machine, report, tree = run_machine(catalog, ic_memory_pages=2)
        assert report.results[tree.name].same_rows_as(oracle)
        assert report.traffic[tl.PROC_TO_CACHE] > 0  # overflow writes happened

    def test_tiny_cache_spills_to_disk(self):
        """With the cache also tiny, overflow pages reach mass storage
        and come back — the full 3-level round trip."""
        catalog = catalog_with(500, 300)
        oracle = execute(join_tree(), catalog)
        machine, report, tree = run_machine(
            catalog, ic_memory_pages=2, cache_bytes=16 * 256
        )
        assert report.results[tree.name].same_rows_as(oracle)
        assert report.traffic[tl.CACHE_TO_DISK] > 0

    def test_one_ip_one_ic_memory_page_extreme(self):
        catalog = catalog_with(150, 100)
        oracle = execute(join_tree(), catalog)
        machine, report, tree = run_machine(
            catalog, processors=1, ic_memory_pages=2, cache_bytes=16 * 256
        )
        assert report.results[tree.name].same_rows_as(oracle)


class TestPartialPageCompression:
    def test_selective_producers_feed_partial_pages(self):
        """A highly selective restrict under the join emits mostly
        partial result packets; the consuming IC must compress them into
        full operand pages (Section 4.2)."""
        catalog = catalog_with(600, 300)

        def tree():
            return (
                scan("outer_rel")
                .restrict(attr("k") % 1 == 0 if False else attr("g") == 3)
                .equijoin(scan("inner_rel").restrict(attr("g") == 9), "g", "g")
                .tree("compress")
            )

        oracle = execute(tree(), catalog)
        machine = RingMachine(catalog, processors=4, controllers=6, page_bytes=256)
        t = tree()
        machine.submit(t)
        report = machine.run()
        assert report.results[t.name].same_rows_as(oracle)

    def test_empty_join_sides_complete_cleanly(self):
        catalog = catalog_with(100, 100)

        def tree():
            return (
                scan("outer_rel")
                .restrict(attr("k") > 10_000)
                .equijoin(scan("inner_rel").restrict(attr("k") > 10_000), "g", "g")
                .tree("empty")
            )

        oracle = execute(tree(), catalog)
        machine = RingMachine(catalog, processors=3, controllers=6, page_bytes=256)
        t = tree()
        machine.submit(t)
        report = machine.run()
        assert report.results[t.name].cardinality == 0
        assert oracle.cardinality == 0


class TestRequestDeduplication:
    def test_lockstep_ips_share_broadcasts(self):
        """Identical-speed IPs request the same inner pages nearly
        simultaneously; the IC's in-flight suppression should keep the
        broadcast count well below IPs x inner pages."""
        catalog = catalog_with(800, 200)
        machine, report, tree = run_machine(catalog, processors=6)
        inner_page_count = len(machine._base_pages["inner_rel"])
        outer_page_count = len(machine._base_pages["outer_rel"])
        # Upper bound without any sharing: every (outer task, inner page)
        # pair triggers its own broadcast.
        assert report.broadcasts < outer_page_count * inner_page_count
