"""Durability: WAL codec, transactions, ARIES-lite restart, crash trials.

Covers the ISSUE 10 tentpole end to end — the frame codec's torn-tail
contract, the TransactionManager's steal/no-force buffer discipline and
its sanitizer hooks, the restart phases (analysis, redo, undo, torn-page
repair), the crash-trial harness's byte-identity oracle on all three
machines, the E17 sweep, and the R011 lint rule that keeps machine code
from mutating pages outside a logged transaction.
"""

import pytest

from repro.errors import RecoveryError, SanitizerError
from repro.recovery import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_CLR,
    KIND_COMMIT,
    KIND_UPDATE,
    LogRecord,
    StableStore,
    TransactionManager,
    canonical_pages,
    decode_stream,
    encode_record,
    recover,
)
from repro.recovery.harness import run_crash_trial
from repro.sim.engine import Simulator


PAGE_BYTES = 64  # pair_schema: 16-byte records, 8-byte header -> 3 per page


def seeded_store(schema, rows):
    store = StableStore()
    store.seed_relation("r", canonical_pages(schema, rows, PAGE_BYTES))
    return store


def base_rows(n=6):
    return [(i, i * 10) for i in range(n)]


# ------------------------------------------------------------------ WAL codec


class TestWalCodec:
    def roundtrip(self, record):
        records, valid = decode_stream(encode_record(record))
        assert len(records) == 1
        assert valid == len(encode_record(record))
        return records[0]

    def test_begin_roundtrip(self):
        rec = self.roundtrip(
            LogRecord(lsn=1, kind=KIND_BEGIN, txn_id=7, name="q-001")
        )
        assert (rec.lsn, rec.txn_id, rec.name) == (1, 7, "q-001")

    def test_update_roundtrip_full_images(self):
        rec = self.roundtrip(
            LogRecord(
                lsn=2, kind=KIND_UPDATE, txn_id=7, prev_lsn=1,
                relation="r", page_number=3, before=b"old", after=b"new",
            )
        )
        assert (rec.relation, rec.page_number) == ("r", 3)
        assert (rec.before, rec.after) == (b"old", b"new")

    def test_clr_roundtrip_undo_next(self):
        rec = self.roundtrip(
            LogRecord(
                lsn=5, kind=KIND_CLR, txn_id=7, prev_lsn=4,
                relation="r", page_number=0, after=b"old", undo_next_lsn=2,
            )
        )
        assert rec.undo_next_lsn == 2
        assert rec.after == b"old"

    def test_checkpoint_roundtrip_att_dpt(self):
        rec = self.roundtrip(
            LogRecord(
                lsn=9, kind=KIND_CHECKPOINT, txn_id=0,
                att={3: (8, "mix-002")}, dpt={("r", 1): 4},
            )
        )
        assert rec.att == {3: (8, "mix-002")}
        assert rec.dpt == {("r", 1): 4}

    def test_commit_abort_roundtrip(self):
        for kind in (KIND_COMMIT, KIND_ABORT):
            rec = self.roundtrip(LogRecord(lsn=3, kind=kind, txn_id=1, prev_lsn=2))
            assert rec.kind == kind

    def test_torn_tail_stops_at_frame_boundary(self):
        a = encode_record(LogRecord(lsn=1, kind=KIND_BEGIN, txn_id=1, name="a"))
        b = encode_record(LogRecord(lsn=2, kind=KIND_COMMIT, txn_id=1, prev_lsn=1))
        data = a + b[: len(b) // 2]  # power cut mid-frame
        records, valid = decode_stream(data)
        assert [r.lsn for r in records] == [1]
        assert valid == len(a)

    def test_bitflip_fails_crc_cleanly(self):
        a = encode_record(LogRecord(lsn=1, kind=KIND_BEGIN, txn_id=1, name="a"))
        garbled = bytearray(a)
        garbled[-1] ^= 0xFF
        records, valid = decode_stream(bytes(garbled))
        assert records == [] and valid == 0

    def test_garbage_after_valid_prefix_ignored(self):
        a = encode_record(LogRecord(lsn=1, kind=KIND_BEGIN, txn_id=1, name="a"))
        records, valid = decode_stream(a + b"\x00garbage\xff" * 3)
        assert len(records) == 1 and valid == len(a)

    def test_nonmonotone_lsn_in_valid_prefix_raises(self):
        a = encode_record(LogRecord(lsn=5, kind=KIND_BEGIN, txn_id=1, name="a"))
        b = encode_record(LogRecord(lsn=3, kind=KIND_BEGIN, txn_id=2, name="b"))
        with pytest.raises(RecoveryError, match="monotone"):
            decode_stream(a + b)

    def test_encoding_is_deterministic(self):
        rec = LogRecord(
            lsn=4, kind=KIND_UPDATE, txn_id=2, prev_lsn=3,
            relation="r", page_number=1, before=b"x" * 64, after=b"y" * 64,
        )
        assert encode_record(rec) == encode_record(rec)


# ---------------------------------------------------------- transaction manager


class TestTransactionManager:
    def test_commit_installs_canonical_images(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        new_rows = rows + [(99, 990)]
        tm.commit(txn, canonical_pages(pair_schema, new_rows, PAGE_BYTES))
        assert tm.committed_names == ["w1"]
        # Steal/no-force: the log is durable, the pages are not yet.
        records, _ = decode_stream(bytes(store.log))
        assert records[-1].kind == KIND_COMMIT
        tm.shutdown()
        assert store.committed_bytes() == seeded_store(
            pair_schema, new_rows
        ).committed_bytes()

    def test_commit_logs_only_changed_pages(self, pair_schema):
        rows = base_rows(9)  # 3 full pages
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        new_rows = rows[:-1] + [(8, 888)]  # only the last page differs
        tm.commit(txn, canonical_pages(pair_schema, new_rows, PAGE_BYTES))
        records, _ = decode_stream(bytes(store.log))
        updates = [r for r in records if r.kind == KIND_UPDATE]
        assert [(r.relation, r.page_number) for r in updates] == [("r", 2)]

    def test_abort_restores_pretransaction_bytes(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        baseline = store.committed_bytes()
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.stage_rows(txn, [(100 + i, 0) for i in range(6)])  # 2 pages logged
        tm.abort(txn)
        assert tm.aborted_names == ["w1"]
        assert tm.clr_records == 2
        tm.shutdown()
        assert store.committed_bytes() == baseline

    def test_checkpoint_cadence(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES, checkpoint_every=2)
        for i in range(4):
            txn = tm.begin(f"w{i}", "r", pair_schema)
            new_rows = rows + [(200 + i, i)]
            tm.commit(txn, canonical_pages(pair_schema, new_rows, PAGE_BYTES))
        assert tm.checkpoints == 2
        records, _ = decode_stream(bytes(store.log))
        assert sum(1 for r in records if r.kind == KIND_CHECKPOINT) == 2

    def test_flush_page_forces_log_first(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.stage_rows(txn, [(100 + i, 0) for i in range(3)])
        assert tm.flushed_lsn == 0
        tm.flush_page("r", 0)
        # The WAL rule: the page's records were forced before the write.
        assert tm.flushed_lsn >= 2
        assert ("r", 0) not in tm.dirty
        tm.abort(txn)
        tm.shutdown()

    def test_use_after_crash_raises(self, pair_schema):
        store = seeded_store(pair_schema, base_rows())
        tm = TransactionManager(store, PAGE_BYTES)
        tm.crash(None)
        with pytest.raises(RecoveryError, match="after crash"):
            tm.begin("w1", "r", pair_schema)

    def test_checkpoint_every_validated(self, pair_schema):
        with pytest.raises(RecoveryError):
            TransactionManager(StableStore(), PAGE_BYTES, checkpoint_every=0)


# ----------------------------------------------------------------- sanitizer


class TestWalSanitizer:
    def test_clean_shutdown_has_no_violations(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.commit(txn, canonical_pages(pair_schema, rows + [(50, 5)], PAGE_BYTES))
        tm.shutdown()
        assert tm.sanitize_violations() == []

    def test_dirty_page_leak_reported(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.commit(txn, canonical_pages(pair_schema, rows + [(50, 5)], PAGE_BYTES))
        # No shutdown: committed pages are still only buffered.
        assert any("dirty page leaked" in v for v in tm.sanitize_violations())

    def test_wal_order_violation_reported(self, pair_schema):
        store = seeded_store(pair_schema, base_rows())
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.stage_rows(txn, [(100 + i, 0) for i in range(3)])
        tm.flush_page("r", 0, skip_wal_force=True)
        assert any("WAL order violated" in v for v in tm.sanitize_violations())

    def test_still_active_txn_reported(self, pair_schema):
        store = seeded_store(pair_schema, base_rows())
        tm = TransactionManager(store, PAGE_BYTES)
        tm.begin("w1", "r", pair_schema)
        assert any("still active" in v for v in tm.sanitize_violations())

    def test_crash_disarms_end_of_run_checks(self, pair_schema):
        store = seeded_store(pair_schema, base_rows())
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.stage_rows(txn, [(100, 0), (101, 0), (102, 0)])
        tm.crash(None)
        assert tm.sanitize_violations() == []

    def test_registered_check_raises_through_simulator(self, pair_schema):
        sim = Simulator(sanitize=True)
        store = seeded_store(pair_schema, base_rows())
        tm = TransactionManager(store, PAGE_BYTES)
        tm.register_sanitizer(sim)
        tm.begin("w1", "r", pair_schema)  # left active: a violation
        sim.run()
        with pytest.raises(SanitizerError, match="recovery.wal"):
            sim.finalize_sanitizer()


# ------------------------------------------------------------------- restart


class TestRestart:
    def test_loser_is_undone(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        baseline = store.committed_bytes()
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("loser", "r", pair_schema)
        tm.stage_rows(txn, [(100 + i, 0) for i in range(6)])
        tm.force()  # records durable, transaction not committed
        tm.crash(None)
        report = recover(store)
        assert report.losers == ["loser"]
        assert report.undo_applied == 2
        assert report.clr_written == 2
        assert store.committed_bytes() == baseline

    def test_committed_but_unflushed_is_redone(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("winner", "r", pair_schema)
        new_rows = rows + [(77, 7)]
        tm.commit(txn, canonical_pages(pair_schema, new_rows, PAGE_BYTES))
        tm.crash(None)  # buffered pages lost; only the forced log survives
        report = recover(store)
        assert report.committed == ["winner"]
        assert report.redo_applied >= 1
        assert store.committed_bytes() == seeded_store(
            pair_schema, new_rows
        ).committed_bytes()

    def test_torn_page_repaired_from_log(self, pair_schema):
        rows = base_rows(3)
        store = seeded_store(pair_schema, rows)
        old = store.read_page("r", 0)
        new = canonical_pages(pair_schema, [(9, 9), (10, 10), (11, 11)], PAGE_BYTES)[0]
        for rec in (
            LogRecord(lsn=1, kind=KIND_BEGIN, txn_id=1, name="w"),
            LogRecord(lsn=2, kind=KIND_UPDATE, txn_id=1, prev_lsn=1,
                      relation="r", page_number=0, before=old, after=new),
            LogRecord(lsn=3, kind=KIND_COMMIT, txn_id=1, prev_lsn=2),
        ):
            store.append_log(encode_record(rec))
        torn = bytes(b ^ 0xA5 for b in new[: len(new) // 2]) + new[len(new) // 2 :]
        store.write_page("r", 0, new, torn=torn)
        assert store.damaged_pages() == [("r", 0)]
        report = recover(store)
        assert report.torn_pages_repaired == ["r:0"]
        assert store.damaged_pages() == []
        assert store.read_page("r", 0) == new

    def test_torn_page_without_redo_image_is_fatal(self, pair_schema):
        store = seeded_store(pair_schema, base_rows(3))
        image = store.read_page("r", 0)
        store.write_page("r", 0, image, torn=b"\x00" * len(image))
        with pytest.raises(RecoveryError, match="no redo image"):
            recover(store)

    def test_corrupt_tail_truncated(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.commit(txn, canonical_pages(pair_schema, rows + [(50, 5)], PAGE_BYTES))
        boundary = len(store.log)
        store.append_log(b"\xde\xad\xbe\xef" * 9)  # unforced-tail debris
        report = recover(store)
        assert report.valid_log_bytes == boundary
        assert report.torn_tail_bytes == 36
        assert report.committed == ["w1"]

    def test_recovered_log_is_cleanly_decodable(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("loser", "r", pair_schema)
        tm.stage_rows(txn, [(100, 0), (101, 0), (102, 0)])
        tm.force()
        tm.crash(None)
        recover(store)
        records, valid = decode_stream(bytes(store.log))
        assert valid == len(store.log)
        # Restart closed the loser (CLR + ABORT) and forced a checkpoint.
        assert records[-1].kind == KIND_CHECKPOINT
        assert any(r.kind == KIND_ABORT for r in records)

    def test_recovery_is_idempotent(self, pair_schema):
        rows = base_rows()
        store = seeded_store(pair_schema, rows)
        tm = TransactionManager(store, PAGE_BYTES)
        txn = tm.begin("w1", "r", pair_schema)
        tm.commit(txn, canonical_pages(pair_schema, rows + [(50, 5)], PAGE_BYTES))
        tm.crash(None)
        recover(store)
        once = store.committed_bytes()
        recover(store)  # a crash during recovery restarts it
        assert store.committed_bytes() == once


# ---------------------------------------------------------------- crash trials


class TestCrashTrials:
    @pytest.mark.parametrize("machine", ["ring", "direct", "dataflow"])
    def test_crash_recovers_byte_identical(self, machine):
        trial = run_crash_trial(
            machine=machine, seed=3, crash_rate=1.0, crash_at_ms=250.0, queries=10
        )
        assert trial.crashed
        assert trial.byte_identical
        assert trial.acknowledged_durable
        assert trial.ok

    def test_no_crash_control_cell(self):
        trial = run_crash_trial(
            machine="ring", seed=4, crash_rate=0.0, write_fraction=0.5, queries=8
        )
        assert not trial.crashed
        assert trial.commits > 0
        assert trial.ok
        # Clean runs recover from the shutdown checkpoint alone.
        assert trial.committed == trial.acknowledged

    def test_zero_write_stream_is_untouched(self):
        trial = run_crash_trial(
            machine="ring", seed=5, crash_rate=0.0, write_fraction=0.0, queries=6
        )
        assert trial.commits == 0 and trial.aborts == 0
        assert trial.ok

    def test_trials_are_deterministic(self):
        a = run_crash_trial(machine="direct", seed=6, crash_at_ms=250.0, queries=8)
        b = run_crash_trial(machine="direct", seed=6, crash_at_ms=250.0, queries=8)
        assert a.to_dict() == b.to_dict()
        assert a.recovered_bytes == b.recovered_bytes

    def test_e17_cell(self):
        from repro.experiments import recovery_sweep

        result = recovery_sweep.run(
            machines=("ring",),
            write_fractions=(0.5,),
            crash_rates=(1.0,),
            queries=8,
            workers=1,
        )
        assert result.experiment_id.startswith("E17")
        assert len(result.rows) == 1
        assert result.rows[0]["ok"]


# ---------------------------------------------------------------------- R011


class TestR011:
    BARE = (
        "def deliver(self, page, row):\n"
        "    page.mutate_row(0, row)\n"
    )

    def lint(self, source, path="repro/ring/machine.py"):
        from repro.check.lint import lint_source

        return [f for f in lint_source(source, path) if f.rule == "R011"]

    def test_unlogged_mutation_flagged(self):
        assert len(self.lint(self.BARE)) == 1

    def test_all_machine_packages_in_scope(self):
        for pkg in ("ring", "direct", "dataflow"):
            assert self.lint(self.BARE, f"repro/{pkg}/exec.py")

    def test_txn_evidence_silences(self):
        logged = (
            "def deliver(self, txn, page, row):\n"
            "    self.tm.stage_rows(txn, [row])\n"
            "    page.mutate_row(0, row)\n"
        )
        assert self.lint(logged) == []

    def test_allow_comment_suppresses(self):
        allowed = (
            "def deliver(self, page, row):\n"
            "    page.mutate_row(0, row)  # repro: allow[R011]\n"
        )
        assert self.lint(allowed) == []

    def test_out_of_scope_packages_ignored(self):
        assert self.lint(self.BARE, "repro/relational/heapfile.py") == []
        assert self.lint(self.BARE, "repro/recovery/txn.py") == []

    def test_self_test_covers_r011(self):
        from repro.check.lint import SEEDED_VIOLATIONS, self_test

        assert "R011" in SEEDED_VIOLATIONS
        assert self_test() == []
