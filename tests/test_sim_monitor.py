"""Counters, tallies, time series."""

import math

import pytest

from repro.sim.monitor import Counter, Tally, TimeSeries


class TestCounter:
    def test_add_accumulates(self):
        c = Counter("c")
        c.add(2)
        c.add()
        assert c.value == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)


class TestTally:
    def test_mean(self):
        t = Tally("t")
        for v in (1.0, 2.0, 3.0):
            t.observe(v)
        assert t.mean == pytest.approx(2.0)

    def test_empty_mean_is_zero(self):
        assert Tally("t").mean == 0.0

    def test_variance_and_stddev(self):
        t = Tally("t")
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            t.observe(v)
        assert t.variance == pytest.approx(32.0 / 7.0)
        assert t.stddev == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_variance_below_two_samples_is_zero(self):
        t = Tally("t")
        t.observe(5.0)
        assert t.variance == 0.0

    def test_extrema(self):
        t = Tally("t")
        for v in (3.0, -1.0, 7.0):
            t.observe(v)
        assert t.minimum == -1.0
        assert t.maximum == 7.0

    def test_count(self):
        t = Tally("t")
        t.observe(1.0)
        t.observe(1.0)
        assert t.count == 2


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries("q")
        ts.record(0.0, 1.0)
        ts.record(5.0, 3.0)
        assert ts.last == 3.0
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("q")
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries("q")
        ts.record(0.0, 0.0)
        ts.record(10.0, 10.0)  # held 0 for 10ms, then 10 for 10ms
        assert ts.time_weighted_mean(20.0) == pytest.approx(5.0)

    def test_time_weighted_mean_empty(self):
        assert TimeSeries("q").time_weighted_mean(10.0) == 0.0

    def test_time_weighted_mean_single_sample(self):
        ts = TimeSeries("q")
        ts.record(5.0, 2.0)
        assert ts.time_weighted_mean(5.0) == 2.0
