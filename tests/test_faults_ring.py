"""Lossy rings (requirement 5): drops, corruption, NAKs, retransmission.

Every recovery run must produce exactly the oracle's rows — the link
layer may slow the machine down, but it must never reorder or lose the
Section 4 protocol's messages.
"""

import pytest

from repro.errors import PacketError, RetryExhaustedError
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.ring.machine import RingMachine
from repro.ring.packets import (
    ControlMessage,
    ControlPacket,
    InstructionPacket,
    ResultPacket,
    SourceOperand,
    flip_byte,
)
from repro.check.sanitizer import sanitizing

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Relation.from_rows("big", SCHEMA, [(i, i % 8) for i in range(400)], page_bytes=128)
    )
    cat.register(
        Relation.from_rows("small", SCHEMA, [(i, i % 8) for i in range(200)], page_bytes=128)
    )
    return cat


def join_tree(name="lossy"):
    return (
        scan("big")
        .restrict(attr("k") < 300)
        .equijoin(scan("small").restrict(attr("k") < 150), "g", "g")
        .tree(name)
    )


def build_machine(catalog, plan=None, processors=6, **kwargs):
    defaults = dict(controllers=8, page_bytes=128, cache_bytes=32 * 128)
    defaults.update(kwargs)
    if plan is None:
        return RingMachine(catalog, processors=processors, **defaults)
    with injecting(plan):
        return RingMachine(catalog, processors=processors, **defaults)


def drop_plan(rate, site="*", seed=7, **spec_kwargs):
    return FaultPlan(
        seed=seed, specs=(FaultSpec(kind="ring_drop", rate=rate, site=site, **spec_kwargs),)
    )


class TestDropRecovery:
    def test_dropped_packets_retransmitted_oracle_exact(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog, plan=drop_plan(0.08))
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        inj = machine.sim.faults
        assert inj.total("ring.drop") > 0
        assert inj.total("ring.retransmit") >= inj.total("ring.drop")

    def test_loss_slows_but_never_corrupts(self, catalog):
        tree_a = join_tree("a")
        clean = build_machine(catalog)
        clean.submit(tree_a)
        healthy = clean.run().elapsed_ms

        tree_b = join_tree("b")
        lossy = build_machine(catalog, plan=drop_plan(0.08))
        lossy.submit(tree_b)
        degraded = lossy.run().elapsed_ms
        assert degraded > healthy

    def test_retransmits_recharge_ring_bytes(self, catalog):
        tree = join_tree()
        clean = build_machine(catalog)
        clean.submit(join_tree())
        clean.run()
        lossy = build_machine(catalog, plan=drop_plan(0.08))
        lossy.submit(tree)
        lossy.run()
        clean_bytes = clean.outer_ring.bytes_carried + clean.inner_ring.bytes_carried
        lossy_bytes = lossy.outer_ring.bytes_carried + lossy.inner_ring.bytes_carried
        assert lossy_bytes > clean_bytes


class TestCorruptRecovery:
    def test_corrupted_packets_naked_and_retransmitted(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = FaultPlan(seed=7, specs=(FaultSpec(kind="ring_corrupt", rate=0.08),))
        machine = build_machine(catalog, plan=plan)
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        inj = machine.sim.faults
        assert inj.total("ring.corrupt") > 0
        assert inj.total("ring.nak") == inj.total("ring.corrupt")
        assert inj.total("ring.retransmit") >= inj.total("ring.nak")

    def test_mixed_drop_and_corrupt(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = FaultPlan(
            seed=11,
            specs=(
                FaultSpec(kind="ring_drop", rate=0.05),
                FaultSpec(kind="ring_corrupt", rate=0.05),
            ),
        )
        machine = build_machine(catalog, plan=plan)
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        inj = machine.sim.faults
        assert inj.total("ring.drop") > 0
        assert inj.total("ring.corrupt") > 0


class TestConservationAndDeterminism:
    def test_lossy_run_passes_packet_conservation(self, catalog):
        plan = FaultPlan(
            seed=11,
            specs=(
                FaultSpec(kind="ring_drop", rate=0.05),
                FaultSpec(kind="ring_corrupt", rate=0.05),
            ),
        )
        with sanitizing():
            machine = build_machine(catalog, plan=plan)
            tree = join_tree()
            machine.submit(tree)
            machine.run()
        assert machine.outer_ring.packets_injected == machine.outer_ring.packets_removed
        assert machine.inner_ring.packets_injected == machine.inner_ring.packets_removed
        assert machine.sim.faults.total("ring.retransmit") > 0

    def test_same_seed_same_run(self, catalog):
        def one_run():
            machine = build_machine(catalog, plan=drop_plan(0.08))
            tree = join_tree()
            machine.submit(tree)
            report = machine.run()
            return (
                report.elapsed_ms,
                machine.outer_ring.bytes_carried,
                machine.inner_ring.bytes_carried,
                machine.sim.faults.snapshot(),
            )

        assert one_run() == one_run()

    def test_zero_strike_armed_run_identical_to_unarmed(self, catalog):
        # A plan armed at a site that never matches exercises the arming
        # machinery without a single strike; it must be indistinguishable
        # from an unarmed run.
        def one_run(plan):
            machine = build_machine(catalog, plan=plan)
            tree = join_tree()
            machine.submit(tree)
            report = machine.run()
            return (
                report.elapsed_ms,
                report.events_processed,
                machine.outer_ring.bytes_carried,
                machine.inner_ring.bytes_carried,
            )

        unarmed = one_run(None)
        ghost = one_run(drop_plan(0.5, site="no-such-ring"))
        assert ghost == unarmed


class TestRetryExhaustion:
    def test_unrecoverable_ring_raises(self, catalog):
        plan = drop_plan(1.0, max_retries=2)
        machine = build_machine(catalog, plan=plan)
        machine.submit(join_tree())
        with pytest.raises(RetryExhaustedError, match="ring"):
            machine.run()


class TestBroadcastJoinUnderLoss:
    """Satellite: the Section 4 broadcast-join protocol (IRC vectors and
    the missed-page list) survives data-ring packet loss."""

    def test_inner_broadcasts_survive_outer_ring_loss(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = drop_plan(0.10, site="outer-ring", seed=3)
        machine = build_machine(catalog, plan=plan)

        broadcast_counts = {}
        original = machine.ic_broadcast_inner

        def spying_broadcast(ic, index, page, last_known, delivered):
            broadcast_counts[index] = broadcast_counts.get(index, 0) + 1
            original(ic, index, page, last_known, delivered)

        machine.ic_broadcast_inner = spying_broadcast
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()

        # The join's rows are exactly the oracle's despite lost packets.
        assert report.results[tree.name].same_rows_as(oracle)
        inj = machine.sim.faults
        assert inj.total("ring.retransmit") > 0
        assert "ring.drop[outer-ring]" in inj.snapshot()
        # Every inner page past the one shipped inline with the join
        # instruction reached the IPs through the broadcast path.
        assert broadcast_counts
        indexes = sorted(broadcast_counts)
        assert indexes == list(range(indexes[0], indexes[-1] + 1))
        assert indexes[0] <= 1

    def test_missed_pages_rebroadcast(self, catalog):
        # Two concurrent joins keep IPs busy, so some request inner pages
        # after the original broadcast passed them by — the IC must serve
        # the missed-page list by re-broadcasting.
        trees = [join_tree("m1"), join_tree("m2")]
        oracles = {t.name: execute(t, catalog) for t in trees}
        plan = drop_plan(0.10, site="outer-ring", seed=3)
        machine = build_machine(catalog, plan=plan, processors=4)

        rebroadcasts = {"count": 0}
        seen = set()
        original = machine.ic_broadcast_inner

        def spying_broadcast(ic, index, page, last_known, delivered):
            key = (id(ic), index)
            if key in seen:
                rebroadcasts["count"] += 1
            seen.add(key)
            original(ic, index, page, last_known, delivered)

        machine.ic_broadcast_inner = spying_broadcast
        for tree in trees:
            machine.submit(tree)
        report = machine.run()
        for name, oracle in oracles.items():
            assert report.results[name].same_rows_as(oracle), name
        assert rebroadcasts["count"] > 0


class TestChecksumDetection:
    """The CRC-32 trailer of the Figure 4.3-4.5 codecs catches the bit
    damage that ``ring_corrupt`` models."""

    def _page(self, rows=3):
        from repro.relational.page import Page

        page = Page(SCHEMA, 128)
        for i in range(rows):
            page.append((i, i % 8))
        return page.to_bytes()

    def test_instruction_packet_corruption_detected(self):
        packet = InstructionPacket(
            ip_id=9,
            query_id=4,
            sender_ic=2,
            destination_ic=6,
            flush_when_done=True,
            opcode="restrict",
            result_relation="out",
            result_schema=SCHEMA,
            operands=[SourceOperand("src", SCHEMA, self._page())],
            tag=3,
        )
        wire = packet.encode()
        assert InstructionPacket.decode(wire) == packet
        for offset in (8, len(wire) // 2, -1):
            with pytest.raises(PacketError):
                InstructionPacket.decode(flip_byte(wire, offset))

    def test_result_packet_corruption_detected(self):
        wire = ResultPacket(ic_id=5, relation_name="res", page_bytes=self._page()).encode()
        for offset in (9, len(wire) // 2, -1):
            with pytest.raises(PacketError):
                ResultPacket.decode(flip_byte(wire, offset))

    def test_control_packet_corruption_detected(self):
        wire = ControlPacket(
            ic_id=2, sender_ip=7, message=ControlMessage.DONE, argument=13
        ).encode()
        for offset in range(len(wire)):
            with pytest.raises(PacketError):
                ControlPacket.decode(flip_byte(wire, offset))
