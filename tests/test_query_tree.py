"""Query trees: structure, validation, shape accounting, rendering."""

import pytest

from repro.errors import QueryTreeError
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryTree,
    RestrictNode,
    ScanNode,
    UnionNode,
    sample_query_tree,
)


@pytest.fixture
def catalog(pair_schema):
    cat = Catalog()
    for name in ("r1", "r2"):
        cat.register(
            Relation.from_rows(name, pair_schema, [(i, i % 4) for i in range(20)], page_bytes=64)
        )
    return cat


@pytest.fixture
def tree(catalog):
    left = RestrictNode(ScanNode("r1"), attr("k") < 10)
    right = RestrictNode(ScanNode("r2"), attr("k") < 5)
    join = JoinNode(left, right, attr("grp").equals_attr("grp"))
    return QueryTree(ProjectNode(join, ["k", "k_1"]), name="t")


class TestStructure:
    def test_postorder_children_first(self, tree):
        opcodes = [n.opcode for n in tree.nodes()]
        assert opcodes == ["scan", "restrict", "scan", "restrict", "join", "project"]

    def test_depth(self, tree):
        assert tree.depth == 4

    def test_join_and_restrict_counts(self, tree):
        assert tree.join_count == 1
        assert tree.restrict_count == 2

    def test_leaf_relations(self, tree):
        assert tree.leaf_relations() == ["r1", "r2"]

    def test_operators_exclude_scans(self, tree):
        assert all(n.opcode != "scan" for n in tree.operators())
        assert len(tree.operators()) == 4

    def test_parent_of(self, tree):
        join = next(n for n in tree.nodes() if isinstance(n, JoinNode))
        parent = tree.parent_of(join)
        assert isinstance(parent, ProjectNode)
        assert tree.parent_of(tree.root) is None

    def test_node_by_id(self, tree):
        node = tree.nodes()[0]
        assert tree.node_by_id(node.node_id) is node

    def test_node_by_id_missing(self, tree):
        with pytest.raises(QueryTreeError):
            tree.node_by_id(-1)

    def test_node_ids_unique(self, tree):
        ids = [n.node_id for n in tree.nodes()]
        assert len(set(ids)) == len(ids)

    def test_join_outer_inner_accessors(self, tree):
        join = next(n for n in tree.nodes() if isinstance(n, JoinNode))
        assert join.outer is join.children[0]
        assert join.inner is join.children[1]


class TestSchemasAndValidation:
    def test_validate_ok(self, tree, catalog):
        tree.validate(catalog)

    def test_scan_of_unknown_relation(self, catalog):
        tree = QueryTree(ScanNode("ghost"))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_restrict_bad_predicate(self, catalog):
        tree = QueryTree(RestrictNode(ScanNode("r1"), attr("ghost") == 1))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_project_missing_attribute(self, catalog):
        tree = QueryTree(ProjectNode(ScanNode("r1"), ["ghost"]))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_project_empty_attribute_list(self, catalog):
        tree = QueryTree(ProjectNode(ScanNode("r1"), []))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_join_bad_condition(self, catalog):
        tree = QueryTree(
            JoinNode(ScanNode("r1"), ScanNode("r2"), attr("ghost").equals_attr("grp"))
        )
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_join_output_schema_unique_names(self, catalog):
        join = JoinNode(ScanNode("r1"), ScanNode("r2"), attr("grp").equals_attr("grp"))
        schema = join.output_schema(catalog)
        assert schema.names == ("k", "grp", "k_1", "grp_1")

    def test_union_arity_mismatch(self, catalog, simple_schema):
        catalog.register(Relation("wide", simple_schema))
        tree = QueryTree(UnionNode(ScanNode("r1"), ScanNode("wide")))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_append_unknown_target(self, catalog):
        tree = QueryTree(AppendNode("ghost", ScanNode("r1")))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_append_arity_mismatch(self, catalog, simple_schema):
        catalog.register(Relation("wide", simple_schema))
        tree = QueryTree(AppendNode("wide", ScanNode("r1")))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_delete_unknown_target(self, catalog):
        tree = QueryTree(DeleteNode("ghost", attr("k") == 1))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_delete_bad_predicate(self, catalog):
        tree = QueryTree(DeleteNode("r1", attr("ghost") == 1))
        with pytest.raises(QueryTreeError):
            tree.validate(catalog)

    def test_updated_relations(self, catalog):
        tree = QueryTree(AppendNode("r1", ScanNode("r2")))
        assert tree.updated_relations() == ["r1"]
        tree2 = QueryTree(DeleteNode("r2", attr("k") == 1))
        assert tree2.updated_relations() == ["r2"]


class TestRendering:
    def test_render_mentions_every_operator(self, tree):
        text = tree.render()
        assert "join" in text and "restrict" in text and "scan r1" in text

    def test_repr(self, tree):
        assert "1 joins" in repr(tree)

    def test_sample_figure_2_1_tree(self, pair_schema):
        cat = Catalog()
        for name in ("r1", "r2", "r3", "r4"):
            cat.register(
                Relation.from_rows(name, pair_schema, [(1, 1)], page_bytes=64).empty_like(name)
            )
        # relations need a 'k' attribute; pair_schema has one
        for name in ("r1", "r2", "r3", "r4"):
            cat.replace(Relation.from_rows(name, pair_schema, [(1, 1)], page_bytes=64))
        tree = sample_query_tree()(cat)
        assert tree.join_count == 3
        assert tree.restrict_count == 4
        assert tree.name == "figure-2.1"
