"""Cross-machine integration: three engines, one answer.

These are the library's strongest guarantees: for arbitrary query shapes,
the DIRECT simulator and the ring machine must produce exactly the rows
the reference interpreter produces — page by page, through caches, rings,
broadcasts, parking, spilling, and compression.
"""

import pytest

from repro.direct import scheduler
from repro.direct.machine import DirectMachine
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.ring.machine import RingMachine

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT), ("v", DataType.FLOAT))


def build_catalog(rows_a=150, rows_b=90, groups=12, page_bytes=256) -> Catalog:
    catalog = Catalog()
    catalog.register(
        Relation.from_rows(
            "ra", SCHEMA, [(i, i % groups, i * 0.5) for i in range(rows_a)], page_bytes
        )
    )
    catalog.register(
        Relation.from_rows(
            "rb", SCHEMA, [(i, (i * 7) % groups, i * 1.5) for i in range(rows_b)], page_bytes
        )
    )
    catalog.register(
        Relation.from_rows(
            "rc", SCHEMA, [(i, (i * 3) % groups, 0.0) for i in range(60)], page_bytes
        )
    )
    return catalog


QUERY_SHAPES = {
    "restrict-only": lambda: scan("ra").restrict(attr("g") < 6).tree("q"),
    "project-dedup": lambda: scan("ra").project(["g"]).tree("q"),
    "single-join": lambda: (
        scan("ra").restrict(attr("k") < 80)
        .equijoin(scan("rb").restrict(attr("k") < 60), "g", "g")
        .tree("q")
    ),
    "join-unrestricted-inner": lambda: (
        scan("ra").restrict(attr("k") < 50).equijoin(scan("rb"), "g", "g").tree("q")
    ),
    "chain-two-joins": lambda: (
        scan("ra").restrict(attr("k") < 70)
        .equijoin(scan("rb").restrict(attr("k") < 50), "g", "g")
        .equijoin(scan("rc").restrict(attr("k") < 40), "g", "g")
        .tree("q")
    ),
    "restrict-over-join": lambda: (
        scan("ra").equijoin(scan("rb"), "g", "g").restrict(attr("k") < 30).tree("q")
    ),
    "project-over-join": lambda: (
        scan("ra").restrict(attr("k") < 60)
        .equijoin(scan("rb"), "g", "g")
        .project(["k", "k_1"])
        .tree("q")
    ),
    "union": lambda: (
        scan("ra").restrict(attr("g") == 1).union(scan("rb").restrict(attr("g") == 1)).tree("q")
    ),
}


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
def test_direct_machine_agrees_with_oracle(shape):
    catalog = build_catalog()
    oracle = execute(QUERY_SHAPES[shape](), catalog)
    machine = DirectMachine(catalog, processors=3, page_bytes=256, cache_bytes=8 * 256)
    tree = QUERY_SHAPES[shape]()
    machine.submit(tree)
    report = machine.run()
    assert report.results[tree.name].same_rows_as(oracle), shape


@pytest.mark.parametrize("shape", sorted(QUERY_SHAPES))
def test_ring_machine_agrees_with_oracle(shape):
    catalog = build_catalog()
    oracle = execute(QUERY_SHAPES[shape](), catalog)
    machine = RingMachine(
        catalog, processors=3, controllers=8, page_bytes=256, cache_bytes=16 * 256
    )
    tree = QUERY_SHAPES[shape]()
    machine.submit(tree)
    report = machine.run()
    assert report.results[tree.name].same_rows_as(oracle), shape


@pytest.mark.parametrize("granularity", [scheduler.RELATION, scheduler.PAGE, scheduler.TUPLE])
def test_granularities_agree_on_concurrent_mix(granularity):
    catalog = build_catalog()
    oracles = {name: execute(builder(), catalog) for name, builder in QUERY_SHAPES.items()}
    machine = DirectMachine(
        catalog, processors=4, granularity=granularity, page_bytes=256, cache_bytes=8 * 256
    )
    trees = {}
    for name, builder in QUERY_SHAPES.items():
        tree = builder()
        tree.name = name
        trees[name] = tree
        machine.submit(tree)
    report = machine.run()
    for name, oracle in oracles.items():
        assert report.results[name].same_rows_as(oracle), name


def test_ring_machine_concurrent_mix():
    catalog = build_catalog()
    oracles = {name: execute(builder(), catalog) for name, builder in QUERY_SHAPES.items()}
    machine = RingMachine(
        catalog, processors=4, controllers=16, page_bytes=256, cache_bytes=32 * 256
    )
    for name, builder in QUERY_SHAPES.items():
        tree = builder()
        tree.name = name
        machine.submit(tree)
    report = machine.run()
    for name, oracle in oracles.items():
        assert report.results[name].same_rows_as(oracle), name


def test_ring_direct_routing_on_concurrent_mix():
    catalog = build_catalog()
    oracles = {name: execute(builder(), catalog) for name, builder in QUERY_SHAPES.items()}
    machine = RingMachine(
        catalog,
        processors=4,
        controllers=16,
        page_bytes=256,
        cache_bytes=32 * 256,
        direct_ip_routing=True,
    )
    for name, builder in QUERY_SHAPES.items():
        tree = builder()
        tree.name = name
        machine.submit(tree)
    report = machine.run()
    for name, oracle in oracles.items():
        assert report.results[name].same_rows_as(oracle), name


def test_determinism_same_seeded_run_twice():
    def run_once():
        catalog = build_catalog()
        machine = DirectMachine(catalog, processors=3, page_bytes=256)
        tree = QUERY_SHAPES["chain-two-joins"]()
        machine.submit(tree)
        return machine.run()

    a, b = run_once(), run_once()
    assert a.elapsed_ms == b.elapsed_ms
    assert a.traffic == b.traffic
    assert a.events_processed == b.events_processed
