"""Closed-form models: Section 3.3 traffic, ring sizing, concurrency."""

import pytest

from repro import hw
from repro.analysis.bandwidth import (
    join_traffic_page_level,
    join_traffic_tuple_level,
    traffic_comparison,
    traffic_ratio,
)
from repro.analysis.concurrency import (
    max_concurrency,
    tuple_level_pays_off,
    useful_processors,
)
from repro.analysis.ring_sizing import (
    RING_TECHNOLOGIES,
    linear_demand,
    max_ips_supported,
    recommend_ring,
    sizing_table,
)


class TestSection33Formulas:
    def test_tuple_level_matches_paper_formula(self):
        # n*m*(200+c) with 100-byte tuples
        t = join_traffic_tuple_level(1000, 1000, tuple_bytes=100, overhead_bytes=20)
        assert t.bytes_total == 1000 * 1000 * 220

    def test_page_level_matches_paper_formula(self):
        # n/10 * m/10 * (2000 + c)
        p = join_traffic_page_level(
            1000, 1000, tuple_bytes=100, page_bytes=1000, overhead_bytes=20
        )
        assert p.bytes_total == 100 * 100 * 2020

    def test_paper_headline_ratio_is_ten(self):
        assert traffic_ratio(1000, 1000, page_bytes=1000, overhead_bytes=0) == pytest.approx(10.0)

    def test_bigger_pages_another_order_of_magnitude(self):
        assert traffic_ratio(1000, 1000, page_bytes=10_000, overhead_bytes=0) == pytest.approx(100.0)

    def test_ratio_grows_with_overhead(self):
        small = traffic_ratio(1000, 1000, page_bytes=1000, overhead_bytes=0)
        big = traffic_ratio(1000, 1000, page_bytes=1000, overhead_bytes=100)
        assert big > small

    def test_ratio_independent_of_n_m(self):
        a = traffic_ratio(100, 100, page_bytes=1000)
        b = traffic_ratio(5000, 3000, page_bytes=1000)
        assert a == pytest.approx(b, rel=0.05)

    def test_partial_pages_ceil(self):
        p = join_traffic_page_level(1001, 1000, tuple_bytes=100, page_bytes=1000)
        assert p.packets == 101 * 100

    def test_comparison_table_rows(self):
        rows = traffic_comparison(1000, 1000, page_sizes=[1000], overhead_values=[0, 20])
        assert len(rows) == 4
        tuple_rows = [r for r in rows if r["granularity"] == "tuple"]
        assert all(r["ratio_vs_tuple"] == 1.0 for r in tuple_rows)


class TestRingSizing:
    def test_linear_demand(self):
        demand = linear_demand(0.8)
        assert demand(50) == pytest.approx(40.0)

    def test_max_ips_at_paper_anchor(self):
        # 0.8 Mbps per IP -> the 40 Mbps TTL ring supports exactly 50 IPs.
        assert max_ips_supported(hw.OUTER_RING_TTL, linear_demand(0.8)) == 50

    def test_recommend_ttl_for_small(self):
        choice = recommend_ring(40, linear_demand(0.8))
        assert choice.ring is hw.OUTER_RING_TTL
        assert choice.headroom >= 1.0

    def test_recommend_fiber_for_larger(self):
        choice = recommend_ring(100, linear_demand(0.8))
        assert choice.ring is hw.OUTER_RING_FIBER

    def test_recommend_ecl_beyond_fiber(self):
        choice = recommend_ring(600, linear_demand(0.8))
        assert choice.ring is hw.OUTER_RING_ECL

    def test_impossible_demand_raises(self):
        with pytest.raises(ValueError):
            recommend_ring(10_000, linear_demand(1.0))

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(ValueError):
            linear_demand(0)

    def test_sizing_table_flags(self):
        rows = sizing_table([(10, 8.0), (100, 80.0)])
        assert rows[0][hw.OUTER_RING_TTL.name] is True
        assert rows[1][hw.OUTER_RING_TTL.name] is False
        assert rows[1][hw.OUTER_RING_FIBER.name] is True

    def test_technology_order_cheapest_first(self):
        rates = [r.bit_rate_mbps for r in RING_TECHNOLOGIES]
        assert rates[0] == min(rates)


class TestConcurrencyBounds:
    def test_tuple_bound_is_n_times_m(self):
        assert max_concurrency(1000, 2000, "tuple") == 2_000_000

    def test_page_bound_is_outer_pages(self):
        assert max_concurrency(1000, 2000, "page", tuple_bytes=100, page_bytes=1000) == 100

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError):
            max_concurrency(10, 10, "molecule")

    def test_useful_processors_caps_at_machine_size(self):
        out = useful_processors(1000, 1000, processors=50)
        assert out["tuple"] == 50
        assert out["page"] == 50

    def test_page_bound_binds_on_huge_machines(self):
        out = useful_processors(1000, 1000, processors=10_000)
        assert out["page"] == 100
        assert out["tuple"] == 10_000

    def test_tuple_pays_off_only_with_millions(self):
        # Realistic machine: no.
        assert not tuple_level_pays_off(1000, 1000, processors=50)
        # "Millions of processors": yes.
        assert tuple_level_pays_off(1000, 1000, processors=500_000)
