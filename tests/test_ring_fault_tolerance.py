"""Requirement 5 (Section 4.0): "survive an arbitrary number of disabled
processors."

Fail-stop IP failures are injected at chosen simulated times; the ICs'
watchdogs detect the silence, requeue the lost work units, and report the
casualty to the MC.  In fault-tolerant mode every work unit ships its
results atomically at completion, so re-execution can never duplicate
rows — every test asserts exact oracle equality after the carnage.
"""

import pytest

from repro.errors import MachineError
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.ring.machine import RingMachine

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Relation.from_rows("big", SCHEMA, [(i, i % 8) for i in range(400)], page_bytes=128)
    )
    cat.register(
        Relation.from_rows("small", SCHEMA, [(i, i % 8) for i in range(200)], page_bytes=128)
    )
    return cat


def join_tree(name="ft"):
    return (
        scan("big")
        .restrict(attr("k") < 300)
        .equijoin(scan("small").restrict(attr("k") < 150), "g", "g")
        .tree(name)
    )


def build_machine(catalog, processors=6, **kwargs):
    defaults = dict(
        controllers=8, page_bytes=128, cache_bytes=32 * 128, fault_tolerant=True,
        watchdog_interval_ms=50.0,
    )
    defaults.update(kwargs)
    return RingMachine(catalog, processors=processors, **defaults)


class TestSingleFailure:
    def test_failure_during_restrict_phase(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog)
        tree = join_tree()
        machine.submit(tree)
        machine.schedule_ip_failure(2, 30.0)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        assert machine.failed_ips == [2]

    def test_failure_during_join_phase(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog)
        tree = join_tree()
        machine.submit(tree)
        machine.schedule_ip_failure(1, 800.0)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)

    def test_failure_before_any_work(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog)
        tree = join_tree()
        machine.submit(tree)
        machine.schedule_ip_failure(4, 0.0)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)

    def test_failure_slows_but_completes(self, catalog):
        tree_a = join_tree("a")
        machine_a = build_machine(catalog)
        machine_a.submit(tree_a)
        healthy = machine_a.run().elapsed_ms

        tree_b = join_tree("b")
        machine_b = build_machine(catalog)
        machine_b.submit(tree_b)
        machine_b.schedule_ip_failure(1, 10.0)
        machine_b.schedule_ip_failure(2, 10.0)
        degraded = machine_b.run().elapsed_ms
        assert degraded >= healthy


class TestArbitraryManyFailures:
    def test_all_but_one_processor_dies(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog, processors=5)
        tree = join_tree()
        machine.submit(tree)
        for ip_id, at in [(1, 50.0), (2, 120.0), (3, 300.0), (4, 700.0)]:
            machine.schedule_ip_failure(ip_id, at)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        assert len(machine.failed_ips) == 4

    def test_staggered_failures_across_concurrent_queries(self, catalog):
        builders = [
            lambda: scan("big").restrict(attr("g") == 2).tree("q1"),
            lambda: join_tree("q2"),
            lambda: scan("small").project(["g"]).tree("q3"),
        ]
        oracles = {}
        for b in builders:
            t = b()
            oracles[t.name] = execute(t, catalog)
        machine = build_machine(catalog, processors=6)
        for b in builders:
            machine.submit(b())
        machine.schedule_ip_failure(2, 40.0)
        machine.schedule_ip_failure(5, 250.0)
        report = machine.run()
        for name, oracle in oracles.items():
            assert report.results[name].same_rows_as(oracle), name

    def test_simultaneous_failures(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog, processors=6)
        tree = join_tree()
        machine.submit(tree)
        for ip_id in (1, 2, 3):
            machine.schedule_ip_failure(ip_id, 100.0)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)


class TestFaultToleranceGuards:
    def test_failure_injection_requires_ft_mode(self, catalog):
        machine = RingMachine(catalog, processors=2, controllers=4, page_bytes=128)
        with pytest.raises(MachineError):
            machine.schedule_ip_failure(1, 10.0)

    def test_unknown_ip_rejected(self, catalog):
        machine = build_machine(catalog)
        with pytest.raises(MachineError):
            machine.schedule_ip_failure(999, 10.0)

    def test_double_failure_is_idempotent(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog)
        tree = join_tree()
        machine.submit(tree)
        machine.schedule_ip_failure(1, 50.0)
        machine.schedule_ip_failure(1, 60.0)
        report = machine.run()
        assert machine.failed_ips == [1]
        assert report.results[tree.name].same_rows_as(oracle)

    def test_ft_mode_without_failures_still_correct(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog)
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
