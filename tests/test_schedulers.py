"""Future-event-list structures: heap/calendar equivalence and internals.

The calendar queue is only allowed to exist because it is observably
identical to the tie-batched heap: same batches, same order, same clock.
The property tests here drive both through randomized workloads (ties,
cancellations, mid-run scheduling) and require identical fire sequences.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator, ambient_scheduler, scheduling
from repro.sim.schedulers import CalendarQueue, TieBatchedHeap, make_scheduler


# ------------------------------------------------------------ construction


def test_make_scheduler_names():
    assert isinstance(make_scheduler("heap"), TieBatchedHeap)
    assert isinstance(make_scheduler("calendar"), CalendarQueue)


def test_make_scheduler_rejects_unknown():
    with pytest.raises(SimulationError):
        make_scheduler("fibonacci")


def test_simulator_rejects_unknown_scheduler():
    with pytest.raises(SimulationError):
        Simulator(scheduler="fibonacci")


def test_scheduling_context_is_ambient_and_exported(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_SCHEDULER", raising=False)
    assert ambient_scheduler() == "heap"
    with scheduling("calendar"):
        assert ambient_scheduler() == "calendar"
        assert Simulator().scheduler == "calendar"
        import os

        assert os.environ["REPRO_SIM_SCHEDULER"] == "calendar"
    assert ambient_scheduler() == "heap"
    assert Simulator().scheduler == "heap"


# ------------------------------------------------------------ structure units


class _Tag:
    """Stand-in event: the structures store, never inspect."""

    def __init__(self, n):
        self.n = n


@pytest.mark.parametrize("name", ["heap", "calendar"])
def test_batches_come_out_in_time_order_with_fifo_ties(name):
    fel = make_scheduler(name)
    fel.push(2.0, _Tag("b1"))
    fel.push(1.0, _Tag("a1"))
    fel.push(2.0, _Tag("b2"))
    assert fel.peek_time() == 1.0
    when, batch = fel.pop_batch()
    assert when == 1.0 and [e.n for e in batch] == ["a1"]
    when, batch = fel.pop_batch()
    assert when == 2.0 and [e.n for e in batch] == ["b1", "b2"]
    assert fel.peek_time() is None


@pytest.mark.parametrize("name", ["heap", "calendar"])
def test_len_counts_distinct_timestamps(name):
    fel = make_scheduler(name)
    for when in (1.0, 1.0, 2.0, 3.0, 3.0, 3.0):
        fel.push(when, _Tag(when))
    assert len(fel) == 3


def test_calendar_resize_grows_and_shrinks():
    cq = CalendarQueue()
    times = [float(i) * 0.37 for i in range(200)]  # >> 2 * MIN_DAYS distinct
    rng = random.Random(7)
    rng.shuffle(times)
    for when in times:
        cq.push(when, _Tag(when))
    assert cq._ndays > CalendarQueue.MIN_DAYS  # doubling happened
    popped = []
    while cq.peek_time() is not None:
        when, batch = cq.pop_batch()
        popped.append(when)
        assert [e.n for e in batch] == [when]
    assert popped == sorted(times)
    assert cq._ndays == CalendarQueue.MIN_DAYS  # halved back down


def test_calendar_far_future_fallback():
    # Everything more than a wheel revolution away: the scan gives up and
    # takes the direct minimum instead of spinning.
    cq = CalendarQueue()
    cq.push(1.0e6, _Tag("far"))
    cq.push(2.0e6, _Tag("farther"))
    assert cq.peek_time() == 1.0e6
    when, batch = cq.pop_batch()
    assert when == 1.0e6 and batch[0].n == "far"


def test_calendar_push_below_cached_minimum_updates_peek():
    cq = CalendarQueue()
    cq.push(5.0, _Tag("later"))
    assert cq.peek_time() == 5.0
    cq.push(1.0, _Tag("sooner"))
    assert cq.peek_time() == 1.0


# ------------------------------------------------------------ property tests


def _random_workload(scheduler: str, seed: int):
    """Run a randomized schedule/cancel workload; return the fire trace."""
    rng = random.Random(seed)
    sim = Simulator(scheduler=scheduler)
    trace = []
    cancellable = []

    def fire(tag):
        trace.append((sim.now, tag))
        # Mid-run scheduling, with deliberate timestamp ties (quantized
        # delays) and occasional same-time (delay 0) events.
        if rng.random() < 0.4:
            delay = rng.choice([0.0, 0.5, 1.0, 1.0, 2.5])
            tag2 = f"{tag}.{len(trace)}"
            cancellable.append(sim.schedule(delay, lambda t=tag2: fire(t)))
        if cancellable and rng.random() < 0.2:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    for i in range(60):
        delay = rng.choice([0.0, 0.25, 1.0, 1.0, 3.0, 7.5])
        cancellable.append(sim.schedule(delay, lambda t=f"e{i}": fire(t)))
    sim.run(max_events=50_000)
    return trace, sim.events_processed, sim.now


@pytest.mark.parametrize("seed", [1, 2, 3, 17, 1979])
def test_calendar_fire_sequence_identical_to_heap(seed):
    heap_trace = _random_workload("heap", seed)
    calendar_trace = _random_workload("calendar", seed)
    assert calendar_trace == heap_trace


@pytest.mark.parametrize("name", ["heap", "calendar"])
def test_until_horizon_equivalence(name):
    # Horizon stops mid-stream must resume identically on either structure.
    sim = Simulator(scheduler=name)
    trace = []
    for i, t in enumerate((1.0, 4.0, 4.0, 9.0)):
        sim.schedule(t, lambda i=i: trace.append((sim.now, i)))
    assert sim.run(until=4.0) == 4.0
    assert trace == [(1.0, 0), (4.0, 1), (4.0, 2)]
    sim.run()
    assert trace[-1] == (9.0, 3)
