"""Exactness of the relational fast paths and the identity gates.

Every optimization in this file's scope (unchecked bulk appends, packed
page memoization, the validated packing path, operator fusion, the
calendar scheduler) is only legal because it is *observably identical* to
the slow path it replaces — these tests pin that equivalence.
"""

import pytest

from repro.errors import PageError
from repro.relational.page import Page, page_capacity, pack_rows_into_pages
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema

SCHEMA = Schema.build(("k", DataType.INT), ("v", DataType.FLOAT))


def _rows(n):
    return [(i, float(i) * 0.5) for i in range(n)]


# ------------------------------------------------------------ page fast paths


def test_page_capacity_matches_built_page():
    for page_bytes in (64, 512, 4096):
        assert page_capacity(SCHEMA, page_bytes) == Page(SCHEMA, page_bytes).capacity


def test_extend_unchecked_matches_append():
    a = Page(SCHEMA, 512)
    b = Page(SCHEMA, 512)
    rows = _rows(10)
    for row in rows:
        a.append(row)
    b.extend_unchecked(rows)
    assert list(a.rows()) == list(b.rows())
    assert a.to_bytes() == b.to_bytes()


def test_extend_unchecked_checks_overflow():
    page = Page(SCHEMA, 128)
    with pytest.raises(PageError):
        page.extend_unchecked(_rows(page.capacity + 1))


def test_pack_validated_has_identical_page_boundaries():
    rows = _rows(137)
    checked = pack_rows_into_pages(SCHEMA, rows, 256)
    unchecked = pack_rows_into_pages(SCHEMA, rows, 256, validated=True)
    assert [p.row_count for p in checked] == [p.row_count for p in unchecked]
    assert [p.to_bytes() for p in checked] == [p.to_bytes() for p in unchecked]


def test_from_rows_validated_matches_checked():
    rows = _rows(50)
    a = Relation.from_rows("a", SCHEMA, rows, page_bytes=256)
    b = Relation.from_rows("b", SCHEMA, rows, page_bytes=256, validated=True)
    assert a.same_rows_as(b)
    assert [p.row_count for p in a.pages] == [p.row_count for p in b.pages]


# ------------------------------------------------------------ packed_pages memo


def test_packed_pages_is_memoized_per_page_size():
    rel = Relation.from_rows("r", SCHEMA, _rows(40), page_bytes=256)
    first = rel.packed_pages(128)
    assert rel.packed_pages(128) is first  # shared image, no repacking
    assert rel.packed_pages(256) is not first  # keyed on page size


def test_packed_pages_invalidated_by_mutators():
    rel = Relation.from_rows("r", SCHEMA, _rows(40), page_bytes=256)
    before = rel.packed_pages(128)

    rel.insert((40, 20.0))
    after_insert = rel.packed_pages(128)
    assert after_insert is not before
    assert sum(p.row_count for p in after_insert) == 41

    page = Page(SCHEMA, 256)
    page.append((41, 20.5))
    rel.append_page(page)
    assert rel.packed_pages(128) is not after_insert

    cached = rel.packed_pages(128)
    rel.compact()
    assert rel.packed_pages(128) is not cached


def test_packed_pages_content_matches_fresh_pack():
    rel = Relation.from_rows("r", SCHEMA, _rows(33), page_bytes=256)
    fresh = pack_rows_into_pages(SCHEMA, list(rel.rows()), 128)
    memoized = rel.packed_pages(128)
    assert [p.to_bytes() for p in memoized] == [p.to_bytes() for p in fresh]


# ------------------------------------------------------------ generator bulk path


def test_generator_bulk_load_matches_seeded_expectation():
    # The generator switched from per-row insert to the validated bulk
    # packer; the database must stay bit-for-bit what the seed produced.
    from repro.workload.generator import generate_benchmark_database

    db1 = generate_benchmark_database(scale=0.02, seed=1979)
    db2 = generate_benchmark_database(scale=0.02, seed=1979)
    for name in db1.relation_names:
        r1 = db1.catalog.get(name)
        r2 = db2.catalog.get(name)
        assert [p.to_bytes() for p in r1.pages] == [p.to_bytes() for p in r2.pages]
    # Rows are dense: every page but the last is full.
    rel = db1.catalog.get(db1.relation_names[0])
    assert all(p.is_full for p in rel.pages[:-1])


# ------------------------------------------------------------ identity gates


def test_scheduler_identity_on_quick_subset():
    from repro.check.identity import identity_mismatches

    assert identity_mismatches("scheduler", ["packets", "project"]) == []


def test_fusion_identity_on_quick_subset():
    from repro.check.identity import identity_mismatches

    assert identity_mismatches("fusion", ["packets", "project"]) == []


def test_identity_rejects_unknown_axis():
    from repro.check.identity import identity_mismatches
    from repro.errors import CheckError

    with pytest.raises(CheckError):
        identity_mismatches("voltage", ["packets"])


def test_identity_rejects_unknown_experiment():
    from repro.check.identity import render_experiment
    from repro.errors import CheckError

    with pytest.raises(CheckError):
        render_experiment("figure_9_9")
