"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.relational import operators
from repro.relational.page import Page, pack_rows_into_pages
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.relational.sorting import is_sorted, sort_relation
from repro.ring.packets import (
    InstructionPacket,
    ResultPacket,
    SourceOperand,
    instruction_packet_bytes,
    result_packet_bytes,
)
from repro.workload.zipf import weighted_partition

PAIR = Schema.build(("k", DataType.INT), ("g", DataType.INT))
TEXT = Schema.build(("k", DataType.INT), ("s", DataType.CHAR, 10))

pair_rows = st.lists(
    st.tuples(st.integers(-(2**40), 2**40), st.integers(0, 50)), max_size=60
)
text_rows = st.lists(
    st.tuples(
        st.integers(-(2**40), 2**40),
        st.text(alphabet="abcdefghij", max_size=10),
    ),
    max_size=40,
)


class TestRowPacking:
    @given(rows=text_rows)
    def test_pack_unpack_roundtrip(self, rows):
        for row in rows:
            assert TEXT.unpack(TEXT.pack(row)) == row

    @given(rows=pair_rows)
    def test_pack_many_roundtrip(self, rows):
        assert PAIR.unpack_many(PAIR.pack_many(rows)) == rows


class TestPageInvariants:
    @given(rows=pair_rows)
    def test_page_serialization_roundtrip(self, rows):
        pages = pack_rows_into_pages(PAIR, rows, page_bytes=128)
        back = [r for p in pages for r in Page.from_bytes(PAIR, p.to_bytes()).rows()]
        assert back == rows

    @given(rows=pair_rows)
    def test_packing_preserves_order_and_count(self, rows):
        pages = pack_rows_into_pages(PAIR, rows, page_bytes=128)
        assert [r for p in pages for r in p.rows()] == rows
        assert all(not p.is_empty for p in pages)

    @given(rows=pair_rows)
    def test_all_pages_full_except_last(self, rows):
        pages = pack_rows_into_pages(PAIR, rows, page_bytes=128)
        for page in pages[:-1]:
            assert page.is_full


class TestAlgebraInvariants:
    @given(rows=pair_rows, cut=st.integers(-10, 60))
    def test_restrict_partitions_relation(self, rows, cut):
        rel = Relation.from_rows("r", PAIR, rows, page_bytes=128)
        kept = operators.restrict(rel, attr("g") < cut)
        dropped = operators.restrict(rel, ~(attr("g") < cut))
        assert kept.cardinality + dropped.cardinality == rel.cardinality
        merged = operators.append(kept, dropped, name="m")
        assert merged.same_rows_as(rel)

    @given(a=pair_rows, b=pair_rows)
    @settings(max_examples=40)
    def test_join_algorithms_agree(self, a, b):
        ra = Relation.from_rows("a", PAIR, a, page_bytes=128)
        rb = Relation.from_rows("b", PAIR, b, page_bytes=128)
        cond = attr("g").equals_attr("g")
        nl = operators.nested_loops_join(ra, rb, cond)
        hj = operators.hash_join(ra, rb, cond)
        sm = operators.sort_merge_join(ra, rb, cond)
        assert nl.same_rows_as(hj)
        assert nl.same_rows_as(sm)

    @given(a=pair_rows, b=pair_rows)
    @settings(max_examples=40)
    def test_join_cardinality_formula(self, a, b):
        ra = Relation.from_rows("a", PAIR, a, page_bytes=128)
        rb = Relation.from_rows("b", PAIR, b, page_bytes=128)
        out = operators.hash_join(ra, rb, attr("g").equals_attr("g"))
        expected = sum(
            sum(1 for y in b if y[1] == x[1]) for x in a
        )
        assert out.cardinality == expected

    @given(rows=pair_rows)
    def test_union_idempotent(self, rows):
        rel = Relation.from_rows("r", PAIR, rows, page_bytes=128)
        once = operators.union(rel, rel)
        assert once.same_rows_as(operators.distinct(rel))

    @given(rows=pair_rows)
    def test_sort_is_permutation_and_ordered(self, rows):
        rel = Relation.from_rows("r", PAIR, rows, page_bytes=128)
        out = sort_relation(rel, ["k", "g"], memory_pages=1)
        assert out.same_rows_as(rel)
        assert is_sorted(out, ["k", "g"])

    @given(rows=pair_rows)
    def test_project_dedup_cardinality(self, rows):
        rel = Relation.from_rows("r", PAIR, rows, page_bytes=128)
        out = operators.project(rel, ["g"])
        assert out.cardinality == len({r[1] for r in rows})


class TestPacketProperties:
    @given(
        ip=st.integers(0, 2**16),
        query=st.integers(0, 2**16),
        flush=st.booleans(),
        rows=st.integers(0, 6),
    )
    @settings(max_examples=50)
    def test_instruction_roundtrip_and_size(self, ip, query, flush, rows):
        page = Page(PAIR, 128)
        for i in range(rows):
            page.append((i, i))
        raw = page.to_bytes()
        packet = InstructionPacket(
            ip_id=ip,
            query_id=query,
            sender_ic=1,
            destination_ic=2,
            flush_when_done=flush,
            opcode="join",
            result_schema=PAIR,
            result_relation="r",
            operands=[SourceOperand("s", PAIR, raw)],
        )
        wire = packet.encode()
        assert InstructionPacket.decode(wire) == packet
        assert len(wire) == instruction_packet_bytes(PAIR, [(PAIR, len(raw))])

    @given(payload=st.binary(max_size=200))
    def test_result_packet_roundtrip_any_payload(self, payload):
        packet = ResultPacket(ic_id=1, relation_name="r", page_bytes=payload)
        assert ResultPacket.decode(packet.encode()) == packet
        assert len(packet.encode()) == result_packet_bytes(len(payload))


class TestWorkloadHelpers:
    @given(
        total=st.integers(0, 10_000),
        weights=st.lists(st.integers(1, 50), min_size=1, max_size=20),
    )
    def test_weighted_partition_sums(self, total, weights):
        parts = weighted_partition(total, weights)
        assert sum(parts) == total
        assert len(parts) == len(weights)
        if total >= len(weights):
            assert all(p >= 1 for p in parts)
