"""Heap files: row identifiers, delete/update, vacuum."""

import pytest

from repro.errors import PageError
from repro.relational.heapfile import HeapFile, RowId


@pytest.fixture
def heap(pair_schema):
    hf = HeapFile("h", pair_schema, page_bytes=64)
    hf.insert_many([(i, i * 10) for i in range(5)])
    return hf


class TestInsertFetch:
    def test_insert_returns_rid(self, pair_schema):
        hf = HeapFile("h", pair_schema, page_bytes=64)
        rid = hf.insert((1, 2))
        assert rid == RowId(0, 0)

    def test_fetch_by_rid(self, heap):
        assert heap.fetch(RowId(0, 0)) == (0, 0)

    def test_cardinality(self, heap):
        assert heap.cardinality == 5
        assert len(heap) == 5

    def test_pages_allocated_as_needed(self, heap):
        assert heap.page_count >= 2

    def test_fetch_bad_page_raises(self, heap):
        with pytest.raises(PageError):
            heap.fetch(RowId(99, 0))

    def test_fetch_bad_slot_raises(self, heap):
        with pytest.raises(PageError):
            heap.fetch(RowId(0, 99))

    def test_insert_validates_schema(self, heap):
        with pytest.raises(Exception):
            heap.insert(("no", 1))


class TestDeleteUpdate:
    def test_delete_returns_row(self, heap):
        assert heap.delete(RowId(0, 0)) == (0, 0)
        assert heap.cardinality == 4

    def test_deleted_slot_fetch_raises(self, heap):
        heap.delete(RowId(0, 0))
        with pytest.raises(PageError):
            heap.fetch(RowId(0, 0))

    def test_double_delete_raises(self, heap):
        heap.delete(RowId(0, 0))
        with pytest.raises(PageError):
            heap.delete(RowId(0, 0))

    def test_slot_reused_after_delete(self, heap):
        heap.delete(RowId(0, 0))
        rid = heap.insert((99, 99))
        assert rid == RowId(0, 0)

    def test_delete_where(self, heap):
        deleted = heap.delete_where(lambda row: row[0] % 2 == 0)
        assert deleted == 3
        assert sorted(r[0] for r in heap.scan()) == [1, 3]

    def test_update_in_place(self, heap):
        heap.update(RowId(0, 1), (100, 200))
        assert heap.fetch(RowId(0, 1)) == (100, 200)

    def test_update_dead_slot_raises(self, heap):
        heap.delete(RowId(0, 0))
        with pytest.raises(PageError):
            heap.update(RowId(0, 0), (1, 1))


class TestScansAndExport:
    def test_scan_skips_tombstones(self, heap):
        heap.delete(RowId(0, 1))
        assert sorted(r[0] for r in heap.scan()) == [0, 2, 3, 4]

    def test_scan_with_rids(self, heap):
        pairs = list(heap.scan_with_rids())
        assert len(pairs) == 5
        rid, row = pairs[0]
        assert heap.fetch(rid) == row

    def test_to_relation(self, heap):
        rel = heap.to_relation()
        assert rel.cardinality == 5
        assert sorted(r[0] for r in rel.rows()) == [0, 1, 2, 3, 4]

    def test_to_relation_after_deletes(self, heap):
        heap.delete_where(lambda row: row[0] < 3)
        assert heap.to_relation().cardinality == 2

    def test_vacuum_compacts(self, heap):
        heap.delete_where(lambda row: row[0] != 4)
        heap.vacuum()
        assert heap.cardinality == 1
        assert heap.page_count == 1
        assert heap.fetch(RowId(0, 0)) == (4, 40)
