"""Serving mode (repro.serve) and the latent-accounting bugfixes.

Covers the ISSUE 6 sweep: utilization over-accounting (now a sanitizer
assertion instead of a clamp), TrafficMeter level/elapsed edge cases,
LockManager double-release, and the serving subsystem itself — arrivals,
admission, SLO percentiles, byte-identical determinism, and the
open-loop overload tail.
"""

import json
import random

import pytest

from repro.direct.traffic import ALL_LEVELS, CONTROL, DISK_TO_CACHE, TrafficMeter
from repro.errors import ConcurrencyError, SimulationError, WorkloadError
from repro.faults import FaultPlan, FaultSpec
from repro.query import execute
from repro.ring.concurrency import LockManager, LockRequest
from repro.serve import (
    ADMIT,
    QUEUE,
    SHED,
    AdmissionQueue,
    BurstyArrivals,
    DiurnalArrivals,
    LatencyRecorder,
    PoissonArrivals,
    ServeConfig,
    SessionWorkload,
    make_arrivals,
    percentile,
    serve,
)
from repro.sim.engine import Simulator
from repro.sim.resources import checked_utilization
from repro.workload import benchmark_queries, generate_benchmark_database


# ---------------------------------------------------------------- accounting


class TestCheckedUtilization:
    def test_normal_fraction(self):
        sim = Simulator()
        assert checked_utilization(sim, 50.0, 100.0, 1, "t") == pytest.approx(0.5)

    def test_zero_elapsed_is_zero(self):
        sim = Simulator()
        assert checked_utilization(sim, 0.0, 0.0, 4, "t") == 0.0

    def test_float_dust_shaved_to_one(self):
        sim = Simulator()
        busy = 100.0 + 1e-12
        assert checked_utilization(sim, busy, 100.0, 1, "t") == 1.0

    def test_over_accounting_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="credited more than once"):
            checked_utilization(sim, 150.0, 100.0, 1, "t")


class TestUtilizationUnderFailover:
    """The original double-count: IC failover evaporated in-flight IP work
    but kept its full busy_ms credit, so busy could exceed elapsed * n.
    With settle-at-completion accounting the run must stay <= 1.0 and the
    (now assertion-backed) report must not raise."""

    def test_ic_failover_run_keeps_utilization_bounded(self):
        from tests.test_faults_failover import build_machine, join_tree

        from repro.relational.catalog import Catalog
        from repro.relational.relation import Relation
        from repro.relational.schema import DataType, Schema

        schema = Schema.build(("k", DataType.INT), ("g", DataType.INT))
        cat = Catalog()
        cat.register(
            Relation.from_rows(
                "big", schema, [(i, i % 8) for i in range(400)], page_bytes=128
            )
        )
        cat.register(
            Relation.from_rows(
                "small", schema, [(i, i % 8) for i in range(200)], page_bytes=128
            )
        )
        oracle = execute(join_tree(), cat)
        plan = FaultPlan(
            seed=77,
            specs=(
                FaultSpec(kind="ic_failure", rate=1.0, at_ms=30.0, max_failovers=3),
            ),
        )
        machine = build_machine(cat, plan)
        machine.submit(join_tree())
        report = machine.run()
        busy = sum(ip.busy_ms for ip in machine.ips)
        assert busy <= report.elapsed_ms * len(machine.ips) + 1e-6
        assert 0.0 <= report.ip_utilization <= 1.0
        assert report.results["fo"].same_rows_as(oracle)

    def test_direct_busy_never_exceeds_capacity(self, tiny_benchmark):
        from repro.direct.machine import run_benchmark

        queries = benchmark_queries(
            tiny_benchmark.catalog, tiny_benchmark.relation_names, selectivity=0.3
        )
        report = run_benchmark(
            tiny_benchmark.catalog, queries[:4], processors=3, page_bytes=2048
        )
        assert 0.0 <= report.processor_utilization <= 1.0


# ---------------------------------------------------------------- TrafficMeter


class TestTrafficMeter:
    def test_empty_levels_totals_zero(self):
        meter = TrafficMeter()
        meter.add(CONTROL, 100)
        assert meter.total([]) == 0

    def test_none_means_all_levels(self):
        meter = TrafficMeter()
        meter.add(CONTROL, 100)
        meter.add(DISK_TO_CACHE, 50)
        assert meter.total(None) == 150
        assert meter.total() == 150
        assert meter.total(ALL_LEVELS) == 150

    def test_zero_elapsed_bandwidth_is_zero(self):
        meter = TrafficMeter()
        meter.add(CONTROL, 10_000)
        assert meter.bandwidth_mbps(CONTROL, 0.0) == 0.0
        assert meter.bandwidth_mbps(ALL_LEVELS, -1.0) == 0.0


# ---------------------------------------------------------------- LockManager


class TestLockManagerRelease:
    def _request(self, name="q1"):
        return LockRequest(
            query_name=name, shared=frozenset({"r1"}), exclusive=frozenset()
        )

    def test_double_release_raises(self):
        locks = LockManager()
        assert locks.try_acquire(self._request())
        locks.release("q1")
        with pytest.raises(ConcurrencyError, match="holds no locks"):
            locks.release("q1")

    def test_release_unknown_query_raises(self):
        locks = LockManager()
        with pytest.raises(ConcurrencyError, match="holds no locks"):
            locks.release("never-admitted")

    def test_corrupted_table_raises(self):
        locks = LockManager()
        assert locks.try_acquire(self._request())
        del locks._held["r1"]  # simulate table corruption
        with pytest.raises(ConcurrencyError, match="corrupt"):
            locks.release("q1")


# ---------------------------------------------------------------- arrivals


class TestArrivals:
    def test_poisson_deterministic_and_in_window(self):
        proc = PoissonArrivals(100.0)
        a = proc.times(5000.0, random.Random(42))
        b = proc.times(5000.0, random.Random(42))
        assert a == b
        assert all(0.0 <= t < 5000.0 for t in a)
        assert a == sorted(a)
        # ~100 qps over 5 s -> ~500 arrivals.
        assert 350 < len(a) < 650

    def test_bursty_mean_rate_matches_nominal(self):
        proc = BurstyArrivals(100.0, on_ms=200.0, off_ms=800.0, off_level=0.2)
        times = proc.times(60_000.0, random.Random(7))
        mean_qps = len(times) / 60.0
        assert 70.0 < mean_qps < 130.0

    def test_diurnal_accepts_subset_of_peak(self):
        proc = DiurnalArrivals(50.0, period_ms=2000.0, depth=0.8)
        times = proc.times(20_000.0, random.Random(3))
        assert all(0.0 <= t < 20_000.0 for t in times)
        assert times == sorted(times)
        mean_qps = len(times) / 20.0
        assert 30.0 < mean_qps < 70.0

    def test_unknown_kind_raises(self):
        with pytest.raises(WorkloadError, match="unknown arrival process"):
            make_arrivals("lognormal", 10.0)

    def test_nonpositive_rate_raises(self):
        with pytest.raises(WorkloadError):
            PoissonArrivals(0.0)


# ---------------------------------------------------------------- admission


class TestAdmissionQueue:
    def test_admit_queue_shed_progression(self):
        q = AdmissionQueue(max_inflight=2, queue_limit=2, policy="fifo")
        assert q.offer("a") == ADMIT
        assert q.offer("b") == ADMIT
        assert q.offer("c") == QUEUE
        assert q.offer("d") == QUEUE
        assert q.offer("e") == SHED
        snap = q.snapshot()
        assert snap["arrived"] == 5
        assert snap["admitted_immediately"] == 2
        assert snap["queued"] == 2
        assert snap["shed"] == 1
        assert snap["peak_queue"] == 2

    def test_complete_hands_back_fifo_order(self):
        q = AdmissionQueue(max_inflight=1, queue_limit=4, policy="fifo")
        q.offer("first")
        q.offer("second")
        q.offer("third")
        assert q.complete() == "second"
        assert q.complete() == "third"
        assert q.complete() is None  # queue empty: slot freed
        assert q.inflight == 0

    def test_sjf_orders_by_priority(self):
        q = AdmissionQueue(max_inflight=1, queue_limit=4, policy="sjf")
        q.offer("running", priority=1.0)
        q.offer("slow", priority=90.0)
        q.offer("fast", priority=2.0)
        assert q.complete() == "fast"
        assert q.complete() == "slow"

    def test_unmatched_complete_raises(self):
        q = AdmissionQueue(max_inflight=1, queue_limit=0)
        with pytest.raises(WorkloadError, match="without a matching"):
            q.complete()


# ---------------------------------------------------------------- SLO math


class TestPercentiles:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 99.0) == 10.0
        assert percentile(values, 10.0) == 1.0
        assert percentile(values, 100.0) == 10.0

    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)

    def test_recorder_summary(self):
        rec = LatencyRecorder()
        for v in (5.0, 1.0, 3.0):
            rec.record(v)
        summary = rec.summary()
        assert summary["count"] == 3
        assert summary["p50_ms"] == 3.0
        assert summary["max_ms"] == 5.0
        with pytest.raises(ValueError):
            rec.record(-1.0)


# ---------------------------------------------------------------- sessions


class TestSessionWorkload:
    def test_unique_names_and_valid_trees(self):
        db = generate_benchmark_database(
            scale=0.02, seed=5, b_domain=25, page_bytes=2048
        )
        workload = SessionWorkload(db, users=50)
        rng = random.Random(9)
        names = set()
        for _ in range(40):
            tree, session, cost = workload.next_query(rng)
            assert tree.name not in names
            names.add(tree.name)
            assert 1 <= session <= 50
            assert cost >= 0.0
        assert workload.queries_built == 40

    def test_deterministic_given_same_rng(self):
        db = generate_benchmark_database(
            scale=0.02, seed=5, b_domain=25, page_bytes=2048
        )
        seq_a = [
            SessionWorkload(db).next_query(random.Random(1))[0].name
            for _ in range(3)
        ]
        workload = SessionWorkload(db)
        rng = random.Random(1)
        # Fresh workload + fresh rng reproduces the first draw exactly.
        assert workload.next_query(rng)[0].name == seq_a[0]


# ---------------------------------------------------------------- serve runs

QUICK = dict(
    rate_qps=25.0,
    duration_ms=1200.0,
    scale=0.02,
    b_domain=25,
    seed=11,
    processors=4,
    max_inflight=4,
    queue_limit=16,
)


class TestServeDeterminism:
    def test_same_seed_byte_identical_report(self):
        config = ServeConfig(machine="ring", **QUICK)
        a = json.dumps(serve(config), sort_keys=True)
        b = json.dumps(serve(config), sort_keys=True)
        assert a == b

    def test_different_seed_differs(self):
        base = dict(QUICK)
        base.pop("seed")
        a = serve(ServeConfig(machine="ring", seed=11, **base))
        b = serve(ServeConfig(machine="ring", seed=12, **base))
        assert json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True)

    @pytest.mark.parametrize("machine", ["direct", "dataflow"])
    def test_other_machines_complete_queries(self, machine):
        slo = serve(ServeConfig(machine=machine, **QUICK))
        assert slo["completed"] > 0
        assert slo["schema"] == "repro-serve/v1"
        assert slo["latency"]["p50_ms"] >= 0.0


class TestServeLoops:
    def test_closed_loop_bounds_inflight_to_users(self):
        config = ServeConfig(
            machine="ring",
            loop="closed",
            users=3,
            think_ms=40.0,
            duration_ms=1200.0,
            scale=0.02,
            b_domain=25,
            seed=11,
            processors=4,
        )
        slo = serve(config)
        assert slo["completed"] > 0
        assert slo["admission"]["peak_inflight"] <= 3

    def test_open_loop_overload_inflates_tail(self):
        base = dict(duration_ms=1200.0, scale=0.02, b_domain=25, seed=11,
                    processors=4, max_inflight=4, queue_limit=32)
        light = serve(ServeConfig(machine="ring", rate_qps=5.0, **base))
        heavy = serve(ServeConfig(machine="ring", rate_qps=120.0, **base))
        # Past the knee the queue dominates: the tail must diverge while
        # throughput stays bounded near capacity.
        assert heavy["latency"]["p99_ms"] > light["latency"]["p99_ms"]
        assert heavy["offered_qps"] > 2 * heavy["achieved_qps"]

    def test_overload_sheds(self):
        slo = serve(
            ServeConfig(machine="ring", rate_qps=200.0, duration_ms=1200.0,
                        scale=0.02, b_domain=25, seed=11, processors=4,
                        max_inflight=2, queue_limit=4)
        )
        assert slo["admission"]["shed"] > 0

    def test_bad_config_rejected(self):
        with pytest.raises(WorkloadError):
            serve(ServeConfig(machine="vax", **QUICK))
        with pytest.raises(WorkloadError):
            serve(ServeConfig(loop="sideways", **QUICK))


class TestServingExperiment:
    def test_quick_grid_has_expected_fields(self):
        from repro.experiments import serving

        result = serving.run(
            machines=("ring",),
            rates=(10.0, 80.0),
            duration_ms=900.0,
            scale=0.02,
            b_domain=25,
            seed=11,
            processors=4,
            max_inflight=4,
            queue_limit=16,
        )
        assert len(result.rows) == 2
        for row in result.rows:
            for field in ("machine", "rate_qps", "offered_qps", "achieved_qps",
                          "p50_ms", "p99_ms", "p999_ms", "shed", "util"):
                assert field in row
        light, heavy = result.rows
        assert heavy["p99_ms"] >= light["p99_ms"]
