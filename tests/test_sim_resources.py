"""FIFO server resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


def test_single_server_serializes():
    sim = Simulator()
    res = Resource(sim, "r", capacity=1)
    done = []
    res.submit(10.0, lambda: done.append(sim.now))
    res.submit(10.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [10.0, 20.0]


def test_two_servers_parallelize():
    sim = Simulator()
    res = Resource(sim, "r", capacity=2)
    done = []
    res.submit(10.0, lambda: done.append(sim.now))
    res.submit(10.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [10.0, 10.0]


def test_fifo_order():
    sim = Simulator()
    res = Resource(sim, "r", capacity=1)
    order = []
    for tag in "abc":
        res.submit(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Resource(Simulator(), "r", capacity=0)


def test_negative_service_rejected():
    res = Resource(Simulator(), "r")
    with pytest.raises(SimulationError):
        res.submit(-1.0)


def test_busy_and_queued_counters():
    sim = Simulator()
    res = Resource(sim, "r", capacity=1)
    res.submit(5.0)
    res.submit(5.0)
    assert res.busy == 1
    assert res.queued == 1
    assert res.idle == 0
    sim.run()
    assert res.busy == 0


def test_stats_jobs_and_busy_time():
    sim = Simulator()
    res = Resource(sim, "r")
    res.submit(3.0, nbytes=100)
    res.submit(4.0, nbytes=200)
    sim.run()
    assert res.stats.jobs_completed == 2
    assert res.stats.busy_time == 7.0
    assert res.stats.bytes_served == 300


def test_wait_time_accumulates():
    sim = Simulator()
    res = Resource(sim, "r")
    res.submit(10.0)
    res.submit(10.0)  # waits 10
    sim.run()
    assert res.stats.wait_time == 10.0
    assert res.stats.mean_wait() == 5.0


def test_utilization():
    sim = Simulator()
    res = Resource(sim, "r", capacity=2)
    res.submit(10.0)
    sim.run()
    assert res.stats.utilization(10.0, 2) == 0.5


def test_utilization_mid_service_counts_in_flight_time():
    # Bugfix: busy_time is only credited at completion, so a mid-run
    # utilization read used to see an idle server halfway through a job.
    sim = Simulator()
    res = Resource(sim, "r", capacity=1)
    res.submit(10.0)
    sim.run(until=5.0)
    assert res.in_flight_busy_ms() == 5.0
    # Busy the whole 5 ms so far; over a 10 ms window, half busy.
    assert res.utilization() == pytest.approx(1.0)
    assert res.utilization(10.0) == pytest.approx(0.5)
    sim.run()
    assert res.in_flight_busy_ms() == 0.0
    assert res.utilization(10.0) == pytest.approx(1.0)


def test_utilization_mid_service_multiple_servers():
    sim = Simulator()
    res = Resource(sim, "r", capacity=2)
    res.submit(10.0)
    res.submit(4.0)
    sim.run(until=6.0)
    # One job still in flight (6 ms elapsed), one completed (4 ms).
    assert res.in_flight_busy_ms() == pytest.approx(6.0)
    assert res.utilization() == pytest.approx((4.0 + 6.0) / (6.0 * 2))


def test_utilization_at_time_zero_is_zero():
    sim = Simulator()
    res = Resource(sim, "r")
    assert res.utilization() == 0.0


def test_peak_queue():
    sim = Simulator()
    res = Resource(sim, "r")
    for _ in range(4):
        res.submit(1.0)
    assert res.stats.peak_queue >= 3


def test_peak_queue_uncongested_is_zero():
    # Bugfix: the queue depth used to be sampled before dispatch, so a job
    # that went straight into a free server still counted as "queued" and
    # an uncongested resource reported peak_queue == 1.
    sim = Simulator()
    res = Resource(sim, "r")
    res.submit(1.0)
    sim.run()
    res.submit(1.0)
    sim.run()
    assert res.stats.peak_queue == 0


def test_peak_queue_counts_only_waiters():
    sim = Simulator()
    res = Resource(sim, "r", capacity=2)
    res.submit(5.0)
    res.submit(5.0)  # both enter free servers immediately
    assert res.stats.peak_queue == 0
    res.submit(5.0)  # this one actually waits
    assert res.stats.peak_queue == 1
    sim.run()
    assert res.stats.peak_queue == 1


def test_submission_inside_completion():
    sim = Simulator()
    res = Resource(sim, "r")
    done = []

    def chain():
        done.append(sim.now)
        if len(done) < 3:
            res.submit(2.0, chain)

    res.submit(2.0, chain)
    sim.run()
    assert done == [2.0, 4.0, 6.0]


def test_zero_service_time_completes():
    sim = Simulator()
    res = Resource(sim, "r")
    done = []
    res.submit(0.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]
