"""Fault plans: validation, serialization, and ambient arming."""

import pytest

from repro.errors import FaultError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec, active_plan, injecting
from repro.sim.engine import Simulator


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="gamma_ray")

    def test_rate_bounds(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="ring_drop", rate=1.5)
        with pytest.raises(FaultError):
            FaultSpec(kind="ring_drop", rate=-0.1)

    def test_negative_retries_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="disk_read_error", max_retries=-1)

    def test_nonpositive_delays_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="ring_drop", timeout_ms=0.0)
        with pytest.raises(FaultError):
            FaultSpec(kind="ring_corrupt", nak_delay_ms=-1.0)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="ring_drop", backoff=0.5)

    def test_kills_only_for_ip_kill(self):
        with pytest.raises(FaultError):
            FaultSpec(kind="ring_drop", kills=((1, 10.0),))
        spec = FaultSpec(kind="ip_kill", kills=((1, 10.0),))
        assert spec.armed

    def test_armed_semantics(self):
        assert not FaultSpec(kind="ring_drop", rate=0.0).armed
        assert FaultSpec(kind="ring_drop", rate=0.01).armed
        assert FaultSpec(kind="ip_kill", kills=((2, 5.0),)).armed

    def test_kills_normalized_from_json_lists(self):
        spec = FaultSpec(kind="ip_kill", kills=[[1, 10], [2, 20]])
        assert spec.kills == ((1, 10.0), (2, 20.0))

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind).kind == kind


class TestFaultPlan:
    def test_duplicate_kind_site_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(
                seed=1,
                specs=(
                    FaultSpec(kind="ring_drop", rate=0.1),
                    FaultSpec(kind="ring_drop", rate=0.2),
                ),
            )

    def test_same_kind_different_sites_allowed(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(kind="ring_drop", site="outer-ring", rate=0.1),
                FaultSpec(kind="ring_drop", site="inner-ring", rate=0.2),
            ),
        )
        assert len(plan.specs) == 2

    def test_exact_site_wins_over_wildcard(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(kind="ring_drop", site="*", rate=0.1),
                FaultSpec(kind="ring_drop", site="outer-ring", rate=0.5),
            ),
        )
        assert plan.spec("ring_drop", "outer-ring").rate == 0.5
        assert plan.spec("ring_drop", "inner-ring").rate == 0.1
        assert plan.spec("cache_poison", "anywhere") is None

    def test_armed_requires_a_striking_spec(self):
        assert not FaultPlan(seed=1).armed
        assert not FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.0),)).armed
        assert FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.1),)).armed

    def test_json_roundtrip(self):
        plan = FaultPlan(
            seed=42,
            specs=(
                FaultSpec(kind="ring_drop", rate=0.05, max_retries=3),
                FaultSpec(kind="ip_kill", kills=((1, 10.0), (2, 20.0))),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


class TestAmbientArming:
    def test_injecting_sets_and_restores(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.1),))
        assert active_plan() is None
        with injecting(plan) as armed:
            assert armed is plan
            assert active_plan() is plan
        assert active_plan() is None

    def test_nested_contexts_restore_outer(self):
        outer = FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.1),))
        inner = FaultPlan(seed=2, specs=(FaultSpec(kind="cache_poison", rate=0.2),))
        with injecting(outer):
            with injecting(inner):
                assert active_plan() is inner
            assert active_plan() is outer

    def test_simulator_binds_armed_plan(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.1),))
        with injecting(plan):
            sim = Simulator()
        assert sim.faults is not None
        assert sim.faults.plan is plan

    def test_simulator_skips_unarmed_plan(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.0),))
        with injecting(plan):
            sim = Simulator()
        assert sim.faults is None

    def test_explicit_plan_overrides_ambient(self):
        ambient = FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.1),))
        explicit = FaultPlan(seed=2, specs=(FaultSpec(kind="cache_poison", rate=0.3),))
        with injecting(ambient):
            sim = Simulator(faults=explicit)
        assert sim.faults.plan is explicit


class TestInjectorDraws:
    def test_decisions_depend_only_on_seed_kind_site(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec(kind="ring_drop", rate=0.5),))
        draws = []
        for _ in range(2):
            sim = Simulator(faults=plan)
            draws.append(
                [sim.faults.decide("ring_drop", "outer-ring", 0.5) for _ in range(64)]
            )
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_zero_rate_never_strikes_and_consumes_nothing(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec(kind="ring_drop", rate=0.5),))
        sim = Simulator(faults=plan)
        before = [sim.faults.decide("ring_drop", "a", 0.5) for _ in range(8)]
        sim2 = Simulator(faults=plan)
        assert not any(sim2.faults.decide("ring_drop", "a", 0.0) for _ in range(100))
        after = [sim2.faults.decide("ring_drop", "a", 0.5) for _ in range(8)]
        assert before == after

    def test_counters_and_snapshot(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec(kind="ring_drop", rate=0.5),))
        sim = Simulator(faults=plan)
        sim.faults.count("ring.drop", "outer-ring")
        sim.faults.count("ring.drop", "outer-ring")
        sim.faults.count("ring.nak", "inner-ring")
        assert sim.faults.total("ring.drop") == 2
        assert sim.faults.snapshot() == {
            "ring.drop[outer-ring]": 2,
            "ring.nak[inner-ring]": 1,
        }
