"""E13/E14 and the ``repro faults`` CLI: deterministic chaos harnesses.

The experiment grids fan out over the sweep runner, so the parallel runs
must be byte-identical to serial; the CLI must emit identical JSON for
identical seeded plans (the CI chaos-smoke determinism check).
"""

import json

from repro.cli import main
from repro.experiments import chaos_sweep, fault_tolerance
from repro.faults import FaultPlan, FaultSpec


class TestFaultToleranceExperiment:
    def test_degradation_curve(self):
        result = fault_tolerance.run(
            processors=4, kill_counts=(0, 2), kill_at_ms=100.0, scale=0.02, workers=1
        )
        assert [row["killed"] for row in result.rows] == [0, 2]
        assert all(row["all_correct"] for row in result.rows)
        assert result.rows[0]["slowdown"] == 1.0
        assert result.rows[1]["slowdown"] >= 1.0
        assert result.rows[1]["survivors"] == 2

    def test_parallel_byte_identical_to_serial(self):
        kwargs = dict(processors=4, kill_counts=(0, 2), kill_at_ms=100.0, scale=0.02)
        serial = fault_tolerance.run(workers=1, **kwargs)
        parallel = fault_tolerance.run(workers=2, **kwargs)
        assert serial.rows == parallel.rows


class TestChaosSweep:
    def test_every_cell_matches_oracle(self):
        result = chaos_sweep.run(
            machines=("ring", "direct"),
            rates=(0.0, 0.05),
            fault_classes=("ring_drop", "disk_read_error"),
            scale=0.02,
            workers=1,
            workloads=("read",),
        )
        # The ring machine owns a storage hierarchy too, so it gets both
        # fault classes; DIRECT only the storage one: (2 + 1) x 2 rates.
        assert len(result.rows) == 6
        assert all(row["all_correct"] for row in result.rows)
        faulted = [row for row in result.rows if row["rate"] > 0]
        assert all(row["recoveries"] > 0 for row in faulted)
        clean = [row for row in result.rows if row["rate"] == 0]
        assert all(row["recoveries"] == 0 for row in clean)

    def test_write_cells_match_oracle(self):
        # The write grid runs the mixed update stream with the WAL armed;
        # soft faults may abort and retry transactions, but the recovered
        # store must stay byte-identical to the interpreter replay.
        result = chaos_sweep.run(
            machines=("ring", "direct"),
            rates=(0.0, 0.05),
            fault_classes=("ring_drop", "disk_read_error"),
            scale=0.02,
            workers=1,
            workloads=("write",),
        )
        assert len(result.rows) == 6
        assert all(row["workload"] == "write" for row in result.rows)
        assert all(row["all_correct"] for row in result.rows)

    def test_parallel_byte_identical_to_serial(self):
        kwargs = dict(
            machines=("ring",),
            rates=(0.0, 0.05),
            fault_classes=("ring_corrupt",),
            scale=0.02,
        )
        serial = chaos_sweep.run(workers=1, **kwargs)
        parallel = chaos_sweep.run(workers=2, **kwargs)
        assert serial.rows == parallel.rows

    def test_run_faulted_benchmark_counters(self):
        plan = FaultPlan(seed=2027, specs=(FaultSpec(kind="ring_drop", rate=0.05),))
        cell = chaos_sweep.run_faulted_benchmark("ring", plan, scale=0.02)
        assert cell["all_correct"]
        assert any(key.startswith("ring.retransmit") for key in cell["counters"])

    def test_unknown_machine_rejected(self):
        import pytest

        from repro.errors import FaultError

        plan = FaultPlan(seed=1, specs=(FaultSpec(kind="ring_drop", rate=0.05),))
        with pytest.raises(FaultError):
            chaos_sweep.run_faulted_benchmark("vax", plan)


class TestFaultsCli:
    def test_faults_command_writes_json(self, tmp_path):
        out = tmp_path / "faults.json"
        code = main(
            [
                "faults",
                "--machine",
                "ring",
                "--scale",
                "0.02",
                "--drop",
                "0.05",
                "--corrupt",
                "0.03",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["all_correct"] is True
        assert payload["machine"] == "ring"
        assert any(key.startswith("ring.retransmit") for key in payload["counters"])

    def test_faults_command_deterministic_bytes(self, tmp_path):
        args = ["faults", "--machine", "direct", "--scale", "0.02", "--disk-error", "0.1"]
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert main(args + ["--sanitize", "--out", str(out_a)]) == 0
        assert main(args + ["--sanitize", "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_faults_command_accepts_plan_file(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            specs=(
                FaultSpec(kind="ring_drop", rate=0.05),
                FaultSpec(kind="ip_kill", kills=((1, 50.0),)),
            ),
        )
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(plan.to_json())
        out = tmp_path / "out.json"
        code = main(
            ["faults", "--machine", "ring", "--scale", "0.02", "--plan", str(plan_file),
             "--out", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["all_correct"] is True
        assert payload["plan"]["seed"] == 9
