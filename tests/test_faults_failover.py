"""Plan-driven processor and controller failures (requirement 5).

``ip_kill`` fail-stops IPs mid-run (the watchdog path proven by
test_ring_fault_tolerance.py); ``ic_failure`` fail-stops a query's
controller and makes the MC tear the query down and re-activate it on a
fresh controller.  Every recovery must reproduce the oracle exactly.
"""

import pytest

from repro.errors import FaultError
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.ring.machine import RingMachine

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Relation.from_rows("big", SCHEMA, [(i, i % 8) for i in range(400)], page_bytes=128)
    )
    cat.register(
        Relation.from_rows("small", SCHEMA, [(i, i % 8) for i in range(200)], page_bytes=128)
    )
    return cat


def join_tree(name="fo"):
    return (
        scan("big")
        .restrict(attr("k") < 300)
        .equijoin(scan("small").restrict(attr("k") < 150), "g", "g")
        .tree(name)
    )


def build_machine(catalog, plan, processors=6, fault_tolerant=True, **kwargs):
    defaults = dict(
        controllers=8, page_bytes=128, cache_bytes=32 * 128,
        fault_tolerant=fault_tolerant, watchdog_interval_ms=50.0,
    )
    defaults.update(kwargs)
    if plan is None:
        return RingMachine(catalog, processors=processors, **defaults)
    with injecting(plan):
        return RingMachine(catalog, processors=processors, **defaults)


class TestPlannedIpKills:
    def test_explicit_kill_schedule(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = FaultPlan(
            seed=3,
            specs=(FaultSpec(kind="ip_kill", kills=((2, 30.0), (4, 300.0))),),
        )
        machine = build_machine(catalog, plan)
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        assert sorted(machine.failed_ips) == [2, 4]
        assert machine.sim.faults.total("ip.kill") == 2

    def test_plan_kills_match_direct_schedule(self, catalog):
        # A FaultPlan kill schedule is the same machine-level mechanism as
        # schedule_ip_failure — identical clocks, identical rows.
        oracle = execute(join_tree(), catalog)

        plan = FaultPlan(seed=3, specs=(FaultSpec(kind="ip_kill", kills=((2, 30.0),)),))
        planned = build_machine(catalog, plan)
        tree_a = join_tree()
        planned.submit(tree_a)
        report_a = planned.run()

        direct = build_machine(catalog, None)
        direct.schedule_ip_failure(2, 30.0)
        tree_b = join_tree()
        direct.submit(tree_b)
        report_b = direct.run()

        assert report_a.results[tree_a.name].same_rows_as(oracle)
        assert report_a.elapsed_ms == report_b.elapsed_ms
        assert report_a.events_processed == report_b.events_processed

    def test_rate_draws_leave_a_survivor(self, catalog):
        oracle = execute(join_tree(), catalog)
        plan = FaultPlan(
            seed=3,
            specs=(FaultSpec(kind="ip_kill", rate=1.0, window_ms=400.0),),
        )
        machine = build_machine(catalog, plan, processors=4)
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        assert len(machine.failed_ips) == 3  # rate 1.0, but one IP must survive

    def test_requires_fault_tolerant_mode(self, catalog):
        plan = FaultPlan(seed=3, specs=(FaultSpec(kind="ip_kill", kills=((1, 10.0),)),))
        machine = build_machine(catalog, plan, fault_tolerant=False)
        machine.submit(join_tree())
        with pytest.raises(FaultError, match="fault_tolerant"):
            machine.run()


class TestIcFailover:
    def _plan(self, rate=1.0, at_ms=40.0, max_failovers=3, seed=3):
        return FaultPlan(
            seed=seed,
            specs=(
                FaultSpec(
                    kind="ic_failure", rate=rate, at_ms=at_ms, max_failovers=max_failovers
                ),
            ),
        )

    def test_failover_reruns_query_oracle_exact(self, catalog):
        oracle = execute(join_tree(), catalog)
        machine = build_machine(catalog, self._plan())
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle)
        inj = machine.sim.faults
        assert inj.total("ic.failure") > 0
        assert inj.total("ic.failover") == inj.total("ic.failure")

    def test_failovers_bounded_by_plan(self, catalog):
        max_failovers = 2
        machine = build_machine(catalog, self._plan(max_failovers=max_failovers))
        tree = join_tree()
        machine.submit(tree)
        report = machine.run()
        oracle = execute(join_tree(), catalog)
        assert report.results[tree.name].same_rows_as(oracle)
        # rate=1.0 strikes every activation until the bound stops re-arming.
        assert machine._failovers[tree.name] == max_failovers

    def test_concurrent_queries_all_survive_failover(self, catalog):
        builders = [
            lambda: scan("big").restrict(attr("g") == 2).tree("q1"),
            lambda: join_tree("q2"),
            lambda: scan("small").project(["g"]).tree("q3"),
        ]
        oracles = {}
        for b in builders:
            t = b()
            oracles[t.name] = execute(t, catalog)
        machine = build_machine(catalog, self._plan(max_failovers=1), processors=6)
        for b in builders:
            machine.submit(b())
        report = machine.run()
        for name, oracle in oracles.items():
            assert report.results[name].same_rows_as(oracle), name
        assert machine.sim.faults.total("ic.failover") >= 1

    def test_requires_fault_tolerant_mode(self, catalog):
        machine = build_machine(catalog, self._plan(), fault_tolerant=False)
        machine.submit(join_tree())
        with pytest.raises(FaultError, match="fault_tolerant"):
            machine.run()

    def test_same_seed_same_failover_run(self, catalog):
        def one_run():
            machine = build_machine(catalog, self._plan())
            tree = join_tree()
            machine.submit(tree)
            report = machine.run()
            return (
                report.elapsed_ms,
                report.events_processed,
                machine.sim.faults.snapshot(),
            )

        assert one_run() == one_run()
