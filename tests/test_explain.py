"""The EXPLAIN facility."""

import pytest

from repro.relational.predicate import attr
from repro.query.builder import scan
from repro.query.explain import explain


@pytest.fixture
def plan(join_catalog):
    tree = (
        scan("left_rel")
        .restrict(attr("k") < 60)
        .equijoin(scan("right_rel"), "grp", "grp")
        .project(["k", "k_1"])
        .tree("explained")
    )
    return explain(tree, join_catalog, page_bytes=128)


def test_every_node_has_a_line(plan):
    # scan, restrict, scan, join, project = 5 nodes
    assert len(plan.lines) == 5


def test_depths_follow_tree_shape(plan):
    assert plan.lines[0].depth == 0  # project (root first: preorder)
    assert max(line.depth for line in plan.lines) >= 2


def test_render_mentions_rows_and_pages(plan):
    text = plan.render()
    assert "rows" in text and "pages" in text and "explained" in text


def test_project_dedup_warning(plan):
    assert any("single IP" in w for w in plan.warnings)


def test_join_role_advice_when_inner_larger(join_catalog):
    # Restrict the outer hard so the unrestricted inner is clearly larger.
    tree = (
        scan("left_rel")
        .restrict(attr("k") < 5)
        .equijoin(scan("right_rel"), "grp", "grp")
        .tree("lopsided")
    )
    plan = explain(tree, join_catalog, page_bytes=128)
    assert any("swapping the roles" in w for w in plan.warnings)


def test_no_role_advice_when_roles_good(join_catalog):
    tree = (
        scan("left_rel")
        .equijoin(scan("right_rel").restrict(attr("k") < 110), "grp", "grp")
        .tree("good")
    )
    plan = explain(tree, join_catalog, page_bytes=128)
    assert not any("swapping the roles" in w for w in plan.warnings)


def test_single_outer_page_warning(join_catalog):
    tree = (
        scan("left_rel")
        .restrict(attr("k") < 3)
        .equijoin(scan("right_rel").restrict(attr("k") < 3), "grp", "grp")
        .tree("tiny")
    )
    plan = explain(tree, join_catalog, page_bytes=128)
    assert any("one processor" in w for w in plan.warnings)


def test_estimates_match_cost_model(plan):
    root_line = plan.lines[0]
    assert root_line.estimate is not None
    assert root_line.estimate.rows >= 0


def test_validates_tree(join_catalog):
    from repro.errors import QueryTreeError

    tree = scan("ghost").tree("bad")
    with pytest.raises(QueryTreeError):
        explain(tree, join_catalog)
