"""Randomized end-to-end equivalence: random query trees, three engines.

The strongest property in the suite: for randomly generated (but valid)
query trees over randomly generated catalogs, the DIRECT machine, the
ring machine, and the MIT-model data-flow machine must all produce
exactly the oracle's rows.  Trees are generated with a seeded RNG (not
hypothesis) because each case is expensive; 25 seeds x 3 engines gives
broad shape coverage deterministically.
"""

import random

import pytest

from repro.dataflow.machine import DataflowMachine
from repro.direct import scheduler
from repro.direct.machine import DirectMachine
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import NodeBuilder, scan

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT))

PAGE_BYTES = 128


def random_catalog(rng: random.Random) -> Catalog:
    catalog = Catalog()
    for name in ("t1", "t2", "t3"):
        rows = rng.randint(0, 120)
        groups = rng.randint(1, 12)
        catalog.register(
            Relation.from_rows(
                name,
                SCHEMA,
                [(i, rng.randrange(groups)) for i in range(rows)],
                page_bytes=PAGE_BYTES,
            )
        )
    return catalog


def random_operand(rng: random.Random, catalog: Catalog) -> NodeBuilder:
    name = rng.choice(catalog.names)
    builder = scan(name)
    if rng.random() < 0.7:
        cut = rng.randint(0, 130)
        builder = builder.restrict(attr("k") < cut)
    return builder


def random_tree(rng: random.Random, catalog: Catalog):
    builder = random_operand(rng, catalog)
    joins = rng.randint(0, 2)
    for _ in range(joins):
        builder = builder.equijoin(random_operand(rng, catalog), "g", "g")
    roll = rng.random()
    if roll < 0.25:
        builder = builder.restrict(attr("k") < rng.randint(0, 130))
    elif roll < 0.45:
        keep = ["k", "g"] if rng.random() < 0.5 else ["g"]
        builder = builder.project(keep, eliminate_duplicates=rng.random() < 0.7)
    elif roll < 0.55 and joins == 0:
        builder = builder.union(random_operand(rng, catalog))
    from repro.query.tree import ScanNode

    if isinstance(builder.node, ScanNode):
        # Machines execute operators, not bare scans; guarantee at least one.
        builder = builder.restrict(attr("k") >= 0)
    tree = builder.tree("rand")
    tree.validate(catalog)
    return tree


SEEDS = list(range(25))


@pytest.mark.parametrize("seed", SEEDS)
def test_direct_machine_random_tree(seed):
    rng = random.Random(seed)
    catalog = random_catalog(rng)
    state = rng.getstate()
    oracle = execute(random_tree(rng, catalog), catalog)
    rng.setstate(state)
    tree = random_tree(rng, catalog)
    machine = DirectMachine(
        catalog,
        processors=rng.randint(1, 5),
        granularity=rng.choice([scheduler.PAGE, scheduler.RELATION, scheduler.TUPLE]),
        page_bytes=PAGE_BYTES,
        cache_bytes=16 * PAGE_BYTES,
    )
    machine.submit(tree)
    report = machine.run()
    assert report.results[tree.name].same_rows_as(oracle), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_ring_machine_random_tree(seed):
    rng = random.Random(1000 + seed)
    catalog = random_catalog(rng)
    state = rng.getstate()
    oracle = execute(random_tree(rng, catalog), catalog)
    rng.setstate(state)
    tree = random_tree(rng, catalog)
    machine = RingMachineFactory(rng, catalog)
    machine.submit(tree)
    report = machine.run()
    assert report.results[tree.name].same_rows_as(oracle), seed


def RingMachineFactory(rng, catalog):
    from repro.ring.machine import RingMachine

    return RingMachine(
        catalog,
        processors=rng.randint(1, 5),
        controllers=8,
        page_bytes=PAGE_BYTES,
        cache_bytes=24 * PAGE_BYTES,
        ic_memory_pages=rng.choice([2, 8, 32]),
        direct_ip_routing=rng.random() < 0.4,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_dataflow_machine_random_tree(seed):
    rng = random.Random(2000 + seed)
    catalog = random_catalog(rng)
    state = rng.getstate()
    oracle = execute(random_tree(rng, catalog), catalog)
    rng.setstate(state)
    tree = random_tree(rng, catalog)
    machine = DataflowMachine(
        catalog,
        processors=rng.randint(1, 5),
        granularity=rng.choice(["relation", "page", "tuple"]),
        page_bytes=PAGE_BYTES,
    )
    machine.submit(tree)
    report = machine.run()
    assert report.results[tree.name].same_rows_as(oracle), seed
