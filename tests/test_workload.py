"""The Section 3.2 benchmark: database generator and query mix."""

import pytest

from repro import hw
from repro.errors import WorkloadError
from repro.workload.generator import (
    BENCHMARK_SCHEMA,
    benchmark_relation_specs,
    generate_benchmark_database,
)
from repro.workload.queries import BENCHMARK_MIX, benchmark_queries, verify_benchmark_mix
from repro.workload.zipf import ZipfGenerator, shuffled_range, weighted_partition

import random


class TestGenerators:
    def test_zipf_range(self):
        z = ZipfGenerator(50, s=1.0)
        rng = random.Random(1)
        draws = [z.draw(rng) for _ in range(500)]
        assert all(1 <= d <= 50 for d in draws)

    def test_zipf_is_skewed(self):
        z = ZipfGenerator(50, s=1.2)
        rng = random.Random(1)
        draws = [z.draw(rng) for _ in range(2000)]
        assert draws.count(1) > draws.count(25) * 3

    def test_zipf_zero_skew_roughly_uniform(self):
        z = ZipfGenerator(10, s=0.0)
        rng = random.Random(1)
        draws = [z.draw(rng) for _ in range(5000)]
        counts = [draws.count(v) for v in range(1, 11)]
        assert max(counts) < 2 * min(counts)

    def test_zipf_validates_args(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(5, s=-1)

    def test_shuffled_range_is_permutation(self):
        values = shuffled_range(random.Random(3), 100)
        assert sorted(values) == list(range(100))

    def test_weighted_partition_sums_exactly(self):
        parts = weighted_partition(1000, [1, 2, 3, 4])
        assert sum(parts) == 1000

    def test_weighted_partition_proportional(self):
        parts = weighted_partition(1000, [1, 3])
        assert parts[1] > 2.5 * parts[0]

    def test_weighted_partition_no_zero_parts(self):
        parts = weighted_partition(100, [100, 1, 1])
        assert all(p >= 1 for p in parts)


class TestDatabase:
    def test_fifteen_relations(self, tiny_benchmark):
        assert len(tiny_benchmark.specs) == hw.BENCHMARK_NUM_RELATIONS
        assert len(tiny_benchmark.catalog) == 15

    def test_full_scale_hits_55_megabytes(self):
        specs = benchmark_relation_specs(scale=1.0)
        total = sum(s.data_bytes for s in specs)
        assert total == pytest.approx(hw.BENCHMARK_DB_BYTES, rel=0.01)

    def test_record_width_near_100_bytes(self):
        assert BENCHMARK_SCHEMA.record_width == 96

    def test_deterministic_under_seed(self):
        a = generate_benchmark_database(scale=0.02, seed=5)
        b = generate_benchmark_database(scale=0.02, seed=5)
        for name in a.relation_names:
            assert a.catalog.get(name).same_rows_as(b.catalog.get(name))

    def test_different_seed_differs(self):
        a = generate_benchmark_database(scale=0.02, seed=5)
        b = generate_benchmark_database(scale=0.02, seed=6)
        assert not all(
            a.catalog.get(n).same_rows_as(b.catalog.get(n)) for n in a.relation_names
        )

    def test_keys_unique_per_relation(self, tiny_benchmark):
        for rel in tiny_benchmark.catalog:
            keys = [r[0] for r in rel.rows()]
            assert len(set(keys)) == len(keys)

    def test_b_domain_respected(self, tiny_benchmark):
        for rel in tiny_benchmark.catalog:
            assert all(0 <= r[2] < 25 for r in rel.rows())

    def test_scale_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            generate_benchmark_database(scale=1e-7)

    def test_bad_b_domain_rejected(self):
        with pytest.raises(WorkloadError):
            generate_benchmark_database(scale=0.02, b_domain=0)

    def test_relation_sizes_spread(self, tiny_benchmark):
        sizes = [s.rows for s in tiny_benchmark.specs]
        assert max(sizes) > 3 * min(sizes)


class TestQueryMix:
    def test_ten_queries(self, tiny_queries):
        assert len(tiny_queries) == 10

    def test_mix_matches_paper(self, tiny_queries):
        verify_benchmark_mix(tiny_queries)  # raises on mismatch

    def test_mix_totals(self):
        queries = sum(n for _, _, n in BENCHMARK_MIX)
        joins = sum(j * n for j, _, n in BENCHMARK_MIX)
        restricts = sum(r * n for _, r, n in BENCHMARK_MIX)
        assert (queries, joins, restricts) == (10, 19, 28)

    def test_all_queries_validate(self, tiny_benchmark, tiny_queries):
        for tree in tiny_queries:
            tree.validate(tiny_benchmark.catalog)

    def test_every_query_has_distinct_relations(self, tiny_queries):
        for tree in tiny_queries:
            leaves = tree.leaf_relations()
            assert len(set(leaves)) == len(leaves)

    def test_selectivity_is_exact(self, tiny_benchmark):
        trees = benchmark_queries(
            tiny_benchmark.catalog, tiny_benchmark.relation_names, selectivity=0.5
        )
        from repro.query import execute

        q1 = trees[0]
        rel = tiny_benchmark.catalog.get(q1.leaf_relations()[0])
        out = execute(q1, tiny_benchmark.catalog)
        assert out.cardinality == pytest.approx(rel.cardinality * 0.5, abs=1)

    def test_bad_selectivity_rejected(self, tiny_benchmark):
        with pytest.raises(WorkloadError):
            benchmark_queries(tiny_benchmark.catalog, tiny_benchmark.relation_names, selectivity=0)

    def test_verify_mix_rejects_wrong_shape(self, tiny_benchmark, tiny_queries):
        with pytest.raises(WorkloadError):
            verify_benchmark_mix(tiny_queries[:9])

    def test_too_few_relations_rejected(self, tiny_benchmark):
        with pytest.raises(WorkloadError):
            benchmark_queries(tiny_benchmark.catalog, tiny_benchmark.relation_names[:3])
