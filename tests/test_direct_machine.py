"""The DIRECT-style machine: oracle equivalence, granularities, reports."""

import pytest

from repro.direct import scheduler
from repro.direct.machine import DirectMachine, run_benchmark
from repro.errors import MachineError
from repro.relational.catalog import Catalog
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.query import execute
from repro.query.builder import delete_from, scan


@pytest.fixture
def oracle_results(tiny_benchmark, tiny_queries):
    return {t.name: execute(t, tiny_benchmark.catalog) for t in tiny_queries}


def fresh_queries(tiny_benchmark):
    from repro.workload import benchmark_queries

    return benchmark_queries(
        tiny_benchmark.catalog, tiny_benchmark.relation_names, selectivity=0.3
    )


class TestOracleEquivalence:
    @pytest.mark.parametrize("granularity", [scheduler.PAGE, scheduler.RELATION, scheduler.TUPLE])
    def test_benchmark_matches_oracle(self, tiny_benchmark, oracle_results, granularity):
        report = run_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            granularity=granularity,
            page_bytes=2048,
        )
        for name, oracle in oracle_results.items():
            assert report.results[name].same_rows_as(oracle), name

    def test_single_processor_matches_oracle(self, tiny_benchmark, oracle_results):
        report = run_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=1,
            page_bytes=2048,
        )
        for name, oracle in oracle_results.items():
            assert report.results[name].same_rows_as(oracle), name

    def test_tiny_cache_still_correct(self, tiny_benchmark, oracle_results):
        report = run_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            page_bytes=2048,
            cache_bytes=1,  # clamped to the documented floor
        )
        for name, oracle in oracle_results.items():
            assert report.results[name].same_rows_as(oracle), name

    def test_one_memory_cell(self, tiny_benchmark, oracle_results):
        report = run_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=3,
            page_bytes=2048,
            memory_cells=1,
        )
        for name, oracle in oracle_results.items():
            assert report.results[name].same_rows_as(oracle), name


class TestReports:
    def test_elapsed_positive_and_finite(self, tiny_benchmark):
        report = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=4, page_bytes=2048
        )
        assert 0 < report.elapsed_ms < float("inf")

    def test_every_query_has_a_time(self, tiny_benchmark):
        report = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=4, page_bytes=2048
        )
        assert len(report.query_times) == 10
        assert all(t is not None and t > 0 for t in report.query_times.values())

    def test_traffic_nonzero(self, tiny_benchmark):
        report = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=4, page_bytes=2048
        )
        assert report.traffic["disk_to_cache"] > 0
        assert report.interconnect_bytes > 0

    def test_bandwidth_helper(self, tiny_benchmark):
        report = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=4, page_bytes=2048
        )
        assert report.bandwidth_mbps() > 0
        assert report.bandwidth_mbps("disk_to_cache") >= 0

    def test_utilization_in_unit_interval(self, tiny_benchmark):
        report = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=4, page_bytes=2048
        )
        assert 0 <= report.processor_utilization <= 1

    def test_more_processors_not_slower(self, tiny_benchmark):
        slow = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=1, page_bytes=2048
        )
        fast = run_benchmark(
            tiny_benchmark.catalog, fresh_queries(tiny_benchmark), processors=8, page_bytes=2048
        )
        assert fast.elapsed_ms <= slow.elapsed_ms * 1.05

    def test_tuple_granularity_moves_more_bytes(self, tiny_benchmark):
        page = run_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            granularity=scheduler.PAGE,
            page_bytes=2048,
        )
        tup = run_benchmark(
            tiny_benchmark.catalog,
            fresh_queries(tiny_benchmark),
            processors=4,
            granularity=scheduler.TUPLE,
            page_bytes=2048,
        )
        assert tup.interconnect_bytes > 1.5 * page.interconnect_bytes


class TestValidationAndErrors:
    def test_no_queries_rejected(self, tiny_benchmark):
        machine = DirectMachine(tiny_benchmark.catalog, processors=2, page_bytes=2048)
        with pytest.raises(MachineError):
            machine.run()

    def test_zero_processors_rejected(self, tiny_benchmark):
        with pytest.raises(MachineError):
            DirectMachine(tiny_benchmark.catalog, processors=0)

    def test_bad_memory_cells_rejected(self, tiny_benchmark):
        with pytest.raises(MachineError):
            DirectMachine(tiny_benchmark.catalog, memory_cells=3)

    def test_bare_scan_rejected(self, pair_schema):
        catalog = Catalog()
        catalog.register(Relation.from_rows("r", pair_schema, [(1, 1)], page_bytes=64))
        machine = DirectMachine(catalog, processors=1, page_bytes=64)
        with pytest.raises(MachineError):
            machine.submit(scan("r").tree())

    def test_delete_executes_on_direct(self, pair_schema):
        # Write packets used to be ring-only; DIRECT runs them now
        # (serially — it has no lock manager; see DESIGN.md §14).
        catalog = Catalog()
        catalog.register(
            Relation.from_rows("r", pair_schema, [(1, 1), (2, 2)], page_bytes=64)
        )
        machine = DirectMachine(catalog, processors=1, page_bytes=64)
        machine.submit(delete_from("r", attr("k") == 1, name="del"))
        machine.run()
        assert list(catalog.get("r").rows()) == [(2, 2)]


class TestSmallQueries:
    def test_empty_restrict_result(self, join_catalog):
        machine = DirectMachine(join_catalog, processors=2, page_bytes=128)
        tree = scan("left_rel").restrict(attr("k") > 10_000).tree("none")
        machine.submit(tree)
        report = machine.run()
        assert report.results["none"].cardinality == 0

    def test_join_with_empty_inner(self, join_catalog):
        machine = DirectMachine(join_catalog, processors=2, page_bytes=128)
        tree = scan("left_rel").equijoin(scan("empty_rel"), "grp", "grp").tree("je")
        machine.submit(tree)
        report = machine.run()
        assert report.results["je"].cardinality == 0

    def test_join_with_empty_outer(self, join_catalog):
        machine = DirectMachine(join_catalog, processors=2, page_bytes=128)
        tree = scan("empty_rel").equijoin(scan("right_rel"), "grp", "grp").tree("ej")
        machine.submit(tree)
        report = machine.run()
        assert report.results["ej"].cardinality == 0

    def test_project_on_machine(self, join_catalog):
        machine = DirectMachine(join_catalog, processors=2, page_bytes=128)
        tree = scan("left_rel").project(["grp"]).tree("p")
        machine.submit(tree)
        report = machine.run()
        assert report.results["p"].cardinality == 10

    def test_union_on_machine(self, join_catalog):
        machine = DirectMachine(join_catalog, processors=2, page_bytes=128)
        tree = scan("left_rel").union(scan("right_rel")).tree("u")
        machine.submit(tree)
        report = machine.run()
        oracle = execute(
            scan("left_rel").union(scan("right_rel")).tree(), join_catalog
        )
        assert report.results["u"].same_rows_as(oracle)

    def test_restrict_over_join(self, join_catalog):
        builder = lambda: (
            scan("left_rel")
            .equijoin(scan("right_rel"), "grp", "grp")
            .restrict(attr("k") < 30)
            .tree("roj")
        )
        machine = DirectMachine(join_catalog, processors=3, page_bytes=128)
        machine.submit(builder())
        report = machine.run()
        oracle = execute(builder(), join_catalog)
        assert report.results["roj"].same_rows_as(oracle)
