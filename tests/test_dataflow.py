"""The MIT-model data-flow machine: cells, programs, execution."""

import pytest

from repro.dataflow.cell import Cell, OperandSlot
from repro.dataflow.machine import DataflowMachine, run_dataflow
from repro.dataflow.program import compile_query
from repro.errors import MachineError
from repro.relational.catalog import Catalog
from repro.relational.page import Page, pack_rows_into_pages
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.query import execute
from repro.query.builder import scan
from repro.query.tree import JoinNode, RestrictNode, ScanNode

PAIR = Schema.build(("k", DataType.INT), ("g", DataType.INT))


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.register(
        Relation.from_rows("ra", PAIR, [(i, i % 6) for i in range(80)], page_bytes=128)
    )
    cat.register(
        Relation.from_rows("rb", PAIR, [(i, i % 6) for i in range(50)], page_bytes=128)
    )
    return cat


def page_of(rows):
    page = Page(PAIR, 128)
    for row in rows:
        page.append(row)
    return page


class TestOperandSlot:
    def test_deliver_and_finish(self):
        slot = OperandSlot("x", PAIR)
        assert slot.deliver(page_of([(1, 1)])) == 0
        assert slot.page_count == 1
        assert slot.row_count == 1
        slot.finish()
        with pytest.raises(MachineError):
            slot.deliver(page_of([(2, 2)]))


class TestCellEnabling:
    def make_restrict_cell(self):
        node = RestrictNode(ScanNode("ra"), attr("g") == 1)
        return Cell(node, [("in", PAIR)], PAIR)

    def make_join_cell(self):
        node = JoinNode(ScanNode("ra"), ScanNode("rb"), attr("g").equals_attr("g"))
        return Cell(node, [("outer", PAIR), ("inner", PAIR)], PAIR.concat_unique(PAIR))

    def test_page_level_enables_on_first_page(self):
        cell = self.make_restrict_cell()
        assert not cell.enabled("page")
        cell.operands[0].deliver(page_of([(1, 1)]))
        assert cell.enabled("page")
        assert not cell.enabled("relation")

    def test_relation_level_needs_completion(self):
        cell = self.make_restrict_cell()
        cell.operands[0].deliver(page_of([(1, 1)]))
        cell.operands[0].finish()
        assert cell.enabled("relation")

    def test_join_needs_both_slots(self):
        cell = self.make_join_cell()
        cell.operands[0].deliver(page_of([(1, 1)]))
        assert not cell.enabled("page")
        cell.operands[1].deliver(page_of([(2, 1)]))
        assert cell.enabled("page")

    def test_page_firings_are_cross_product_for_join(self):
        cell = self.make_join_cell()
        for _ in range(2):
            cell.operands[0].deliver(page_of([(1, 1)]))
        for _ in range(3):
            cell.operands[1].deliver(page_of([(2, 1)]))
        assert len(cell.ready_firings("page")) == 6

    def test_firings_not_repeated(self):
        cell = self.make_restrict_cell()
        cell.operands[0].deliver(page_of([(1, 1)]))
        assert len(cell.ready_firings("page")) == 1
        assert cell.ready_firings("page") == []
        cell.operands[0].deliver(page_of([(2, 2)]))
        assert len(cell.ready_firings("page")) == 1

    def test_relation_level_fires_once(self):
        cell = self.make_restrict_cell()
        cell.operands[0].deliver(page_of([(1, 1)]))
        cell.operands[0].finish()
        assert len(cell.ready_firings("relation")) == 1
        assert cell.ready_firings("relation") == []

    def test_has_unfired_is_pure(self):
        cell = self.make_restrict_cell()
        cell.operands[0].deliver(page_of([(1, 1)]))
        assert cell.has_unfired("page")
        assert cell.has_unfired("page")  # still there — no consumption
        assert len(cell.ready_firings("page")) == 1
        assert not cell.has_unfired("page")

    def test_unknown_granularity_rejected(self):
        with pytest.raises(MachineError):
            self.make_restrict_cell().enabled("quark")


class TestProgramCompilation:
    def test_base_operands_preloaded(self, catalog):
        program = compile_query(
            scan("ra").restrict(attr("g") == 0).tree("q"), catalog, page_bytes=128
        )
        cell = program.root
        assert cell.operands[0].complete
        assert cell.operands[0].page_count == len(
            pack_rows_into_pages(PAIR, list(catalog.get("ra").rows()), 128)
        )

    def test_interior_edges_become_destinations(self, catalog):
        tree = (
            scan("ra").restrict(attr("g") == 0)
            .equijoin(scan("rb").restrict(attr("g") == 0), "g", "g")
            .tree("q")
        )
        program = compile_query(tree, catalog, page_bytes=128)
        join_cell = program.root
        producers = [c for c in program.cells if c is not join_cell]
        assert {d[0] for p in producers for d in p.destinations} == {join_cell}
        assert sorted(d[1] for p in producers for d in p.destinations) == [0, 1]

    def test_scan_only_tree_rejected(self, catalog):
        with pytest.raises(MachineError):
            compile_query(scan("ra").tree("q"), catalog)


class TestMachineExecution:
    def shapes(self):
        return {
            "restrict": lambda: scan("ra").restrict(attr("g") < 3).tree("q"),
            "project": lambda: scan("ra").project(["g"]).tree("q"),
            "join": lambda: (
                scan("ra").restrict(attr("k") < 40)
                .equijoin(scan("rb").restrict(attr("k") < 30), "g", "g")
                .tree("q")
            ),
            "union": lambda: (
                scan("ra").restrict(attr("g") == 0).union(scan("rb").restrict(attr("g") == 0)).tree("q")
            ),
            "restrict-over-join": lambda: (
                scan("ra").equijoin(scan("rb"), "g", "g").restrict(attr("k") < 10).tree("q")
            ),
        }

    @pytest.mark.parametrize("granularity", ["relation", "page", "tuple"])
    def test_all_shapes_match_oracle(self, catalog, granularity):
        for name, builder in self.shapes().items():
            oracle = execute(builder(), catalog)
            machine = DataflowMachine(
                catalog, processors=3, granularity=granularity, page_bytes=128
            )
            tree = builder()
            machine.submit(tree)
            report = machine.run()
            assert report.results[tree.name].same_rows_as(oracle), (name, granularity)

    def test_relation_level_fires_once_per_node(self, catalog):
        tree = (
            scan("ra").restrict(attr("k") < 40)
            .equijoin(scan("rb").restrict(attr("k") < 30), "g", "g")
            .tree("q")
        )
        report = run_dataflow(catalog, [tree], granularity="relation", page_bytes=128)
        assert report.firings == 3  # one per operator node

    def test_page_level_fires_more(self, catalog):
        t1 = scan("ra").restrict(attr("k") < 40).tree("q")
        page_report = run_dataflow(catalog, [t1], granularity="page", page_bytes=128)
        t2 = scan("ra").restrict(attr("k") < 40).tree("q")
        rel_report = run_dataflow(catalog, [t2], granularity="relation", page_bytes=128)
        assert page_report.firings > rel_report.firings

    def test_tuple_level_arbitration_blowup(self, catalog):
        def tree():
            return (
                scan("ra").equijoin(scan("rb"), "g", "g").tree("q")
            )

        page = run_dataflow(catalog, [tree()], granularity="page", page_bytes=128)
        tup = run_dataflow(catalog, [tree()], granularity="tuple", page_bytes=128)
        assert tup.arbitration_bytes > 5 * page.arbitration_bytes
        assert tup.elapsed_ms >= page.elapsed_ms

    def test_more_processors_help_page_level(self, catalog):
        def tree():
            return scan("ra").equijoin(scan("rb"), "g", "g").tree("q")

        one = run_dataflow(catalog, [tree()], processors=1, granularity="page", page_bytes=128)
        many = run_dataflow(catalog, [tree()], processors=8, granularity="page", page_bytes=128)
        assert many.elapsed_ms < one.elapsed_ms

    def test_relation_level_ignores_extra_processors_per_node(self, catalog):
        # A single restrict fires once; processors beyond 1 cannot help.
        def tree():
            return scan("ra").restrict(attr("g") < 3).tree("q")

        one = run_dataflow(catalog, [tree()], processors=1, granularity="relation", page_bytes=128)
        many = run_dataflow(catalog, [tree()], processors=8, granularity="relation", page_bytes=128)
        assert many.elapsed_ms == pytest.approx(one.elapsed_ms)

    def test_concurrent_queries(self, catalog):
        builders = [
            lambda: scan("ra").restrict(attr("g") == 0).tree("a"),
            lambda: scan("rb").restrict(attr("g") == 1).tree("b"),
            lambda: scan("ra").equijoin(scan("rb"), "g", "g").tree("c"),
        ]
        oracles = {}
        for b in builders:
            t = b()
            oracles[t.name] = execute(t, catalog)
        machine = DataflowMachine(catalog, processors=4, page_bytes=128)
        for b in builders:
            machine.submit(b())
        report = machine.run()
        for name, oracle in oracles.items():
            assert report.results[name].same_rows_as(oracle), name

    def test_query_times_recorded(self, catalog):
        tree = scan("ra").restrict(attr("g") == 0).tree("q")
        report = run_dataflow(catalog, [tree], page_bytes=128)
        assert report.query_times["q"] > 0

    def test_empty_result_query(self, catalog):
        tree = scan("ra").restrict(attr("k") > 10_000).tree("q")
        report = run_dataflow(catalog, [tree], page_bytes=128)
        assert report.results["q"].cardinality == 0

    def test_no_queries_rejected(self, catalog):
        with pytest.raises(MachineError):
            DataflowMachine(catalog).run()

    def test_bad_granularity_rejected(self, catalog):
        with pytest.raises(MachineError):
            DataflowMachine(catalog, granularity="atom")
