#!/usr/bin/env python3
"""A guided tour of the Section 4 ring machine and its wire protocol.

Shows (1) the Figure 4.3-4.5 packets as real bytes, (2) the broadcast
join protocol in action — IRC vectors, missed pages, flush-when-done —
and (3) the outer-ring load the paper sized its shift-register technology
against.

Run:  python examples/ring_protocol.py
"""

from repro import Catalog, DataType, Relation, RingMachine, Schema, attr, execute, scan
from repro.ring.packets import (
    ControlMessage,
    ControlPacket,
    InstructionPacket,
    ResultPacket,
    SourceOperand,
)


def show_packets() -> None:
    """Encode/decode each Figure 4.3-4.5 packet and show the wire bytes."""
    schema = Schema.build(("k", DataType.INT), ("v", DataType.FLOAT))
    from repro.relational.page import Page

    page = Page(schema, 256)
    for i in range(5):
        page.append((i, i * 0.5))

    packet = InstructionPacket(
        ip_id=3,
        query_id=17,
        sender_ic=1,
        destination_ic=2,
        flush_when_done=False,
        opcode="restrict",
        result_relation="filtered",
        result_schema=schema,
        operands=[SourceOperand("source", schema, page.to_bytes())],
    )
    wire = packet.encode()
    back = InstructionPacket.decode(wire)
    print(f"instruction packet (Fig 4.3): {len(wire)} bytes on the ring")
    print(f"  opcode={back.opcode} ip={back.ip_id} query={back.query_id} "
          f"flush={back.flush_when_done} operands={len(back.operands)}")

    result = ResultPacket(ic_id=2, relation_name="filtered", page_bytes=page.to_bytes())
    print(f"result packet (Fig 4.4): {len(result.encode())} bytes; "
          f"round-trip ok: {ResultPacket.decode(result.encode()) == result}")

    control = ControlPacket(ic_id=1, sender_ip=3, message=ControlMessage.REQUEST_INNER, argument=4)
    print(f"control packet (Fig 4.5): {control.wire_bytes} bytes; "
          f"message={ControlPacket.decode(control.encode()).message.name}")


def run_broadcast_join() -> None:
    """A join big enough that inner pages are broadcast and IPs miss some."""
    schema = Schema.build(("k", DataType.INT), ("grp", DataType.INT), ("pad", DataType.CHAR, 40))
    catalog = Catalog()
    catalog.register(
        Relation.from_rows(
            "outer_rel", schema, [(i, i % 30, "") for i in range(600)], page_bytes=512
        )
    )
    catalog.register(
        Relation.from_rows(
            "inner_rel", schema, [(i, i % 30, "") for i in range(400)], page_bytes=512
        )
    )

    tree = (
        scan("outer_rel")
        .restrict(attr("k") < 300)
        .equijoin(scan("inner_rel").restrict(attr("k") < 200), "grp", "grp")
        .tree("broadcast-join")
    )
    oracle = execute(tree, catalog)

    machine = RingMachine(
        catalog, processors=6, controllers=6, page_bytes=512, cache_bytes=64 * 1024
    )
    tree2 = (
        scan("outer_rel")
        .restrict(attr("k") < 300)
        .equijoin(scan("inner_rel").restrict(attr("k") < 200), "grp", "grp")
        .tree("broadcast-join")
    )
    machine.submit(tree2)
    report = machine.run()
    result = report.results[tree2.name]
    assert result.same_rows_as(oracle)
    print(f"\nbroadcast join: {result.cardinality} rows (matches oracle)")
    print(f"  simulated time: {report.elapsed_ms:.1f} ms")
    print(f"  outer ring: {report.outer_ring_bytes} bytes "
          f"({report.outer_ring_mbps:.2f} Mbps average), "
          f"{report.broadcasts} inner-page broadcasts")
    print(f"  inner ring: {report.inner_ring_bytes} bytes of MC control traffic")
    print(f"  IP utilization: {report.ip_utilization:.0%}")


def main() -> None:
    show_packets()
    run_broadcast_join()


if __name__ == "__main__":
    main()
