#!/usr/bin/env python3
"""The paper's granularity study at laptop scale (Figure 3.1 + Section 3.3).

Runs the ten-query benchmark at relation-, page-, and tuple-level
granularity on the DIRECT simulator, prints the execution-time table, and
closes with the Section 3.3 analytic traffic comparison.

Run:  python examples/granularity_study.py            (quick, scale=0.3)
      python examples/granularity_study.py --full     (paper scale)
"""

import sys

from repro.direct import scheduler
from repro.direct.machine import run_benchmark
from repro.experiments import section_3_3
from repro.workload import benchmark_queries, generate_benchmark_database


def main() -> None:
    full = "--full" in sys.argv
    scale = 1.0 if full else 0.3
    db = generate_benchmark_database(scale=scale, seed=1979, page_bytes=4096)
    print(
        f"benchmark database: {len(db.specs)} relations, "
        f"{db.catalog.total_rows} rows, {db.catalog.total_bytes / 2**20:.2f} MB "
        f"(scale={scale})"
    )

    print(f"\n{'procs':>5}  {'relation':>10}  {'page':>10}  {'tuple':>10}  {'rel/page':>8}")
    for processors in (5, 15, 30, 50):
        times = {}
        for granularity in (scheduler.RELATION, scheduler.PAGE, scheduler.TUPLE):
            trees = benchmark_queries(db.catalog, db.relation_names, selectivity=0.25)
            report = run_benchmark(
                db.catalog,
                trees,
                processors=processors,
                granularity=granularity,
                page_bytes=4096,
                cache_bytes=2 * 1024 * 1024,
            )
            times[granularity.key] = report.elapsed_ms
        print(
            f"{processors:>5}  {times['relation']:>9.0f}ms  {times['page']:>9.0f}ms  "
            f"{times['tuple']:>9.0f}ms  {times['relation'] / times['page']:>8.2f}"
        )

    print(
        "\npaper: 'the page-level granularity generally outperforms "
        "relational-level granularity by a factor of about two'"
    )

    print("\n" + section_3_3.run().render())
    print(
        f"\npaper anchor: tuple-level needs ~10x the arbitration bandwidth "
        f"of 1KB pages (measured: {section_3_3.paper_anchor_ratio():.1f}x)"
    )


if __name__ == "__main__":
    main()
