#!/usr/bin/env python3
"""Quickstart: build a database, write a query tree, run it three ways.

The same query executes on (1) the reference interpreter, (2) the
DIRECT-style centralized machine, and (3) the Section 4 ring machine —
and all three produce identical rows.

Run:  python examples/quickstart.py
"""

from repro import (
    Catalog,
    DataType,
    DirectMachine,
    Relation,
    RingMachine,
    Schema,
    attr,
    execute,
    scan,
)


def build_database() -> Catalog:
    """A tiny employees/departments database."""
    catalog = Catalog()

    emp_schema = Schema.build(
        ("emp_id", DataType.INT),
        ("name", DataType.CHAR, 16),
        ("dept_id", DataType.INT),
        ("salary", DataType.FLOAT),
    )
    employees = Relation.from_rows(
        "employees",
        emp_schema,
        [
            (i, f"emp{i:03d}", i % 8, 30_000.0 + (i * 137) % 50_000)
            for i in range(400)
        ],
        page_bytes=1024,
    )
    catalog.register(employees)

    dept_schema = Schema.build(
        ("dept_id", DataType.INT),
        ("dept_name", DataType.CHAR, 16),
        ("floor", DataType.INT),
    )
    departments = Relation.from_rows(
        "departments",
        dept_schema,
        [(d, f"dept{d}", d % 3) for d in range(8)],
        page_bytes=1024,
    )
    catalog.register(departments)
    return catalog


def build_query():
    """Well-paid employees joined with their second-floor departments."""
    return (
        scan("employees")
        .restrict(attr("salary") > 60_000.0)
        .equijoin(scan("departments").restrict(attr("floor") == 2), "dept_id", "dept_id")
        .project(["name", "dept_name"])
        .tree("well-paid-floor-2")
    )


def main() -> None:
    catalog = build_database()

    # 1. Reference interpreter — the correctness oracle.
    oracle = execute(build_query(), catalog)
    print(f"oracle: {oracle.cardinality} rows, schema {oracle.schema.names}")

    # 2. DIRECT-style machine (centralized control, page-level data flow).
    direct = DirectMachine(catalog, processors=4, page_bytes=1024)
    tree = build_query()
    direct.submit(tree)
    direct_report = direct.run()
    direct_result = direct_report.results[tree.name]
    print(
        f"DIRECT: {direct_result.cardinality} rows in "
        f"{direct_report.elapsed_ms:.1f} simulated ms "
        f"({direct_report.bandwidth_mbps():.2f} Mbps interconnect)"
    )
    assert direct_result.same_rows_as(oracle), "DIRECT answer differs from oracle!"

    # 3. Ring machine (distributed control, Section 4 protocol).
    ring = RingMachine(catalog, processors=4, controllers=8, page_bytes=1024)
    tree = build_query()
    ring.submit(tree)
    ring_report = ring.run()
    ring_result = ring_report.results[tree.name]
    print(
        f"ring:   {ring_result.cardinality} rows in "
        f"{ring_report.elapsed_ms:.1f} simulated ms "
        f"(outer ring {ring_report.outer_ring_mbps:.2f} Mbps, "
        f"{ring_report.broadcasts} broadcasts)"
    )
    assert ring_result.same_rows_as(oracle), "ring answer differs from oracle!"

    print("\nall three engines agree.")
    for row in list(oracle.rows())[:5]:
        print("  ", row)


if __name__ == "__main__":
    main()
