#!/usr/bin/env python3
"""The MIT-model data-flow machine (Figure 2.2) executing a query tree.

Shows a query compiled into memory cells, fired through the arbitration
network at each granularity, and the resulting concurrency/traffic
trade-off the paper's Section 3 argues from.

Run:  python examples/dataflow_machine.py
"""

from repro import Catalog, DataType, Relation, Schema, attr, execute, scan
from repro.dataflow import DataflowMachine, compile_query


def build_catalog() -> Catalog:
    schema = Schema.build(("k", DataType.INT), ("g", DataType.INT), ("pad", DataType.CHAR, 32))
    catalog = Catalog()
    catalog.register(
        Relation.from_rows("orders", schema, [(i, i % 20, "") for i in range(800)], 1024)
    )
    catalog.register(
        Relation.from_rows("items", schema, [(i, i % 20, "") for i in range(500)], 1024)
    )
    return catalog


def build_query():
    return (
        scan("orders")
        .restrict(attr("k") < 400)
        .equijoin(scan("items").restrict(attr("k") < 300), "g", "g")
        .tree("orders-items")
    )


def main() -> None:
    catalog = build_catalog()
    oracle = execute(build_query(), catalog)
    print(f"oracle: {oracle.cardinality} rows\n")

    # Show the compiled cell graph once.
    program = compile_query(build_query(), catalog, page_bytes=1024)
    print("compiled data-flow program:")
    for cell in program.cells:
        dests = [f"cell{d.cell_id}.slot{s}" for d, s in cell.destinations] or ["host"]
        slots = [f"{op.name}({op.page_count}p{'*' if op.complete else ''})" for op in cell.operands]
        print(f"  {cell}: operands {slots} -> {', '.join(dests)}")
    print("  (* = operand preloaded and complete at start)\n")

    print(f"{'granularity':<10} {'time ms':>9} {'firings':>8} {'arbitration':>12} {'Mbps':>7}")
    for granularity in ("relation", "page", "tuple"):
        machine = DataflowMachine(
            catalog, processors=8, granularity=granularity, page_bytes=1024
        )
        tree = build_query()
        machine.submit(tree)
        report = machine.run()
        assert report.results[tree.name].same_rows_as(oracle), granularity
        print(
            f"{granularity:<10} {report.elapsed_ms:>9.1f} {report.firings:>8} "
            f"{report.arbitration_bytes:>11}B {report.arbitration_mbps():>7.1f}"
        )

    print(
        "\nthe paper's Section 3 argument, measured: relation-level caps "
        "concurrency\n(one firing per node), tuple-level floods the "
        "arbitration network, and\npage-level balances both."
    )


if __name__ == "__main__":
    main()
