#!/usr/bin/env python3
"""Multi-user execution with concurrency control (requirement 1, Section 4.0).

"A database machine ... must be able to support the simultaneous
execution of multiple queries from several users" — under "careful control
of which queries are permitted to execute concurrently."

This example submits a mixed read/update workload to the ring machine:
readers share relations, a deleter takes an exclusive lock, and the MC's
FIFO admission serializes exactly the conflicting pairs.  The final
catalog state is checked against serial oracle execution.

Run:  python examples/multiuser_concurrency.py
"""

from repro import Catalog, DataType, Relation, RingMachine, Schema, attr, execute, scan
from repro.query.builder import delete_from


def build_catalog(page_bytes: int = 512) -> Catalog:
    schema = Schema.build(
        ("id", DataType.INT), ("grp", DataType.INT), ("amount", DataType.FLOAT)
    )
    catalog = Catalog()
    catalog.register(
        Relation.from_rows(
            "accounts", schema, [(i, i % 10, float(i * 3)) for i in range(500)], page_bytes
        )
    )
    catalog.register(
        Relation.from_rows(
            "groups", schema, [(g, g, 0.0) for g in range(10)], page_bytes
        )
    )
    catalog.register(Relation("audit", schema, page_bytes=page_bytes))
    return catalog


def build_workload():
    """Two readers, one append, one delete — the delete conflicts."""
    return [
        scan("accounts").restrict(attr("amount") > 600.0).tree("reader-1"),
        scan("accounts")
        .equijoin(scan("groups"), "grp", "grp")
        .restrict(attr("grp") < 5)
        .tree("reader-2"),
        scan("accounts").restrict(attr("grp") == 3).append_into("audit").tree("auditor"),
        delete_from("accounts", attr("amount") < 60.0, name="deleter"),
    ]


def main() -> None:
    # Serial oracle: execute the workload one query at a time.
    oracle_catalog = build_catalog()
    oracle_results = {}
    for tree in build_workload():
        oracle_results[tree.name] = execute(tree, oracle_catalog)

    # Concurrent run on the ring machine.
    catalog = build_catalog()
    machine = RingMachine(catalog, processors=6, controllers=10, page_bytes=512)
    runs = [machine.submit(tree) for tree in build_workload()]
    report = machine.run()

    print(f"{len(runs)} queries, {report.queries_admitted} admitted, "
          f"finished at t={report.elapsed_ms:.1f} ms\n")
    print(f"{'query':<10} {'rows':>6} {'response ms':>12}")
    for name, elapsed in sorted(report.query_times.items()):
        rows = report.results[name].cardinality
        print(f"{name:<10} {rows:>6} {elapsed:>12.1f}")

    # The MC's relation locks must have produced a serializable history:
    # with FIFO all-at-once locking, the equivalent serial order is the
    # submission order, which is exactly how the oracle ran.
    for name, oracle in oracle_results.items():
        if name in ("auditor", "deleter"):
            continue
        assert report.results[name].same_rows_as(oracle), f"{name} diverged"
    assert catalog.get("accounts").same_rows_as(oracle_catalog.get("accounts"))
    assert catalog.get("audit").same_rows_as(oracle_catalog.get("audit"))
    print("\nfinal state matches the serial (submission-order) execution.")


if __name__ == "__main__":
    main()
