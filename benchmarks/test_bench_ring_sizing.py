"""E7 / Section 4.1: ring technology sizing at measured demand.

Shape assertion: the 40 Mbps TTL shift-register ring is feasible at every
configuration up to 50 IPs (the paper's claim), and the linear
extrapolation of the heaviest per-IP demand keeps the TTL limit in the
tens of IPs — the regime where the paper places its "~50".
"""

from repro import hw
from benchmarks.conftest import BENCH_SCALE, BENCH_SELECTIVITY, run_once
from repro.experiments import ring_sizing_exp

IPS = (5, 25, 50)


def test_bench_ring_sizing(benchmark):
    result = run_once(
        benchmark,
        lambda: ring_sizing_exp.run(ips=IPS, scale=BENCH_SCALE, selectivity=BENCH_SELECTIVITY),
    )
    benchmark.extra_info["table"] = result.render()
    benchmark.extra_info["ttl_limit"] = result.parameters["ttl_ring_ip_limit_linear"]

    ttl = hw.OUTER_RING_TTL.name
    assert all(row[ttl] for row in result.rows)
    # Every measured point also fits the bigger technologies.
    assert all(row[hw.OUTER_RING_FIBER.name] for row in result.rows)
    assert all(row[hw.OUTER_RING_ECL.name] for row in result.rows)
    # The extrapolated TTL limit is a real bound, larger than the largest
    # configuration we verified directly.
    assert result.parameters["ttl_ring_ip_limit_linear"] >= 50
