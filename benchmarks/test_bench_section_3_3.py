"""E2 / Section 3.3: tuple- vs page-level arbitration traffic (analytic).

Shape assertions are the paper's exact claims: 10x at 1,000-byte pages,
another order of magnitude at 10,000-byte pages.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import section_3_3


def test_bench_section_3_3(benchmark):
    result = run_once(benchmark, section_3_3.run)
    benchmark.extra_info["table"] = result.render()

    no_overhead = [r for r in result.rows if r["overhead"] == 0]
    by_page = {r["page_bytes"]: r for r in no_overhead if r["granularity"] == "page"}

    # "the bandwidth requirements of the page approach is 1/10 that of
    # the tuple level approach"
    assert by_page[1_000]["ratio_vs_tuple"] == pytest.approx(10.0)
    # "increasing the page size to 10,000 bytes will obviously decrease
    # the ... requirements by another order of magnitude"
    assert by_page[10_000]["ratio_vs_tuple"] == pytest.approx(100.0)
    # The paper's headline anchor function.
    assert section_3_3.paper_anchor_ratio() == pytest.approx(10.0)
