"""E13 (extension): graceful degradation under processor failures.

Shape assertions: every run remains exactly correct, and slowdown grows
monotonically (within tolerance) as more processors are disabled — the
machine degrades, never breaks.
"""

from benchmarks.conftest import run_once
from repro.experiments import fault_tolerance

KILLS = (0, 2, 4)


def test_bench_fault_tolerance(benchmark):
    result = run_once(
        benchmark,
        lambda: fault_tolerance.run(processors=6, kill_counts=KILLS, scale=0.08),
    )
    benchmark.extra_info["table"] = result.render()

    assert all(result.column("all_correct"))
    slowdowns = result.column("slowdown")
    assert slowdowns[0] == 1.0
    # Losing processors never speeds the machine up (small tolerance for
    # scheduling noise at tiny scales).
    assert all(b >= a * 0.98 for a, b in zip(slowdowns, slowdowns[1:])), slowdowns
