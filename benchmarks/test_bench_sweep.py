"""Benchmarks of the sweep harness itself.

Times the serial and parallel (2-worker) executions of a small Figure 3.1
grid, plus the bare event-loop throughput the ``repro bench`` sim_core
entry reports.  On a multi-core host the parallel run should approach the
serial time divided by the worker count; on a single-CPU host it mostly
measures fan-out overhead, so the benchmarks assert correctness (identical
output), not speedup.
"""

from benchmarks.conftest import BENCH_SELECTIVITY, run_once

from repro.experiments import figure_3_1
from repro.sim.engine import Simulator

#: Small grid: 2 processor counts x 2 granularities = 4 sweep points.
SWEEP_KWARGS = dict(processors=(2, 4), scale=0.05, selectivity=BENCH_SELECTIVITY)


def test_bench_sweep_serial(benchmark):
    result = run_once(benchmark, lambda: figure_3_1.run(**SWEEP_KWARGS, workers=1))
    assert len(result.rows) == 2


def test_bench_sweep_parallel_two_workers(benchmark):
    serial = figure_3_1.run(**SWEEP_KWARGS, workers=1)
    result = run_once(benchmark, lambda: figure_3_1.run(**SWEEP_KWARGS, workers=2))
    assert result.render() == serial.render()


def test_bench_sim_core_event_loop(benchmark):
    events = 100_000

    def spin():
        sim = Simulator()
        for i in range(events):
            sim.schedule(float(i % 97), lambda: None)
        sim.run()
        return sim

    sim = run_once(benchmark, spin)
    assert sim.events_processed == events
