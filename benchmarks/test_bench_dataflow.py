"""E6 / Figure 2.2 model: granularities on the MIT-style machine.

Shape assertions: relation-level granularity is slowest (one firing per
node caps concurrency), page-level is fastest, and tuple-level floods the
arbitration network by an order of magnitude.
"""

from benchmarks.conftest import run_once
from repro.experiments import dataflow_machine

PROCESSORS = (8,)


def test_bench_dataflow_granularities(benchmark):
    result = run_once(
        benchmark,
        lambda: dataflow_machine.run(processors=PROCESSORS, scale=0.08),
    )
    benchmark.extra_info["table"] = result.render()

    row = result.rows[0]
    assert row["relation_ms"] > row["page_ms"], row
    assert row["tuple_ms"] >= row["page_ms"], row
    assert row["tuple_traffic_blowup"] > 5.0, row
