"""E10 (extension): distributed vs centralized control + IP->IP routing.

Shape assertions: the ring machine (distributed arbitration/distribution)
stays within a small factor of the centralized DIRECT organization —
distributing control does not wreck performance, which is the bet
Section 4 makes — and direct IP->IP routing changes outer-ring traffic by
a bounded amount in either direction (the paper's open tradeoff).
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SELECTIVITY, run_once
from repro.experiments import ring_vs_direct

IPS = (10, 25)


def test_bench_ring_vs_direct(benchmark):
    result = run_once(
        benchmark,
        lambda: ring_vs_direct.run(ips=IPS, scale=BENCH_SCALE, selectivity=BENCH_SELECTIVITY),
    )
    benchmark.extra_info["table"] = result.render()

    for row in result.rows:
        # Distributed control holds up against centralized control.
        assert row["ring_ms"] < 3.0 * row["direct_ms"], row
        # Routing is a tradeoff, not a collapse: traffic moves by less
        # than half in either direction, and time stays comparable.
        assert abs(row["routing_byte_delta"]) < 0.5, row
        assert row["ring_routed_ms"] < 2.0 * row["ring_ms"], row
