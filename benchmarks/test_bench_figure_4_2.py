"""E3 / Figure 4.2: average bandwidth by level vs number of IPs (ring
machine, 16K operands, LSI-11 IPs, IBM 3330 drives).

Shape assertions: bandwidth grows with IPs and saturates; the paper's
anchors hold — a 40 Mbps TTL ring suffices through 50 IPs and 100 Mbps
covers the largest configuration swept.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SELECTIVITY, run_once
from repro.experiments import figure_4_2

IPS = (5, 25, 50)


def test_bench_figure_4_2(benchmark):
    result = run_once(
        benchmark,
        lambda: figure_4_2.run(ips=IPS, scale=BENCH_SCALE, selectivity=BENCH_SELECTIVITY),
    )
    benchmark.extra_info["table"] = result.render()

    mbps = result.column("outer_ring_mbps")
    # Demand grows with processors...
    assert mbps[-1] > mbps[0]
    # ...and the paper's ring technologies carry it.
    assert all(result.column("fits_40mbps")), mbps
    # Execution time shrinks as IPs are added.
    times = result.column("elapsed_ms")
    assert times[-1] < times[0]
    # The inner (control) ring stays in its 1-2 Mbps budget.
    assert all(v <= 2.0 for v in result.column("inner_ring_mbps"))
