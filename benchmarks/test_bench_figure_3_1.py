"""E1 / Figure 3.1: page- vs relation-level granularity (DIRECT simulator).

Regenerates the paper's headline comparison.  Shape assertions: execution
time falls (or holds) as processors grow, and page-level beats
relation-level — approaching the paper's "factor of about two" once the
machine has enough processors.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SELECTIVITY, run_once
from repro.experiments import figure_3_1

PROCESSORS = (5, 15, 30)


def test_bench_figure_3_1(benchmark):
    result = run_once(
        benchmark,
        lambda: figure_3_1.run(
            processors=PROCESSORS, scale=BENCH_SCALE, selectivity=BENCH_SELECTIVITY
        ),
    )
    benchmark.extra_info["table"] = result.render()

    ratios = result.column("ratio")
    page_times = result.column("page_ms")

    # Page-level never loses.
    assert all(r >= 0.95 for r in ratios), ratios
    # The gap widens with processors (relation-level's stalls surface).
    assert ratios[-1] >= ratios[0]
    # With enough processors the paper's ~2x factor appears (allow slack
    # at reduced benchmark scale).
    assert ratios[-1] > 1.3, ratios
    # Times improve with processors.
    assert page_times[-1] <= page_times[0]
