"""Benchmark configuration.

Each benchmark regenerates one paper artifact (see DESIGN.md §4) and
asserts its *shape* — who wins, by roughly what factor — not absolute
numbers.  Simulated runs are deterministic, so every benchmark uses
``benchmark.pedantic(rounds=1)``.

Scale: benchmarks default to a reduced database (REPRO_BENCH_SCALE=0.25)
so the whole suite finishes in a couple of minutes; set
``REPRO_BENCH_SCALE=1.0`` to rerun at the paper's full 5.5 MB (the
EXPERIMENTS.md numbers were recorded that way).
"""

import os

import pytest

#: Workload scale for simulator-backed benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

#: Restrict selectivity used across benchmarks (see DESIGN.md §6).
BENCH_SELECTIVITY = 0.25


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
