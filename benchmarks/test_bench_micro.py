"""Micro-benchmarks of the relational substrate and packet codecs.

These time real Python throughput (not simulated time): the oracle's
operators, page packing, and the ring packet encode/decode path — the
hot loops everything else is built on.
"""

import pytest

from repro.relational import operators
from repro.relational.page import pack_rows_into_pages
from repro.relational.predicate import attr
from repro.relational.relation import Relation
from repro.relational.schema import DataType, Schema
from repro.ring.packets import InstructionPacket, SourceOperand

SCHEMA = Schema.build(("k", DataType.INT), ("g", DataType.INT), ("pad", DataType.CHAR, 48))
ROWS = [(i, i % 97, "") for i in range(5_000)]
RELATION = Relation.from_rows("bench", SCHEMA, ROWS, page_bytes=4096)
SMALL = Relation.from_rows("small", SCHEMA, ROWS[:800], page_bytes=4096)


def test_bench_restrict_oracle(benchmark):
    out = benchmark(lambda: operators.restrict(RELATION, attr("g") < 10))
    assert out.cardinality == sum(1 for r in ROWS if r[1] < 10)


def test_bench_hash_join_oracle(benchmark):
    cond = attr("g").equals_attr("g")
    out = benchmark(lambda: operators.hash_join(SMALL, SMALL, cond))
    assert out.cardinality > 0


def test_bench_sort_merge_join_oracle(benchmark):
    cond = attr("g").equals_attr("g")
    expected = operators.hash_join(SMALL, SMALL, cond)
    out = benchmark(lambda: operators.sort_merge_join(SMALL, SMALL, cond))
    assert out.cardinality == expected.cardinality


def test_bench_project_dedup_oracle(benchmark):
    out = benchmark(lambda: operators.project(RELATION, ["g"]))
    assert out.cardinality == 97


def test_bench_page_packing(benchmark):
    pages = benchmark(lambda: pack_rows_into_pages(SCHEMA, ROWS, 4096))
    assert sum(p.row_count for p in pages) == len(ROWS)


def test_bench_page_serialization(benchmark):
    page = RELATION.page(0)

    def roundtrip():
        from repro.relational.page import Page

        return Page.from_bytes(SCHEMA, page.to_bytes())

    out = benchmark(roundtrip)
    assert out.row_count == page.row_count


def test_bench_instruction_packet_codec(benchmark):
    raw = RELATION.page(0).to_bytes()
    packet = InstructionPacket(
        ip_id=1,
        query_id=2,
        sender_ic=3,
        destination_ic=4,
        flush_when_done=False,
        opcode="join",
        result_relation="r",
        result_schema=SCHEMA,
        operands=[SourceOperand("a", SCHEMA, raw), SourceOperand("b", SCHEMA, raw)],
    )

    def roundtrip():
        return InstructionPacket.decode(packet.encode())

    out = benchmark(roundtrip)
    assert out == packet


def test_bench_benchmark_database_generation(benchmark):
    from repro.workload import generate_benchmark_database

    db = benchmark(lambda: generate_benchmark_database(scale=0.1, seed=3))
    assert len(db.specs) == 15
