"""E11 (extension): parallel project (duplicate elimination) strategies.

Shape assertions: the hash-partition strategy sustains speedup as
processors grow (resolving the paper's open problem the way history did),
while the sort-merge strategy's serial merge caps it.
"""

from benchmarks.conftest import run_once
from repro.experiments import project_operator

PROCESSORS = (1, 4, 16)


def test_bench_project_operator(benchmark):
    result = run_once(
        benchmark,
        lambda: project_operator.run(processors=PROCESSORS, rows=10_000, scale=0.2),
    )
    benchmark.extra_info["table"] = result.render()

    last = result.rows[-1]
    first = result.rows[0]
    # Hash partitioning scales with processors.
    assert last["hash_partition_speedup"] > 3.0, last
    assert last["hash_partition_ms"] < first["hash_partition_ms"]
    # The sort-merge serial phase caps its speedup well below hash.
    assert last["sort_merge_speedup"] < last["hash_partition_speedup"], last
