"""E8 (extension): tuple-level granularity measured on the simulator.

Shape assertions: tuple granularity is never faster than page granularity
and pushes several times the bytes through the interconnect — the
measured counterpart of Section 3.3's analysis.
"""

from benchmarks.conftest import BENCH_SCALE, BENCH_SELECTIVITY, run_once
from repro.experiments import granularity_tuple

PROCESSORS = (10, 30)


def test_bench_granularity_tuple(benchmark):
    result = run_once(
        benchmark,
        lambda: granularity_tuple.run(
            processors=PROCESSORS, scale=BENCH_SCALE, selectivity=BENCH_SELECTIVITY
        ),
    )
    benchmark.extra_info["table"] = result.render()

    for row in result.rows:
        assert row["tuple_ms"] >= row["page_ms"] * 0.95, row
        assert row["traffic_blowup"] > 2.0, row
