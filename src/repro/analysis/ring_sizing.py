"""Section 4.1: ring technology sizing.

"If 25 ns shift registers are used (AM25LS164 and 299), a ring bandwidth
of 40 Mbps can be [ob]tained.  As indicated by Figure 4.2, this is
sufficient for up to 50 instruction processors.  For larger configurations
requiring bandwidths of up to 100 Mbps there appear to be two
alternatives": ECL shift registers (1 bit/ns) or fiber optics (400 Mbps).

Given a measured/estimated per-IP bandwidth demand curve, this module
answers the paper's sizing questions: how many IPs a ring technology
supports, and which technology a target configuration needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro import hw

#: The technologies Section 4.1 prices, in preference (cost) order.
RING_TECHNOLOGIES: List[hw.RingModel] = [
    hw.OUTER_RING_TTL,
    hw.OUTER_RING_FIBER,
    hw.OUTER_RING_ECL,
]


@dataclass(frozen=True)
class RingChoice:
    """A sizing recommendation."""

    ring: hw.RingModel
    ips: int
    demand_mbps: float

    @property
    def headroom(self) -> float:
        """Capacity divided by demand (>1 means feasible)."""
        if self.demand_mbps <= 0:
            return float("inf")
        return self.ring.bit_rate_mbps / self.demand_mbps


DemandCurve = Callable[[int], float]
"""Maps a number of IPs to average outer-ring demand in Mbps."""


def linear_demand(per_ip_mbps: float) -> DemandCurve:
    """The simplest demand model: each IP adds a fixed average load.

    The paper's anchor — 40 Mbps "sufficient for up to 50 IPs" — implies
    ~0.8 Mbps per IP on its benchmark; our simulated machine measures the
    curve directly (see experiments E3/E7), and this helper exists for
    closed-form what-ifs.
    """
    if per_ip_mbps <= 0:
        raise ValueError("per-IP demand must be positive")
    return lambda ips: per_ip_mbps * ips


def max_ips_supported(ring: hw.RingModel, demand: DemandCurve, limit: int = 10_000) -> int:
    """Largest IP count whose demand fits the ring's bit rate."""
    supported = 0
    for ips in range(1, limit + 1):
        if demand(ips) <= ring.bit_rate_mbps:
            supported = ips
        else:
            break
    return supported


def recommend_ring(ips: int, demand: DemandCurve) -> RingChoice:
    """Cheapest ring technology that carries ``ips`` processors' demand.

    Raises :class:`ValueError` if even the fastest option cannot.
    """
    need = demand(ips)
    for ring in RING_TECHNOLOGIES:
        if need <= ring.bit_rate_mbps:
            return RingChoice(ring=ring, ips=ips, demand_mbps=need)
    raise ValueError(
        f"{ips} IPs demand {need:.1f} Mbps, beyond every ring technology "
        f"(max {max(r.bit_rate_mbps for r in RING_TECHNOLOGIES)} Mbps)"
    )


def sizing_table(
    demand_points: Sequence[Tuple[int, float]],
) -> List[dict]:
    """Feasibility of each technology at each measured (ips, mbps) point.

    ``demand_points`` usually comes from simulator sweeps (experiment E3).
    """
    rows: List[dict] = []
    for ips, mbps in demand_points:
        row = {"ips": ips, "demand_mbps": mbps}
        for ring in RING_TECHNOLOGIES:
            row[ring.name] = mbps <= ring.bit_rate_mbps
        rows.append(row)
    return rows
