"""Closed-form models from the paper.

* :mod:`repro.analysis.bandwidth` — Section 3.3's arbitration-network
  traffic formulas for tuple- vs page-level granularity.
* :mod:`repro.analysis.ring_sizing` — Section 4.1's ring technology
  feasibility (40 Mbps TTL shift registers support ~50 IPs; ECL and fiber
  optics for larger configurations).
* :mod:`repro.analysis.concurrency` — degree-of-parallelism bounds per
  granularity (the "unless there are millions of processors" argument).
"""

from repro.analysis.bandwidth import (
    GranularityTraffic,
    join_traffic_page_level,
    join_traffic_tuple_level,
    traffic_comparison,
)
from repro.analysis.ring_sizing import (
    RingChoice,
    max_ips_supported,
    recommend_ring,
)
from repro.analysis.concurrency import (
    max_concurrency,
    useful_processors,
)

__all__ = [
    "GranularityTraffic",
    "join_traffic_tuple_level",
    "join_traffic_page_level",
    "traffic_comparison",
    "RingChoice",
    "max_ips_supported",
    "recommend_ring",
    "max_concurrency",
    "useful_processors",
]
