"""Degree-of-parallelism bounds per operand granularity.

Section 3.3's closing argument: "If, for example, the number of processors
available for query execution is approximately equal to n * m, then
tuple-level granularity is optimal.  We feel that this is unlikely as
typically the value of n * m will be in the millions.  Therefore for
typical queries (unless there are millions of processors), tuple-level
granularity places an unnecessary burden on the arbitration network
without an apparent increase in performance."

These helpers quantify that: the maximum useful processor count per
granularity for a nested-loops join, and the smallest granularity whose
concurrency bound still exceeds a machine's processor count.
"""

from __future__ import annotations

from repro import hw


def max_concurrency(
    n_outer: int,
    m_inner: int,
    granularity: str,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    page_bytes: int = hw.ANALYSIS_PAGE_BYTES,
) -> int:
    """Most processors a nested-loops join can use at ``granularity``.

    * tuple level: every (outer, inner) tuple pair in parallel — n*m;
    * page level: every outer page in parallel (each streams the inner) —
      ceil(n / tuples-per-page);
    * relation level: the join is one instruction, but its outer pages
      still fan out once enabled — same bound as page level *within* the
      instruction; across the tree it is the number of enabled nodes,
      which this function cannot know, so the within-join bound is
      returned.
    """
    if granularity == "tuple":
        return n_outer * m_inner
    if granularity in ("page", "relation"):
        tuples_per_page = max(1, page_bytes // tuple_bytes)
        return -(-n_outer // tuples_per_page)  # ceil
    raise ValueError(f"unknown granularity {granularity!r}")


def useful_processors(
    n_outer: int,
    m_inner: int,
    processors: int,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    page_bytes: int = hw.ANALYSIS_PAGE_BYTES,
) -> dict:
    """How many of ``processors`` each granularity can actually employ.

    The paper's point falls out immediately: page-level saturates any
    realistic machine (tens of processors) on realistic relations, so
    tuple-level's extra concurrency is unusable.
    """
    out = {}
    for granularity in ("relation", "page", "tuple"):
        bound = max_concurrency(n_outer, m_inner, granularity, tuple_bytes, page_bytes)
        out[granularity] = min(processors, bound)
    return out


def tuple_level_pays_off(
    n_outer: int,
    m_inner: int,
    processors: int,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    page_bytes: int = hw.ANALYSIS_PAGE_BYTES,
) -> bool:
    """True only when the machine is so large that page-level cannot keep
    every processor busy but tuple-level can — the paper's "millions of
    processors" condition."""
    page_bound = max_concurrency(n_outer, m_inner, "page", tuple_bytes, page_bytes)
    tuple_bound = max_concurrency(n_outer, m_inner, "tuple", tuple_bytes, page_bytes)
    return page_bound < processors <= tuple_bound
