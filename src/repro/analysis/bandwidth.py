"""Section 3.3: arbitration-network traffic, tuple vs page granularity.

The paper's worked example, verbatim:

    Let the outer relation be A (n tuples) and the inner be B (m tuples),
    each tuple 100 bytes, c overhead bytes per instruction through the
    arbitration network.  Executing the join at tuple level moves

        n * m * (200 + c)  bytes.

    At page level with 1000-byte pages, A occupies n/10 pages and B m/10
    pages, so the traffic is

        n/10 * m/10 * (2000 + c)  =  n * m * (20 + c/100)  bytes.

    "Even if one ignores the overhead of sending a packet ... the
    bandwidth requirements of the page approach is 1/10 that of the tuple
    level approach", and a 10,000-byte page buys another order of
    magnitude.

This module generalizes the formulas to arbitrary tuple/page sizes and
reproduces the paper's specific ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import hw


@dataclass(frozen=True)
class GranularityTraffic:
    """Traffic of one nested-loops join at one granularity."""

    granularity: str
    page_bytes: int
    packets: int
    bytes_total: int

    @property
    def bytes_per_pair(self) -> float:
        """Bytes through the arbitration network per (outer, inner) tuple pair."""
        return self.bytes_total


def join_traffic_tuple_level(
    n_outer: int,
    m_inner: int,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    overhead_bytes: int = 0,
) -> GranularityTraffic:
    """Arbitration traffic for a tuple-granularity nested-loops join.

    Every (outer, inner) tuple pair is one instruction: n*m packets of
    ``2*tuple_bytes + c`` bytes — the paper's ``n*m*(200+c)``.
    """
    packets = n_outer * m_inner
    per_packet = 2 * tuple_bytes + overhead_bytes
    return GranularityTraffic(
        granularity="tuple",
        page_bytes=tuple_bytes,
        packets=packets,
        bytes_total=packets * per_packet,
    )


def join_traffic_page_level(
    n_outer: int,
    m_inner: int,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    page_bytes: int = hw.ANALYSIS_PAGE_BYTES,
    overhead_bytes: int = 0,
) -> GranularityTraffic:
    """Arbitration traffic for a page-granularity nested-loops join.

    Every (outer page, inner page) pair is one instruction carrying two
    pages: (n/t)*(m/t) packets of ``2*page_bytes + c`` where t is tuples
    per page — the paper's ``n/10 * m/10 * (2000 + c)``.
    """
    tuples_per_page = max(1, page_bytes // tuple_bytes)
    outer_pages = -(-n_outer // tuples_per_page)  # ceil
    inner_pages = -(-m_inner // tuples_per_page)
    packets = outer_pages * inner_pages
    per_packet = 2 * page_bytes + overhead_bytes
    return GranularityTraffic(
        granularity="page",
        page_bytes=page_bytes,
        packets=packets,
        bytes_total=packets * per_packet,
    )


def traffic_ratio(
    n_outer: int,
    m_inner: int,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    page_bytes: int = hw.ANALYSIS_PAGE_BYTES,
    overhead_bytes: int = 0,
) -> float:
    """Tuple-level bytes divided by page-level bytes (the paper's ~10x)."""
    tup = join_traffic_tuple_level(n_outer, m_inner, tuple_bytes, overhead_bytes)
    page = join_traffic_page_level(n_outer, m_inner, tuple_bytes, page_bytes, overhead_bytes)
    if page.bytes_total == 0:
        return float("inf")
    return tup.bytes_total / page.bytes_total


def traffic_comparison(
    n_outer: int,
    m_inner: int,
    tuple_bytes: int = hw.ANALYSIS_TUPLE_BYTES,
    page_sizes: List[int] = (1_000, 10_000),
    overhead_values: List[int] = (0, 20, 100),
) -> List[dict]:
    """The Section 3.3 table: traffic per (page size, overhead) setting.

    Returns one row per combination plus the tuple-level row per overhead
    value; the experiment harness renders this as the E2 table.
    """
    rows: List[dict] = []
    for c in overhead_values:
        tup = join_traffic_tuple_level(n_outer, m_inner, tuple_bytes, c)
        rows.append(
            {
                "granularity": "tuple",
                "page_bytes": tuple_bytes,
                "overhead": c,
                "packets": tup.packets,
                "bytes": tup.bytes_total,
                "ratio_vs_tuple": 1.0,
            }
        )
        for page_bytes in page_sizes:
            page = join_traffic_page_level(n_outer, m_inner, tuple_bytes, page_bytes, c)
            rows.append(
                {
                    "granularity": "page",
                    "page_bytes": page_bytes,
                    "overhead": c,
                    "packets": page.packets,
                    "bytes": page.bytes_total,
                    "ratio_vs_tuple": (
                        tup.bytes_total / page.bytes_total if page.bytes_total else float("inf")
                    ),
                }
            )
    return rows
