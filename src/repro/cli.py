"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                    — the experiment catalog with one-line summaries
* ``run <experiment> [...]``  — regenerate one paper artifact (table + chart)
* ``trace <experiment>``      — run instrumented; write a Chrome/Perfetto trace
* ``metrics <experiment>``    — run instrumented; emit a JSON metrics report
* ``bench``                   — time the sweep experiments; append an entry
                                to the BENCH_sweeps.json perf trajectory;
                                ``--gate`` fails on >20% events/sec drops
* ``bench-info``              — how to run the benchmark suite
* ``workload``                — describe the Section 3.2 benchmark database
* ``faults [...]``            — run the benchmark under a seeded fault plan
                                (``repro.faults``); JSON report, exit 1 on
                                any oracle mismatch
* ``recover [...]``           — run a mixed write workload under the WAL,
                                crash it (torn pages + corrupt log tail),
                                restart, and verify the recovered store is
                                byte-identical to the interpreter oracle;
                                ``--dump-prefix`` writes both images for
                                an external ``cmp``
* ``serve [...]``             — continuous multi-user serving mode: open-loop
                                arrivals into a running machine; prints a
                                byte-stable JSON SLO report (p50/p99/p999)
* ``explain-latency [...]``   — a serving run with span tracing armed:
                                attributes end-to-end latency into
                                queueing/service/transit/disk/retransmission
                                buckets (repro-explain/v1); optional
                                repro-tsdb/v1 time-series and Chrome-trace
                                flow-graph outputs
* ``check [paths...]``        — determinism lint (R001-R010); ``--flow``
                                adds the interprocedural analyses (static
                                deadlock detection F001, fusion-safety
                                proofs F002); ``--format`` selects
                                text/json/sarif/github output;
                                ``--self-test`` proves each rule and
                                analysis still fires;
                                ``--scheduler-identity``/``--fusion-identity``/
                                ``--tracing-identity`` prove the perf and
                                observability axes change no output bytes

``run``/``trace``/``metrics`` accept ``--sanitize`` to enable the runtime
simulation sanitizer (event-order, delay, lease, cache, and ring
invariants; violations raise ``SanitizerError``), ``--scheduler calendar``
to switch the future-event list, and ``--fuse`` to fuse operator charge
chains — the latter two are perf-only and byte-identical by contract.

Sweep experiments accept ``--workers N`` to fan independent sweep points
out over N worker processes; results are byte-identical to serial.

Examples::

    python -m repro list
    python -m repro run figure_3_1 --scale 0.25 --processors 5,15,30
    python -m repro run section_3_3
    python -m repro run figure_4_2 --ips 5,25,50 --workers 4
    python -m repro trace figure_3_1 --scale 0.1 --processors 5
    python -m repro metrics ring_vs_direct --scale 0.1
    python -m repro bench --quick
    python -m repro workload --scale 0.1
    python -m repro serve --machine ring --arrivals poisson --rate 50 --seed 7
    python -m repro run serving --workers 4
    python -m repro explain-latency --machine ring --rate 80 --top 5
    python -m repro check --tracing-identity --experiments serving
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Dict, List, Optional

from repro import obs

from repro.experiments import (
    chaos_sweep,
    dataflow_machine,
    fault_tolerance,
    figure_3_1,
    figure_4_2,
    granularity_tuple,
    latency_decomposition,
    packets_demo,
    project_operator,
    recovery_sweep,
    ring_sizing_exp,
    ring_vs_direct,
    section_3_3,
    serving,
)
from repro.experiments.ascii_chart import figure_3_1_chart, figure_4_2_chart

_EXPERIMENTS: Dict[str, tuple] = {
    "figure_3_1": (figure_3_1, "E1: page- vs relation-level granularity (DIRECT)"),
    "section_3_3": (section_3_3, "E2: tuple vs page arbitration traffic (analytic)"),
    "figure_4_2": (figure_4_2, "E3: bandwidth by level vs number of IPs (ring)"),
    "packets": (packets_demo, "E4: packet formats of Figures 4.3-4.5"),
    "dataflow": (dataflow_machine, "E6: granularities on the MIT-model machine"),
    "ring_sizing": (ring_sizing_exp, "E7: ring technology feasibility"),
    "tuple_granularity": (granularity_tuple, "E8: tuple granularity measured"),
    "ring_vs_direct": (ring_vs_direct, "E10: distributed vs centralized control"),
    "project": (project_operator, "E11: parallel duplicate elimination"),
    "fault_tolerance": (fault_tolerance, "E13: survive disabled processors"),
    "chaos": (chaos_sweep, "E14: chaos sweep — every fault class x rate x machine"),
    "serving": (serving, "E15: serving saturation — offered rate x throughput x latency"),
    "latency_decomposition": (
        latency_decomposition,
        "E16: latency decomposition — critical-path bucket shares vs load",
    ),
    "recovery": (
        recovery_sweep,
        "E17: recovery sweep — byte-identical restart after stateful crashes",
    ),
}


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _cmd_list(_args) -> int:
    width = max(len(name) for name in _EXPERIMENTS)
    print("experiments (python -m repro run <name>):\n")
    for name, (_module, summary) in _EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {summary}")
    return 0


def _experiment_kwargs(args) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.selectivity is not None:
        kwargs["selectivity"] = args.selectivity
    if args.processors is not None:
        kwargs["processors"] = tuple(args.processors)
    if args.ips is not None:
        kwargs["ips"] = tuple(args.ips)
    if getattr(args, "workers", None) is not None:
        kwargs["workers"] = args.workers
    if getattr(args, "sanitize", False):
        # The sanitize flag is ambient and process-local, so sweep points
        # must stay in this process.
        kwargs["workers"] = 1
    return kwargs


def _run_experiment(args):
    """Resolve and run one experiment; returns (result, error_code)."""
    if args.experiment not in _EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'python -m repro list'")
        return None, 2
    module, _summary = _EXPERIMENTS[args.experiment]
    try:
        # Scheduler and fusion selections export through the environment,
        # so sweep worker processes inherit them; the sanitizer is
        # process-local and forces workers=1 in _experiment_kwargs.
        with contextlib.ExitStack() as stack:
            if getattr(args, "sanitize", False):
                from repro.check import sanitizing

                stack.enter_context(sanitizing())
            if getattr(args, "scheduler", None):
                from repro.sim.engine import scheduling

                stack.enter_context(scheduling(args.scheduler))
            if getattr(args, "fuse", False):
                from repro.sim.fusion import fusing

                stack.enter_context(fusing(True))
            return module.run(**_experiment_kwargs(args)), 0
    except TypeError as exc:
        print(f"experiment {args.experiment!r} rejected options: {exc}")
        return None, 2


def _cmd_run(args) -> int:
    result, code = _run_experiment(args)
    if result is None:
        return code
    print(result.render())
    if args.experiment == "figure_3_1" and len(result.rows) > 1:
        print()
        print(figure_3_1_chart(result.rows))
    if args.experiment == "figure_4_2" and len(result.rows) > 1:
        print()
        print(figure_4_2_chart(result.rows))
    return 0


def _cmd_trace(args) -> int:
    out = args.out or f"{args.experiment}.trace.json"
    tracer = obs.Tracer(stream_path=out) if args.stream else None
    with obs.observe(trace=True, metrics=False, tracer=tracer) as session:
        result, code = _run_experiment(args)
    if result is None:
        return code
    if args.stream:
        count = session.tracer.close()
        print(
            f"streamed {count} trace events to {out} "
            f"(load in chrome://tracing or https://ui.perfetto.dev)"
        )
    else:
        session.tracer.write(out)
        print(
            f"wrote {session.tracer.event_count} trace events to {out} "
            f"(load in chrome://tracing or https://ui.perfetto.dev)"
        )
    return 0


def _cmd_metrics(args) -> int:
    from repro.experiments.common import metrics_report

    with obs.observe(trace=False, metrics=True) as session:
        result, code = _run_experiment(args)
    if result is None:
        return code
    if args.format == "csv":
        from repro.obs.metrics import report_csv

        text = report_csv(session.metrics.report()).rstrip("\n")
    else:
        report = metrics_report(session.metrics, experiment_id=args.experiment)
        text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote metrics report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_workload(args) -> int:
    from repro.workload import benchmark_queries, generate_benchmark_database

    db = generate_benchmark_database(scale=args.scale, seed=args.seed)
    print(
        f"Section 3.2 benchmark database at scale={args.scale} (seed {args.seed}):\n"
    )
    print(db.catalog.summary())
    trees = benchmark_queries(db.catalog, db.relation_names)
    print(f"\nten-query mix (19 joins, 28 restricts):")
    for tree in trees:
        print(f"  {tree.name}: {tree.join_count} joins, {tree.restrict_count} restricts, "
              f"relations {tree.leaf_relations()}")
    return 0


def _cmd_bench(args) -> int:
    from repro.sweep import bench

    only = [part for part in (args.only or "").split(",") if part] or None
    report = bench.run_bench(
        quick=args.quick, scale=args.scale, workers=args.workers, only=only
    )
    totals = report["totals"]
    for entry in report["experiments"]:
        print(
            f"  {entry['experiment']:<20} {entry['wall_s']:>8.2f}s  "
            f"{entry['sim_events']:>10} events  {entry['events_per_sec']:>9} ev/s"
        )
    if args.gate:
        previous = bench.load_history(args.out)["entries"]
        if previous:
            failures = bench.compare_entries(previous[-1], report)
            if failures:
                print(f"\nperf gate FAILED vs last entry in {args.out}:")
                for failure in failures:
                    print(f"  {failure}")
                return 1
            print(f"\nperf gate OK vs last entry in {args.out}")
        else:
            print(f"\nperf gate: no history at {args.out}; nothing to compare")
    history = bench.append_bench(report, args.out)
    print(
        f"\nappended entry {len(history['entries'])} to {args.out}: "
        f"{totals['wall_s']:.2f}s total, {totals['sim_events']} events, "
        f"{totals['events_per_sec']} ev/s"
    )
    return 0


def _cmd_check(args) -> int:
    from repro.check.lint import lint_paths, self_test
    from repro.check.render import render

    if args.self_test:
        from repro.check.flow import flow_self_test

        problems = self_test() + flow_self_test()
        if problems:
            for problem in problems:
                print(problem)
            return 2
        print(
            "self-test OK: every rule and flow analysis fires and suppresses"
        )
        return 0
    if args.scheduler_identity or args.fusion_identity or args.tracing_identity:
        from repro.check.identity import identity_mismatches

        experiments = [
            part for part in (args.experiments or "").split(",") if part
        ] or None
        failed = False
        for axis, wanted in (
            ("scheduler", args.scheduler_identity),
            ("fusion", args.fusion_identity),
            ("tracing", args.tracing_identity),
        ):
            if not wanted:
                continue
            mismatches = identity_mismatches(axis, experiments)
            if mismatches:
                failed = True
                for mismatch in mismatches:
                    print(mismatch)
            else:
                print(f"{axis} identity OK: byte-identical renders")
        return 1 if failed else 0
    findings = lint_paths(args.paths)
    if args.flow:
        from repro.check.flow import analyze_paths

        findings = findings + analyze_paths(args.paths)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    fmt = "json" if args.as_json else args.format
    text = render(findings, fmt)
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(findings)} finding(s) as {fmt} to {args.report_out}")
    else:
        print(text)
    return 1 if findings else 0


def _cmd_faults(args) -> int:
    """Run the benchmark under a fault plan; print a JSON chaos report."""
    from repro.experiments.chaos_sweep import run_faulted_benchmark
    from repro.faults import FaultPlan, FaultSpec

    if args.plan:
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    else:
        specs = []
        if args.drop > 0:
            specs.append(FaultSpec(kind="ring_drop", rate=args.drop))
        if args.corrupt > 0:
            specs.append(FaultSpec(kind="ring_corrupt", rate=args.corrupt))
        if args.disk_error > 0:
            specs.append(FaultSpec(kind="disk_read_error", rate=args.disk_error))
        if args.poison > 0:
            specs.append(FaultSpec(kind="cache_poison", rate=args.poison))
        if args.ic_rate > 0:
            specs.append(
                FaultSpec(kind="ic_failure", rate=args.ic_rate, at_ms=50.0, max_failovers=5)
            )
        if args.kill > 0:
            specs.append(
                FaultSpec(
                    kind="ip_kill",
                    kills=tuple(
                        (ip_id, args.kill_at + 50.0 * ip_id)
                        for ip_id in range(1, args.kill + 1)
                    ),
                )
            )
        plan = FaultPlan(seed=args.seed, specs=tuple(specs))

    def execute() -> dict:
        return run_faulted_benchmark(
            args.machine,
            plan,
            scale=args.scale,
            selectivity=args.selectivity,
            seed=args.seed,
            processors=args.processors,
        )

    if args.sanitize:
        from repro.check import sanitizing

        with sanitizing():
            summary = execute()
    else:
        summary = execute()
    payload = {"machine": args.machine, "plan": plan.to_dict(), **summary}
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote fault report to {args.out}")
    else:
        print(text)
    return 0 if summary["all_correct"] else 1


def _cmd_recover(args) -> int:
    """One crash-recovery trial; JSON report, exit 1 on contract breach.

    Runs the mixed read/write stream on the chosen machine with the WAL
    armed and the stateful fault plan (machine crash + torn pages +
    corrupt log tail), restarts, and compares the recovered stable
    store byte-for-byte against the interpreter oracle.  With
    ``--dump-prefix`` the recovered and oracle images are written to
    ``<prefix>.recovered.bin`` / ``<prefix>.oracle.bin`` so an external
    ``cmp`` can witness the byte identity.
    """
    from repro.recovery.harness import run_crash_trial

    def execute():
        return run_crash_trial(
            machine=args.machine,
            seed=args.seed,
            scale=args.scale,
            write_fraction=args.write_fraction,
            crash_rate=args.crash_rate,
            torn_page_rate=args.torn_rate,
            log_tail_rate=args.tail_rate,
            crash_at_ms=args.crash_at,
            queries=args.queries,
            processors=args.processors,
        )

    if args.sanitize:
        from repro.check import sanitizing

        with sanitizing():
            trial = execute()
    else:
        trial = execute()
    if args.dump_prefix:
        recovered_path = f"{args.dump_prefix}.recovered.bin"
        oracle_path = f"{args.dump_prefix}.oracle.bin"
        with open(recovered_path, "wb") as handle:
            handle.write(trial.recovered_bytes)
        with open(oracle_path, "wb") as handle:
            handle.write(trial.oracle)
        print(f"wrote {recovered_path} and {oracle_path}")
    text = json.dumps(trial.to_dict(), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote recovery report to {args.out}")
    else:
        print(text)
    return 0 if trial.ok else 1


def _serve_config(args):
    """Build a ServeConfig from the shared serving option set."""
    from repro.serve import ServeConfig

    return ServeConfig(
        machine=args.machine,
        arrivals=args.arrivals,
        rate_qps=args.rate,
        duration_ms=args.duration_ms,
        seed=args.seed,
        scale=args.scale,
        b_domain=args.b_domain,
        selectivity=args.selectivity,
        page_bytes=args.page_bytes,
        processors=args.processors,
        zipf_s=args.zipf_s,
        loop=args.loop,
        users=args.users,
        think_ms=args.think_ms,
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        policy=args.policy,
        write_mix=args.write_mix,
    )


def _cmd_serve(args) -> int:
    """Run one serving session; print (or write) the JSON SLO report."""
    from repro.serve import serve

    config = _serve_config(args)
    if args.sanitize:
        from repro.check import sanitizing

        with sanitizing():
            slo = serve(config)
    else:
        slo = serve(config)
    text = json.dumps(slo, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote SLO report to {args.out}")
    else:
        print(text)
    return 0


def _cmd_explain_latency(args) -> int:
    """A traced serving run: critical-path latency attribution report."""
    from repro.obs.critical_path import explain
    from repro.obs.spans import SpanCollector, collecting
    from repro.obs.timeseries import build_tsdb, spans_chrome_trace
    from repro.serve import serve

    config = _serve_config(args)
    collector = SpanCollector(window_ms=args.window_ms)
    with collecting(collector):
        slo = serve(config)
    report = explain(
        collector,
        top=args.top,
        extra={
            "serve": {
                "machine": config.machine,
                "rate_qps": config.rate_qps,
                "duration_ms": config.duration_ms,
                "elapsed_ms": slo["elapsed_ms"],
                "slo_p99_ms": slo["latency"]["p99_ms"],
            }
        },
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote latency attribution report to {args.out}")
    else:
        print(text)
    if args.tsdb_out:
        tsdb = build_tsdb(collector, end_ms=float(slo["elapsed_ms"]))
        with open(args.tsdb_out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(tsdb, indent=2, sort_keys=True) + "\n")
        print(f"wrote {tsdb['windows']}-window time series to {args.tsdb_out}")
    if args.trace_out:
        trace = spans_chrome_trace(collector)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, sort_keys=True)
        print(
            f"wrote {len(trace['traceEvents'])} span-trace events to "
            f"{args.trace_out} (load in https://ui.perfetto.dev)"
        )
    return 0


def _cmd_bench_info(_args) -> int:
    print(
        "benchmark suite (one per paper table/figure):\n\n"
        "  pytest benchmarks/ --benchmark-only\n\n"
        "options:\n"
        "  REPRO_BENCH_SCALE=1.0   run at the paper's full 5.5 MB scale\n"
        "  --benchmark-json=out.json   machine-readable results\n"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Boral & DeWitt, 'Design Considerations "
        "for Data-flow Database Machines' (SIGMOD 1980).",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    def add_experiment_options(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument("experiment", help="experiment name (see 'list')")
        parser_.add_argument(
            "--scale", type=float, default=None, help="database scale (1.0 = 5.5 MB)"
        )
        parser_.add_argument(
            "--selectivity", type=float, default=None, help="restrict selectivity"
        )
        parser_.add_argument(
            "--processors", type=_int_list, default=None, help="e.g. 5,15,30"
        )
        parser_.add_argument("--ips", type=_int_list, default=None, help="e.g. 5,25,50")
        parser_.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes for sweep points (0 = one per CPU); "
            "results are byte-identical to serial",
        )
        parser_.add_argument(
            "--sanitize",
            action="store_true",
            help="run with the simulation sanitizer enabled (invariant "
            "violations raise SanitizerError); forces serial execution",
        )
        parser_.add_argument(
            "--scheduler",
            choices=["heap", "calendar"],
            default=None,
            help="future-event-list implementation (byte-identical output; "
            "see 'repro check --scheduler-identity')",
        )
        parser_.add_argument(
            "--fuse",
            action="store_true",
            help="fuse deterministic operator charge chains into single "
            "events (byte-identical output; see "
            "'repro check --fusion-identity')",
        )

    run = sub.add_parser("run", help="run one experiment")
    add_experiment_options(run)

    trace = sub.add_parser(
        "trace", help="run one experiment with tracing; write Chrome trace JSON"
    )
    add_experiment_options(trace)
    trace.add_argument(
        "--out", default=None, help="trace file path (default <experiment>.trace.json)"
    )
    trace.add_argument(
        "--stream",
        action="store_true",
        help="flush trace events to --out incrementally (memory-bounded; "
        "same JSON document, different write path)",
    )

    metrics = sub.add_parser(
        "metrics", help="run one experiment with metrics; emit a JSON report"
    )
    add_experiment_options(metrics)
    metrics.add_argument(
        "--out", default=None, help="write the JSON report here instead of stdout"
    )
    metrics.add_argument(
        "--format",
        choices=["json", "csv"],
        default="json",
        help="report rendering: the derived JSON report, or a flat "
        "section,key,field,value CSV of the raw instrument snapshot",
    )

    workload = sub.add_parser("workload", help="describe the benchmark database")
    workload.add_argument("--scale", type=float, default=0.1)
    workload.add_argument("--seed", type=int, default=1979)

    bench = sub.add_parser(
        "bench", help="time the sweep experiments; write a BENCH JSON report"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small grids at scale 0.05 (CI smoke)"
    )
    bench.add_argument(
        "--scale", type=float, default=None, help="override the workload scale"
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes (0 = one per CPU)",
    )
    bench.add_argument(
        "--out", default="BENCH_sweeps.json", help="report path (JSON)"
    )
    bench.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment subset (e.g. figure_3_1,sim_core)",
    )
    bench.add_argument(
        "--gate",
        action="store_true",
        help="fail (exit 1, without appending) when any experiment's "
        "events/sec drops >20%% below the last trajectory entry",
    )

    check = sub.add_parser(
        "check", help="run the determinism linter over the sources"
    )
    check.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories (default: src)"
    )
    check.add_argument(
        "--json", action="store_true", dest="as_json", help="emit findings as JSON"
    )
    check.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural flow analyses (lock-order "
        "deadlock detection F001, fusion-safety proofs F002)",
    )
    check.add_argument(
        "--format",
        choices=["text", "json", "sarif", "github"],
        default="text",
        help="finding output format (github emits ::error annotations)",
    )
    check.add_argument(
        "--out",
        dest="report_out",
        default=None,
        help="write the rendered findings to a file instead of stdout",
    )
    check.add_argument(
        "--self-test",
        action="store_true",
        dest="self_test",
        help="verify every rule and flow analysis fires on its seeded "
        "violation (CI gate)",
    )
    check.add_argument(
        "--scheduler-identity",
        action="store_true",
        dest="scheduler_identity",
        help="verify the calendar-queue scheduler renders every "
        "experiment byte-identically to the heap (CI gate)",
    )
    check.add_argument(
        "--fusion-identity",
        action="store_true",
        dest="fusion_identity",
        help="verify operator-loop fusion renders every experiment "
        "byte-identically to unfused chains (CI gate)",
    )
    check.add_argument(
        "--tracing-identity",
        action="store_true",
        dest="tracing_identity",
        help="verify an armed span collector renders every experiment "
        "byte-identically to untraced runs (CI gate)",
    )
    check.add_argument(
        "--experiments",
        default=None,
        help="comma-separated experiment subset for the identity gates",
    )

    faults = sub.add_parser(
        "faults",
        help="run the benchmark under a seeded fault plan; print a JSON report",
    )
    faults.add_argument(
        "--machine", choices=["ring", "direct"], default="ring", help="target machine"
    )
    faults.add_argument("--scale", type=float, default=0.05, help="database scale")
    faults.add_argument("--selectivity", type=float, default=0.3)
    faults.add_argument("--seed", type=int, default=2027, help="plan + workload seed")
    faults.add_argument("--processors", type=int, default=8)
    faults.add_argument("--drop", type=float, default=0.0, help="ring packet drop rate")
    faults.add_argument(
        "--corrupt", type=float, default=0.0, help="ring packet corruption rate"
    )
    faults.add_argument(
        "--disk-error",
        type=float,
        default=0.0,
        dest="disk_error",
        help="transient disk read-error rate",
    )
    faults.add_argument(
        "--poison", type=float, default=0.0, help="cache frame poison rate"
    )
    faults.add_argument(
        "--ic-rate",
        type=float,
        default=0.0,
        dest="ic_rate",
        help="per-activation IC failure rate (MC failover recovers)",
    )
    faults.add_argument(
        "--kill", type=int, default=0, help="number of IPs to fail-stop mid-run"
    )
    faults.add_argument(
        "--kill-at",
        type=float,
        default=250.0,
        dest="kill_at",
        help="first IP kill time in ms (staggered +50 ms each)",
    )
    faults.add_argument(
        "--plan", default=None, help="JSON fault-plan file (overrides the rate flags)"
    )
    faults.add_argument(
        "--sanitize", action="store_true", help="run under the simulation sanitizer"
    )
    faults.add_argument(
        "--out", default=None, help="write the JSON report here instead of stdout"
    )

    recover = sub.add_parser(
        "recover",
        help="run a mixed write workload, crash it (torn pages + corrupt "
        "log tail), restart, and verify byte-identity against the oracle",
    )
    recover.add_argument(
        "--machine", choices=["ring", "direct", "dataflow"], default="ring"
    )
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--scale", type=float, default=0.02, help="database scale")
    recover.add_argument(
        "--write-fraction", type=float, default=0.5, dest="write_fraction",
        help="fraction of the stream that are write transactions",
    )
    recover.add_argument(
        "--crash-rate", type=float, default=1.0, dest="crash_rate",
        help="probability the machine crash fires during the run",
    )
    recover.add_argument(
        "--torn-rate", type=float, default=0.5, dest="torn_rate",
        help="per-page torn-write probability at the moment of the crash",
    )
    recover.add_argument(
        "--tail-rate", type=float, default=0.5, dest="tail_rate",
        help="probability the unforced log tail is truncated/corrupted",
    )
    recover.add_argument(
        "--crash-at", type=float, default=250.0, dest="crash_at",
        help="earliest crash time in simulated ms",
    )
    recover.add_argument(
        "--queries", type=int, default=12, help="length of the mixed stream"
    )
    recover.add_argument("--processors", type=int, default=4)
    recover.add_argument(
        "--sanitize", action="store_true", help="run under the simulation sanitizer"
    )
    recover.add_argument(
        "--dump-prefix", default=None, dest="dump_prefix",
        help="write <prefix>.recovered.bin and <prefix>.oracle.bin for cmp",
    )
    recover.add_argument(
        "--out", default=None, help="write the JSON report here instead of stdout"
    )

    def add_serving_options(parser_: argparse.ArgumentParser) -> None:
        parser_.add_argument(
            "--machine", choices=["ring", "direct", "dataflow"], default="ring"
        )
        parser_.add_argument(
            "--arrivals", choices=["poisson", "bursty", "diurnal"], default="poisson"
        )
        parser_.add_argument(
            "--rate", type=float, default=50.0, help="mean offered rate, queries/second"
        )
        parser_.add_argument(
            "--duration-ms",
            type=float,
            default=10_000.0,
            dest="duration_ms",
            help="arrival window in simulated ms (the run then drains)",
        )
        parser_.add_argument("--seed", type=int, default=1979)
        parser_.add_argument("--scale", type=float, default=0.05, help="database scale")
        parser_.add_argument(
            "--b-domain", type=int, default=100, dest="b_domain",
            help="join-attribute domain (small keeps joins non-empty at low scale)",
        )
        parser_.add_argument("--selectivity", type=float, default=0.1)
        parser_.add_argument(
            "--page-bytes", type=int, default=2048, dest="page_bytes"
        )
        parser_.add_argument("--processors", type=int, default=8)
        parser_.add_argument(
            "--zipf-s", type=float, default=0.8, dest="zipf_s",
            help="zipf skew of relation popularity and session activity",
        )
        parser_.add_argument(
            "--loop", choices=["open", "closed"], default="open",
            help="open = fixed arrival schedule; closed = N users with think time",
        )
        parser_.add_argument(
            "--users", type=int, default=1000,
            help="distinct sessions (open loop) or concurrent users (closed loop)",
        )
        parser_.add_argument(
            "--think-ms", type=float, default=1000.0, dest="think_ms",
            help="mean think time between a closed-loop user's queries",
        )
        parser_.add_argument(
            "--max-inflight", type=int, default=8, dest="max_inflight",
            help="admission bound on concurrently running queries",
        )
        parser_.add_argument(
            "--queue-limit", type=int, default=64, dest="queue_limit",
            help="admission queue depth; arrivals beyond it are shed",
        )
        parser_.add_argument(
            "--policy", choices=["fifo", "sjf"], default="fifo",
            help="admission queue order (sjf = shortest estimated job first)",
        )
        parser_.add_argument(
            "--write-mix", type=float, default=0.0, dest="write_mix",
            help="fraction of arrivals that are write transactions "
            "(ring only; arms the WAL and reports abort/retry stats)",
        )

    serve_cmd = sub.add_parser(
        "serve",
        help="continuous serving mode: open-loop arrivals into a running "
        "machine; prints a byte-stable JSON SLO report",
    )
    add_serving_options(serve_cmd)
    serve_cmd.add_argument(
        "--sanitize", action="store_true",
        help="run under the simulation sanitizer",
    )
    serve_cmd.add_argument(
        "--out", default=None, help="write the JSON report here instead of stdout"
    )

    explain = sub.add_parser(
        "explain-latency",
        help="run a serving session with span tracing armed; attribute "
        "end-to-end latency into critical-path buckets (repro-explain/v1)",
    )
    add_serving_options(explain)
    explain.add_argument(
        "--window-ms", type=float, default=100.0, dest="window_ms",
        help="time-series fold window in simulated ms",
    )
    explain.add_argument(
        "--top", type=int, default=10,
        help="slowest queries to list with their critical paths",
    )
    explain.add_argument(
        "--out", default=None,
        help="write the attribution report here instead of stdout",
    )
    explain.add_argument(
        "--tsdb-out", default=None, dest="tsdb_out",
        help="also write the repro-tsdb/v1 windowed time series here",
    )
    explain.add_argument(
        "--trace-out", default=None, dest="trace_out",
        help="also write a Chrome trace with per-span flow arrows here",
    )

    sub.add_parser("bench-info", help="how to run the benchmark suite")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands: Dict[str, Callable] = {
        "list": _cmd_list,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "workload": _cmd_workload,
        "bench": _cmd_bench,
        "check": _cmd_check,
        "faults": _cmd_faults,
        "recover": _cmd_recover,
        "serve": _cmd_serve,
        "explain-latency": _cmd_explain_latency,
        "bench-info": _cmd_bench_info,
    }
    if args.command is None:
        parser.print_help()
        return 0
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
