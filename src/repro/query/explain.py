"""EXPLAIN: annotated query plans from the cost model.

A downstream user's first question about a query tree is "what will this
do on the machine?"  ``explain`` walks the tree with
:class:`~repro.query.cost.CostModel` and reports, per node: estimated
rows, pages, and output bytes, plus machine-facing advice —

* for joins, whether the operand roles look right for the nested-loops
  broadcast discipline (a smaller *inner* means fewer bytes broadcast per
  outer wave and a shorter IRC vector);
* for projects/unions, a reminder that duplicate elimination serializes
  on the paper's machines (one IP — Section 5's open problem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.relational.catalog import Catalog
from repro.query.cost import CostModel, NodeEstimate
from repro.query.tree import JoinNode, ProjectNode, QueryNode, QueryTree, UnionNode


@dataclass
class ExplainLine:
    """One node of the annotated plan."""

    depth: int
    label: str
    estimate: Optional[NodeEstimate]
    notes: List[str] = field(default_factory=list)


@dataclass
class Explanation:
    """The full annotated plan."""

    tree_name: str
    lines: List[ExplainLine]

    def render(self) -> str:
        """Indented text plan, one node per line."""
        out = [f"plan for {self.tree_name}:"]
        for line in self.lines:
            indent = "  " * line.depth
            if line.estimate is None:
                stats = ""
            else:
                stats = (
                    f"  [~{line.estimate.rows} rows, {line.estimate.pages} pages, "
                    f"{line.estimate.output_bytes} B]"
                )
            out.append(f"{indent}{line.label}{stats}")
            for note in line.notes:
                out.append(f"{indent}    ! {note}")
        return "\n".join(out)

    @property
    def warnings(self) -> List[str]:
        """All advice notes across the plan."""
        return [note for line in self.lines for note in line.notes]


def explain(tree: QueryTree, catalog: Catalog, page_bytes: int = 4096) -> Explanation:
    """Annotate ``tree`` with estimates and machine advice."""
    tree.validate(catalog)
    model = CostModel(catalog, page_bytes=page_bytes)
    estimates = model.estimate_tree(tree)
    lines: List[ExplainLine] = []

    def walk(node: QueryNode, depth: int) -> None:
        estimate = estimates.get(node.node_id)
        line = ExplainLine(depth=depth, label=node.label(), estimate=estimate)
        lines.append(line)
        if isinstance(node, JoinNode):
            outer = estimates.get(node.outer.node_id)
            inner = estimates.get(node.inner.node_id)
            if outer is not None and inner is not None and inner.pages > outer.pages:
                line.notes.append(
                    f"inner operand (~{inner.pages} pages) is larger than the outer "
                    f"(~{outer.pages}); swapping the roles would broadcast "
                    f"{inner.pages - outer.pages} fewer pages per outer wave"
                )
            if outer is not None and outer.pages <= 1:
                line.notes.append(
                    "single outer page: the join cannot use more than one processor"
                )
        if isinstance(node, (ProjectNode, UnionNode)):
            dedup = getattr(node, "eliminate_duplicates", True)
            if dedup:
                line.notes.append(
                    "duplicate elimination runs on a single IP on the ring machine "
                    "(no parallel algorithm — Section 5)"
                )
        for child in node.children:
            walk(child, depth + 1)

    walk(tree.root, 0)
    return Explanation(tree_name=tree.name, lines=lines)
