"""Fluent builder for query trees.

Keeps workload and example code readable::

    tree = (
        scan("emp").restrict(attr("salary") > 50_000)
        .join(scan("dept").restrict(attr("floor") == 2),
              attr("dept_id").equals_attr("id"))
        .project(["name", "dname"])
        .tree("well-paid-on-2")
    )
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.relational.predicate import CompareOp, JoinCondition, Predicate, attr
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    ScanNode,
    UnionNode,
    UpdateNode,
)


class NodeBuilder:
    """Wraps a :class:`QueryNode` and grows the tree one operator at a time."""

    __slots__ = ("node",)

    def __init__(self, node: QueryNode):
        self.node = node

    def restrict(self, predicate: Predicate) -> "NodeBuilder":
        """Add a restrict above the current node."""
        return NodeBuilder(RestrictNode(self.node, predicate))

    def project(
        self, attributes: Sequence[str], eliminate_duplicates: bool = True
    ) -> "NodeBuilder":
        """Add a project above the current node."""
        return NodeBuilder(ProjectNode(self.node, attributes, eliminate_duplicates))

    def join(self, inner: "NodeBuilder", condition: JoinCondition) -> "NodeBuilder":
        """Join the current node (outer) with ``inner`` on ``condition``."""
        return NodeBuilder(JoinNode(self.node, inner.node, condition))

    def equijoin(self, inner: "NodeBuilder", outer_attr: str, inner_attr: str) -> "NodeBuilder":
        """Shorthand equijoin on named attributes."""
        return self.join(inner, JoinCondition(outer_attr, CompareOp.EQ, inner_attr))

    def union(self, other: "NodeBuilder") -> "NodeBuilder":
        """Set union with ``other``."""
        return NodeBuilder(UnionNode(self.node, other.node))

    def append_into(self, target_relation: str) -> "NodeBuilder":
        """Terminate with an append into a base relation."""
        return NodeBuilder(AppendNode(target_relation, self.node))

    def tree(self, name: Optional[str] = None) -> QueryTree:
        """Freeze the built structure into a :class:`QueryTree`."""
        return QueryTree(self.node, name=name)


def scan(relation_name: str) -> NodeBuilder:
    """Start a builder chain from a base-relation scan."""
    return NodeBuilder(ScanNode(relation_name))


def delete_from(target_relation: str, predicate: Predicate, name: Optional[str] = None) -> QueryTree:
    """A single-node delete query."""
    return QueryTree(DeleteNode(target_relation, predicate), name=name)


def update_set(
    target_relation: str,
    predicate: Predicate,
    set_attr: str,
    delta,
    name: Optional[str] = None,
) -> QueryTree:
    """A single-node update query: ``set_attr += delta`` on matching rows."""
    return QueryTree(
        UpdateNode(target_relation, predicate, set_attr, delta), name=name
    )


def insert_from(
    source_relation: str,
    predicate: Predicate,
    target_relation: str,
    name: Optional[str] = None,
) -> QueryTree:
    """An INSERT ... SELECT template: restricted scan appended into a base
    relation (the paper has no row-literal packet; inserts arrive as the
    result of a query, exactly like Section 2.1's append example)."""
    return (
        scan(source_relation)
        .restrict(predicate)
        .append_into(target_relation)
        .tree(name)
    )


__all__ = [
    "NodeBuilder",
    "scan",
    "delete_from",
    "update_set",
    "insert_from",
    "attr",
]
