"""Query trees: nodes, structure validation, traversal, and rendering.

The node vocabulary follows Section 2.1 ("Some examples are restrict, join,
append, and delete") plus project and union.  Leaves are scans of base
relations; every interior node consumes the relations its children produce.

The sample tree of Figure 2.1 — restricts feeding joins feeding a join —
is reconstructed in :func:`sample_query_tree`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, List, Optional, Sequence

from repro.errors import QueryTreeError
from repro.relational.catalog import Catalog
from repro.relational.predicate import JoinCondition, Predicate, attr
from repro.relational.schema import Schema

_node_ids = itertools.count(1)


class QueryNode:
    """Base class of all query-tree nodes.

    Each node carries a unique ``node_id`` (the machines use it to address
    instructions), its children, and knows how to resolve its output schema
    given a catalog.
    """

    #: Short opcode name used by packets and displays (e.g. ``"restrict"``).
    opcode: str = "?"

    def __init__(self, children: Sequence["QueryNode"]):
        self.node_id = next(_node_ids)
        self.children: List[QueryNode] = list(children)

    # -- structure -----------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        """True for nodes with no children (scans)."""
        return not self.children

    def postorder(self) -> Iterator["QueryNode"]:
        """Children-first traversal (execution order for relation granularity)."""
        for child in self.children:
            yield from child.postorder()
        yield self

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        if self.is_leaf:
            return 1
        return 1 + max(c.depth() for c in self.children)

    # -- semantics -----------------------------------------------------------

    def output_schema(self, catalog: Catalog) -> Schema:
        """Schema of the relation this node produces."""
        raise NotImplementedError

    def validate(self, catalog: Catalog) -> None:
        """Raise :class:`QueryTreeError` if this subtree is malformed."""
        for child in self.children:
            child.validate(catalog)

    def label(self) -> str:
        """One-line description for tree rendering."""
        return self.opcode

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id})"


class ScanNode(QueryNode):
    """Leaf: produce the pages of one base relation from the catalog."""

    opcode = "scan"

    def __init__(self, relation_name: str):
        super().__init__([])
        self.relation_name = relation_name

    def output_schema(self, catalog: Catalog) -> Schema:
        return catalog.get(self.relation_name).schema

    def validate(self, catalog: Catalog) -> None:
        if self.relation_name not in catalog:
            raise QueryTreeError(f"scan of unknown relation {self.relation_name!r}")

    def label(self) -> str:
        return f"scan {self.relation_name}"


class RestrictNode(QueryNode):
    """Selection: keep the child's rows satisfying a predicate."""

    opcode = "restrict"

    def __init__(self, child: QueryNode, predicate: Predicate):
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> QueryNode:
        """The single input node."""
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def validate(self, catalog: Catalog) -> None:
        super().validate(catalog)
        try:
            self.predicate.validate(self.child.output_schema(catalog))
        except Exception as exc:
            raise QueryTreeError(f"restrict node {self.node_id}: {exc}") from exc

    def label(self) -> str:
        return f"restrict {self.predicate!r}"


class ProjectNode(QueryNode):
    """Projection: cut to the named attributes, optionally deduplicating.

    Section 5 calls duplicate elimination the hard part of project on a
    multiprocessor; ``eliminate_duplicates=False`` models the cheap
    attribute-cut phase alone.
    """

    opcode = "project"

    def __init__(self, child: QueryNode, attributes: Sequence[str], eliminate_duplicates: bool = True):
        super().__init__([child])
        self.attributes = list(attributes)
        self.eliminate_duplicates = eliminate_duplicates

    @property
    def child(self) -> QueryNode:
        """The single input node."""
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog).project(self.attributes)

    def validate(self, catalog: Catalog) -> None:
        super().validate(catalog)
        schema = self.child.output_schema(catalog)
        missing = [a for a in self.attributes if a not in schema]
        if missing:
            raise QueryTreeError(
                f"project node {self.node_id} references missing attributes {missing}"
            )
        if not self.attributes:
            raise QueryTreeError(f"project node {self.node_id} keeps no attributes")

    def label(self) -> str:
        return f"project [{', '.join(self.attributes)}]"


class JoinNode(QueryNode):
    """Join: conditional cross product of the outer (left) and inner (right)
    children, executed with the nested-loops algorithm on the machines."""

    opcode = "join"

    def __init__(self, outer: QueryNode, inner: QueryNode, condition: JoinCondition):
        super().__init__([outer, inner])
        self.condition = condition

    @property
    def outer(self) -> QueryNode:
        """The outer relation's producer (rows distributed across IPs)."""
        return self.children[0]

    @property
    def inner(self) -> QueryNode:
        """The inner relation's producer (pages broadcast to all IPs)."""
        return self.children[1]

    def output_schema(self, catalog: Catalog) -> Schema:
        a = self.outer.output_schema(catalog)
        b = self.inner.output_schema(catalog)
        return a.concat_unique(b)

    def validate(self, catalog: Catalog) -> None:
        super().validate(catalog)
        try:
            self.condition.validate(
                self.outer.output_schema(catalog), self.inner.output_schema(catalog)
            )
        except Exception as exc:
            raise QueryTreeError(f"join node {self.node_id}: {exc}") from exc

    def label(self) -> str:
        return f"join {self.condition!r}"


class UnionNode(QueryNode):
    """Set union of two union-compatible children."""

    opcode = "union"

    def __init__(self, left: QueryNode, right: QueryNode):
        super().__init__([left, right])

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.children[0].output_schema(catalog)

    def validate(self, catalog: Catalog) -> None:
        super().validate(catalog)
        a = self.children[0].output_schema(catalog)
        b = self.children[1].output_schema(catalog)
        if a.arity != b.arity:
            raise QueryTreeError(f"union node {self.node_id}: arity mismatch")


class AppendNode(QueryNode):
    """Update: append the child's rows to a named base relation."""

    opcode = "append"

    def __init__(self, target_relation: str, child: QueryNode):
        super().__init__([child])
        self.target_relation = target_relation

    @property
    def child(self) -> QueryNode:
        """Producer of the rows to append."""
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return catalog.get(self.target_relation).schema

    def validate(self, catalog: Catalog) -> None:
        super().validate(catalog)
        if self.target_relation not in catalog:
            raise QueryTreeError(f"append into unknown relation {self.target_relation!r}")
        target = catalog.get(self.target_relation).schema
        source = self.child.output_schema(catalog)
        if target.arity != source.arity:
            raise QueryTreeError(
                f"append node {self.node_id}: arity mismatch "
                f"({source.names} -> {target.names})"
            )

    def label(self) -> str:
        return f"append -> {self.target_relation}"


class DeleteNode(QueryNode):
    """Update: delete rows matching a predicate from a named base relation."""

    opcode = "delete"

    def __init__(self, target_relation: str, predicate: Predicate):
        super().__init__([])
        self.target_relation = target_relation
        self.predicate = predicate

    def output_schema(self, catalog: Catalog) -> Schema:
        return catalog.get(self.target_relation).schema

    def validate(self, catalog: Catalog) -> None:
        if self.target_relation not in catalog:
            raise QueryTreeError(f"delete from unknown relation {self.target_relation!r}")
        try:
            self.predicate.validate(catalog.get(self.target_relation).schema)
        except Exception as exc:
            raise QueryTreeError(f"delete node {self.node_id}: {exc}") from exc

    def label(self) -> str:
        return f"delete from {self.target_relation} where {self.predicate!r}"


class UpdateNode(QueryNode):
    """Update: add ``delta`` to one numeric attribute of matching rows.

    Like :class:`DeleteNode` this is a childless write root — the target
    relation is both the operand (delivered page by page, exactly like a
    scan) and the destination.  Rows satisfying the predicate get
    ``set_attr += delta``; the rest pass through unchanged, so the
    operator's output is the *entire* new content of the relation.
    """

    opcode = "update"

    def __init__(
        self,
        target_relation: str,
        predicate: Predicate,
        set_attr: str,
        delta: float,
    ):
        super().__init__([])
        self.target_relation = target_relation
        self.predicate = predicate
        self.set_attr = set_attr
        self.delta = delta

    def output_schema(self, catalog: Catalog) -> Schema:
        return catalog.get(self.target_relation).schema

    def validate(self, catalog: Catalog) -> None:
        if self.target_relation not in catalog:
            raise QueryTreeError(f"update of unknown relation {self.target_relation!r}")
        schema = catalog.get(self.target_relation).schema
        try:
            self.predicate.validate(schema)
        except Exception as exc:
            raise QueryTreeError(f"update node {self.node_id}: {exc}") from exc
        if self.set_attr not in schema:
            raise QueryTreeError(
                f"update node {self.node_id} sets missing attribute "
                f"{self.set_attr!r}"
            )
        dtype = schema.attribute(self.set_attr).dtype.value
        if dtype == "int" and not isinstance(self.delta, int):
            raise QueryTreeError(
                f"update node {self.node_id}: integer attribute "
                f"{self.set_attr!r} needs an integer delta, got {self.delta!r}"
            )
        if dtype not in ("int", "float"):
            raise QueryTreeError(
                f"update node {self.node_id}: attribute {self.set_attr!r} "
                f"is {dtype}, not numeric"
            )

    def compile_apply(self, schema: Schema) -> Callable[[tuple], tuple]:
        """A row -> row function applying this update (predicate compiled)."""
        test = self.predicate.compile(schema)
        index = schema.index_of(self.set_attr)
        delta = self.delta

        def apply(row: tuple) -> tuple:
            if test(row):
                return row[:index] + (row[index] + delta,) + row[index + 1 :]
            return row

        return apply

    def label(self) -> str:
        return (
            f"update {self.target_relation} set {self.set_attr} += "
            f"{self.delta} where {self.predicate!r}"
        )


class QueryTree:
    """A rooted query tree with identity, validation, and shape accounting.

    The benchmark of Section 3.2 characterizes queries by their restrict
    and join counts; :attr:`join_count`/:attr:`restrict_count` exist so the
    workload can assert it matches the paper's mix exactly.
    """

    _query_ids = itertools.count(1)

    def __init__(self, root: QueryNode, name: Optional[str] = None):
        self.root = root
        self.query_id = next(self._query_ids)
        self.name = name or f"Q{self.query_id}"
        # Node structure is fixed once a tree is wrapped (nothing mutates
        # ``children`` afterwards), so the traversal products are computed
        # once — the machines call nodes()/parent_of() on every dispatch.
        self._nodes: Optional[List[QueryNode]] = None
        self._by_id: Optional[dict] = None
        self._parents: Optional[dict] = None

    # -- traversal -----------------------------------------------------------

    def nodes(self) -> List[QueryNode]:
        """All nodes, children before parents (cached; treat as read-only)."""
        if self._nodes is None:
            self._nodes = list(self.root.postorder())
        return self._nodes

    def node_by_id(self, node_id: int) -> QueryNode:
        """The node with ``node_id``; raises if absent from this tree."""
        if self._by_id is None:
            self._by_id = {n.node_id: n for n in self.nodes()}
        try:
            return self._by_id[node_id]
        except KeyError:
            raise QueryTreeError(f"no node {node_id} in query {self.name}") from None

    def parent_of(self, node: QueryNode) -> Optional[QueryNode]:
        """The node consuming ``node``'s output, or None for the root."""
        if self._parents is None:
            self._parents = {
                child.node_id: candidate
                for candidate in self.nodes()
                for child in candidate.children
            }
        return self._parents.get(node.node_id)

    def operators(self) -> List[QueryNode]:
        """Non-scan nodes (the "instructions" the machines execute)."""
        return [n for n in self.nodes() if not isinstance(n, ScanNode)]

    # -- shape ---------------------------------------------------------------

    @property
    def join_count(self) -> int:
        """Number of join nodes."""
        return sum(1 for n in self.nodes() if isinstance(n, JoinNode))

    @property
    def restrict_count(self) -> int:
        """Number of restrict nodes."""
        return sum(1 for n in self.nodes() if isinstance(n, RestrictNode))

    @property
    def depth(self) -> int:
        """Tree height."""
        return self.root.depth()

    def leaf_relations(self) -> List[str]:
        """Names of base relations this query reads."""
        names = []
        for node in self.nodes():
            if isinstance(node, ScanNode):
                names.append(node.relation_name)
            elif isinstance(node, (DeleteNode, UpdateNode)):
                names.append(node.target_relation)
        return names

    def updated_relations(self) -> List[str]:
        """Names of base relations this query writes (append/delete/update)."""
        names = []
        for node in self.nodes():
            if isinstance(node, (AppendNode, DeleteNode, UpdateNode)):
                names.append(node.target_relation)
        return names

    # -- validation & rendering ----------------------------------------------

    def validate(self, catalog: Catalog) -> None:
        """Validate the whole tree against ``catalog``."""
        self.root.validate(catalog)

    def render(self) -> str:
        """ASCII rendering in the style of Figure 2.1."""
        lines: List[str] = []

        def walk(node: QueryNode, indent: str, last: bool) -> None:
            branch = "`-- " if last else "|-- "
            lines.append(f"{indent}{branch}{node.label()}")
            child_indent = indent + ("    " if last else "|   ")
            for i, child in enumerate(node.children):
                walk(child, child_indent, i == len(node.children) - 1)

        lines.append(f"{self.name}: {self.root.label()}")
        for i, child in enumerate(self.root.children):
            walk(child, "", i == len(self.root.children) - 1)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"QueryTree({self.name}, {self.join_count} joins, "
            f"{self.restrict_count} restricts, depth {self.depth})"
        )


def sample_query_tree() -> Callable[[Catalog], QueryTree]:
    """Deferred construction of the Figure 2.1 sample tree shape.

    Figure 2.1 shows restricts on base relations feeding a chain of joins.
    The returned callable expects a catalog holding relations ``r1..r4``
    with an integer attribute ``k`` and builds::

            J
           / \\
          J   R(r4)
         / \\
        R   R
       (r1) (r2,r3 join)
    """

    def build(catalog: Catalog) -> QueryTree:
        r1 = RestrictNode(ScanNode("r1"), attr("k") > 0)
        r2 = RestrictNode(ScanNode("r2"), attr("k") > 0)
        r3 = RestrictNode(ScanNode("r3"), attr("k") > 0)
        r4 = RestrictNode(ScanNode("r4"), attr("k") > 0)
        j1 = JoinNode(r1, r2, attr("k").equals_attr("k"))
        j2 = JoinNode(r3, r4, attr("k").equals_attr("k"))
        root = JoinNode(j1, j2, attr("k").equals_attr("k"))
        tree = QueryTree(root, name="figure-2.1")
        tree.validate(catalog)
        return tree

    return build
