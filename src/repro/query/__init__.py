"""Relational algebra query trees (Section 2.1, Figure 2.1).

A query is "one or more relational algebra operations (instructions)
organized in the form of a tree"; nodes higher in the tree operate on
relations computed by nodes below them.  This package provides the tree
representation, a fluent builder, a reference interpreter (executing trees
against a catalog with the oracle operators), and a cost model used by the
machine simulators for page-table sizing.
"""

from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    ScanNode,
    UnionNode,
)
from repro.query.builder import scan
from repro.query.interpreter import execute
from repro.query.explain import explain

__all__ = [
    "QueryNode",
    "QueryTree",
    "ScanNode",
    "RestrictNode",
    "ProjectNode",
    "JoinNode",
    "AppendNode",
    "DeleteNode",
    "UnionNode",
    "scan",
    "execute",
    "explain",
]
