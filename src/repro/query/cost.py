"""Per-node cost estimation for query trees.

The machine simulators dispatch real pages, so they don't need a cost model
to *execute*; they need one to *plan* — sizing result page tables, choosing
the outer/inner roles of a join's operands, and letting the experiments
report expected versus actual data volumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.relational.catalog import Catalog
from repro.relational.statistics import (
    RelationStats,
    collect_stats,
    estimate_join_cardinality,
    estimate_selectivity,
)
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    ScanNode,
    UnionNode,
)


@dataclass(frozen=True)
class NodeEstimate:
    """Estimated output shape of one node."""

    node_id: int
    opcode: str
    rows: int
    pages: int
    output_bytes: int


class CostModel:
    """Bottom-up cardinality/page estimation over a query tree.

    Statistics for base relations are collected lazily and cached, so
    estimating many trees over one catalog costs one stats pass per
    relation.
    """

    def __init__(self, catalog: Catalog, page_bytes: int = 4096):
        self.catalog = catalog
        self.page_bytes = page_bytes
        self._stats_cache: Dict[str, RelationStats] = {}

    def _base_stats(self, relation_name: str) -> RelationStats:
        if relation_name not in self._stats_cache:
            self._stats_cache[relation_name] = collect_stats(self.catalog.get(relation_name))
        return self._stats_cache[relation_name]

    def estimate_tree(self, tree: QueryTree) -> Dict[int, NodeEstimate]:
        """Estimates for every node of ``tree``, keyed by node id."""
        out: Dict[int, NodeEstimate] = {}
        self._estimate(tree.root, out)
        return out

    def estimate_root(self, tree: QueryTree) -> NodeEstimate:
        """Estimate for the root node only."""
        return self.estimate_tree(tree)[tree.root.node_id]

    # -- internals -----------------------------------------------------------

    def _estimate(self, node: QueryNode, out: Dict[int, NodeEstimate]):
        for child in node.children:
            self._estimate(child, out)

        rows, record_width = self._node_rows(node, out)
        record_width = max(1, record_width)
        rows = max(0, rows)
        per_page = max(1, (self.page_bytes - 8) // record_width)
        pages = (rows + per_page - 1) // per_page if rows else 0
        est = NodeEstimate(
            node_id=node.node_id,
            opcode=node.opcode,
            rows=rows,
            pages=pages,
            output_bytes=rows * record_width,
        )
        out[node.node_id] = est
        return est

    def _node_rows(self, node: QueryNode, out: Dict[int, NodeEstimate]) -> tuple[int, int]:
        if isinstance(node, ScanNode):
            stats = self._base_stats(node.relation_name)
            width = self.catalog.get(node.relation_name).schema.record_width
            return stats.cardinality, width

        if isinstance(node, RestrictNode):
            child = out[node.child.node_id]
            stats = self._stats_for_estimation(node.child)
            sel = estimate_selectivity(node.predicate, stats)
            return int(round(child.rows * sel)), self._width_of(child)

        if isinstance(node, ProjectNode):
            child = out[node.child.node_id]
            width = self._projected_width(node)
            rows = child.rows
            if node.eliminate_duplicates:
                # Heuristic: dedup keeps ~ sqrt(n) .. n rows; use 80%.
                rows = max(1, int(rows * 0.8)) if rows else 0
            return rows, width

        if isinstance(node, JoinNode):
            o = out[node.outer.node_id]
            i = out[node.inner.node_id]
            ostats = self._stats_for_estimation(node.outer)
            istats = self._stats_for_estimation(node.inner)
            rows = estimate_join_cardinality(ostats, istats, node.condition)
            return rows, self._width_of(o) + self._width_of(i)

        if isinstance(node, UnionNode):
            a = out[node.children[0].node_id]
            b = out[node.children[1].node_id]
            return a.rows + b.rows, self._width_of(a)

        if isinstance(node, AppendNode):
            child = out[node.child.node_id]
            target = self._base_stats(node.target_relation)
            width = self.catalog.get(node.target_relation).schema.record_width
            return target.cardinality + child.rows, width

        if isinstance(node, DeleteNode):
            stats = self._base_stats(node.target_relation)
            width = self.catalog.get(node.target_relation).schema.record_width
            sel = estimate_selectivity(node.predicate, stats)
            return int(round(stats.cardinality * (1.0 - sel))), width

        return 0, 8

    def _stats_for_estimation(self, node: QueryNode) -> RelationStats:
        """Best available stats for a node: real stats for scans, scan stats
        propagated through unary chains, a synthetic fallback otherwise."""
        cursor = node
        while isinstance(cursor, (RestrictNode, ProjectNode)):
            cursor = cursor.children[0]
        if isinstance(cursor, ScanNode):
            return self._base_stats(cursor.relation_name)
        return RelationStats(name=f"node{node.node_id}", cardinality=0, pages=0, columns={})

    def _width_of(self, est: NodeEstimate) -> int:
        if est.rows <= 0:
            return 8
        return max(1, est.output_bytes // est.rows)

    def _projected_width(self, node: ProjectNode) -> int:
        cursor: QueryNode = node.child
        while isinstance(cursor, (RestrictNode, ProjectNode)):
            cursor = cursor.children[0]
        if isinstance(cursor, ScanNode):
            schema = self.catalog.get(cursor.relation_name).schema
            widths = {a.name: a.byte_width for a in schema}
            return sum(widths.get(a, 8) for a in node.attributes)
        return 8 * len(node.attributes)
