"""Reference interpreter: execute a query tree against a catalog.

This is the correctness oracle for the machine simulators — it evaluates a
tree bottom-up with the :mod:`repro.relational.operators` functions and, for
update operators (append/delete), applies the side effect to the catalog.
"""

from __future__ import annotations

from repro.errors import QueryTreeError
from repro.relational import operators
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    ScanNode,
    UnionNode,
    UpdateNode,
)


def execute_node(
    node: QueryNode, catalog: Catalog, join_algorithm: str = "nested_loops"
) -> Relation:
    """Evaluate one subtree and return its result relation.

    Update nodes mutate ``catalog`` and return the new base relation.
    """
    if isinstance(node, ScanNode):
        return catalog.get(node.relation_name)

    if isinstance(node, RestrictNode):
        child = execute_node(node.child, catalog, join_algorithm)
        return operators.restrict(child, node.predicate)

    if isinstance(node, ProjectNode):
        child = execute_node(node.child, catalog, join_algorithm)
        return operators.project(
            child, node.attributes, eliminate_duplicates=node.eliminate_duplicates
        )

    if isinstance(node, JoinNode):
        outer = execute_node(node.outer, catalog, join_algorithm)
        inner = execute_node(node.inner, catalog, join_algorithm)
        return operators.join(outer, inner, node.condition, algorithm=join_algorithm)

    if isinstance(node, UnionNode):
        left = execute_node(node.children[0], catalog, join_algorithm)
        right = execute_node(node.children[1], catalog, join_algorithm)
        return operators.union(left, right)

    if isinstance(node, AppendNode):
        source = execute_node(node.child, catalog, join_algorithm)
        target = catalog.get(node.target_relation)
        updated = operators.append(target, source, name=node.target_relation)
        catalog.replace(updated)
        return updated

    if isinstance(node, DeleteNode):
        target = catalog.get(node.target_relation)
        updated = operators.delete(target, node.predicate, name=node.target_relation)
        catalog.replace(updated)
        return updated

    if isinstance(node, UpdateNode):
        target = catalog.get(node.target_relation)
        updated = operators.update(
            target, node.predicate, node.set_attr, node.delta,
            name=node.target_relation,
        )
        catalog.replace(updated)
        return updated

    raise QueryTreeError(f"no interpretation for node type {type(node).__name__}")


def execute(
    tree: QueryTree,
    catalog: Catalog,
    join_algorithm: str = "nested_loops",
    validate: bool = True,
) -> Relation:
    """Execute ``tree`` against ``catalog``; returns the root's relation."""
    if validate:
        tree.validate(catalog)
    result = execute_node(tree.root, catalog, join_algorithm)
    if result.name.startswith(("restrict(", "project(", "join(", "union(")):
        result.name = f"{tree.name}.result"
    return result
