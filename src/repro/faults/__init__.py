"""Deterministic fault injection for the machine simulators.

Public surface:

* :class:`FaultSpec` / :class:`FaultPlan` — pure-data description of
  which fault classes are armed, where, and at what rate (seeded).
* :class:`FaultInjector` — the per-simulator oracle that turns a plan
  into simulation-time strikes and tallies every recovery action.
* :func:`injecting` / :func:`active_plan` — ambient arming, mirroring
  :func:`repro.check.sanitizing`: simulators constructed inside the
  context pick the plan up automatically.

See :mod:`repro.faults.plan` for the fault-class catalog and the
determinism contract (same seed + same plan = byte-identical run).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    active_plan,
    injecting,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "injecting",
]
