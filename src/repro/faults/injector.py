"""Simulation-time fault injection: seeded decisions + recovery counters.

One :class:`FaultInjector` is bound per :class:`repro.sim.engine.Simulator`
at construction (see ``Simulator.__init__``), exactly like the sanitizer:
components (rings, caches, the ring machine) ask the simulator for its
injector once, resolve the specs that govern their own site, and keep
``None`` when nothing is armed there — so an unarmed component runs the
verbatim fault-free code path.

Every decision draws from a named stream ``faults.<kind>.<site>`` of a
:class:`repro.sim.random.RandomStreams` seeded from the plan, so the
sequence of strikes depends only on ``(plan.seed, kind, site, draw
index)`` — never on wall clock, hash order, or other subsystems'
randomness.  Recovery actions are tallied locally (for experiment rows
and the ``repro faults`` JSON report) and surfaced through ``repro.obs``
as ``faults.*`` counters and trace instants when a session is active.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.random import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-simulator fault oracle and recovery scoreboard."""

    def __init__(self, plan: FaultPlan, sim: "Simulator"):
        self.plan = plan
        self.sim = sim
        self._streams = RandomStreams(plan.seed)
        #: (counter name, site) -> count, in first-strike order.
        self.counters: Dict[Tuple[str, str], int] = {}
        # Pre-bound obs fast paths, mirroring the engine.
        self._trace = sim.tracer if sim.tracer.enabled else None
        self._metrics = sim.metrics if sim.metrics.enabled else None

    # -- spec resolution -----------------------------------------------------

    def spec(self, kind: str, site: str = "*") -> Optional[FaultSpec]:
        """The plan's spec for ``kind`` at ``site`` (exact site wins)."""
        return self.plan.spec(kind, site)

    def armed_spec(self, kind: str, site: str = "*") -> Optional[FaultSpec]:
        """Like :meth:`spec`, but None unless the spec can actually strike.

        Components resolve this once at construction; a ``None`` result
        means the component keeps its fault-free fast path, which is what
        makes a zero-rate armed run bit-identical to an unarmed one.
        """
        found = self.plan.spec(kind, site)
        return found if found is not None and found.armed else None

    # -- seeded draws --------------------------------------------------------

    def decide(self, kind: str, site: str, rate: float) -> bool:
        """One Bernoulli(rate) draw from the ``faults.<kind>.<site>`` stream."""
        if rate <= 0.0:
            return False
        stream = self._streams.stream(f"faults.{kind}.{site}")
        return stream.random() < rate

    def uniform(self, kind: str, site: str, low: float, high: float) -> float:
        """One uniform draw from the same per-site stream (strike times)."""
        stream = self._streams.stream(f"faults.{kind}.{site}")
        return stream.uniform(low, high)

    # -- recovery scoreboard -------------------------------------------------

    def count(self, name: str, site: str = "") -> None:
        """Record one fault strike or recovery action at ``site``."""
        key = (name, site)
        self.counters[key] = self.counters.get(key, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("faults." + name, site=site).add()
        if self._trace is not None:
            self._trace.instant(
                "fault." + name, "fault", self.sim.now, "faults", args={"site": site}
            )

    def total(self, name: str) -> int:
        """Total strikes/recoveries named ``name`` across all sites."""
        return sum(v for (n, _site), v in self.counters.items() if n == name)

    def snapshot(self) -> Dict[str, int]:
        """Sorted ``"name[site]" -> count`` view for reports and JSON."""
        flat = {
            f"{name}[{site}]" if site else name: value
            for (name, site), value in self.counters.items()
        }
        return dict(sorted(flat.items()))

    def finish(self) -> None:
        """Publish final per-site totals as ``faults.*`` gauges (end of run)."""
        if self._metrics is None:
            return
        for (name, site), value in self.counters.items():
            self._metrics.set_gauge(
                "faults." + name, value, site=site, run=self.sim.run_id
            )
