"""Seeded fault plans: *what* to break, *where*, and *how hard*.

A :class:`FaultPlan` is pure data — a seed plus a tuple of per-site
:class:`FaultSpec` entries — so the same plan can be shipped to sweep
worker processes, serialized into an experiment's JSON report, and
replayed bit-for-bit.  The plan says nothing about *when* individual
faults strike: every draw happens at simulation time through the
:class:`repro.faults.injector.FaultInjector` bound to a
:class:`repro.sim.engine.Simulator`, from named RNG streams keyed by
``(plan.seed, fault kind, site)``.  Same seed + same plan therefore
means the byte-identical run, and a plan whose every spec is unarmed
(rate 0, no scheduled kills) binds no injector at all — the simulator
takes the exact unarmed code path.

Fault classes (paper Section 4.0, requirement 5 — "the machine should
be able to survive an arbitrary number of disabled processors"):

``ring_drop``
    A ring transfer vanishes in the insertion network; the sender's
    retransmission timer (deterministic timeout × backoff) recovers it.
``ring_corrupt``
    A ring transfer arrives with a bad checksum (the trailing CRC-32
    word of the Figure 4.3-4.5 codecs); the receiver NAKs and the
    sender retransmits after ``nak_delay_ms``.
``disk_read_error``
    A mass-storage page read fails transiently; the cache retries the
    transfer up to ``max_retries`` times before raising
    :class:`repro.errors.RetryExhaustedError`.
``cache_poison``
    A clean, unpinned disk-cache frame is poisoned; the cache discards
    it and re-fetches the page from mass storage.
``ip_kill``
    An Instruction Processor fail-stops mid-run (the E13 experiment),
    either at explicit ``kills=((ip_id, at_ms), ...)`` times or drawn
    per-IP at ``rate`` within ``window_ms``.  Requires the ring
    machine's watchdog fault tolerance.
``ic_failure``
    An Instruction Controller fail-stops; the Master Controller tears
    down the query's instruction queue and re-activates it from the
    still-held locks (bounded by ``max_failovers`` per query).
``machine_crash``
    The whole machine loses power mid-run: the event loop aborts with
    :class:`repro.errors.CrashError`, volatile state is discarded, and
    the :mod:`repro.recovery` restart protocol rebuilds committed state
    from the stable store.  ``at_ms`` (or a rate-drawn time inside
    ``window_ms``) picks the strike time.
``torn_page``
    At a crash, each in-flight dirty-page flush may land half-written —
    bytes failing their own sector checksum; redo repairs it from the
    last logged full image.  Only meaningful alongside ``machine_crash``.
``log_tail_corrupt``
    At a crash, a fragment of the *unforced* WAL tail reaches disk with
    its final frame garbled; the recovery scan stops at the last
    CRC-valid frame.  Nothing in that tail was acknowledged, so no
    committed transaction is lost.  Only meaningful alongside
    ``machine_crash``.

Ambient arming mirrors :func:`repro.check.sanitizing`: simulators
constructed inside :func:`injecting` pick the plan up automatically::

    from repro import faults

    plan = faults.FaultPlan(seed=7, specs=(
        faults.FaultSpec(kind="ring_drop", rate=0.05),
    ))
    with faults.injecting(plan):
        machine = RingMachine(catalog, processors=8, fault_tolerant=True)
    report = machine.run()   # injector already bound at construction
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import FaultError

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "active_plan", "injecting"]

#: Every fault class the injector understands.
FAULT_KINDS: Tuple[str, ...] = (
    "ring_drop",
    "ring_corrupt",
    "disk_read_error",
    "cache_poison",
    "ip_kill",
    "ic_failure",
    "machine_crash",
    "torn_page",
    "log_tail_corrupt",
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault class armed at one site (or every site, ``site="*"``).

    Only the fields relevant to the spec's ``kind`` are consulted; the
    rest keep their defaults so specs stay trivially serializable.
    """

    kind: str
    #: Injection site: a ring name (``"inner-ring"``/``"outer-ring"``),
    #: ``"disk<N>"``, a query-tree name for ``ic_failure`` — or ``"*"``
    #: to match every site of this kind.
    site: str = "*"
    #: Per-opportunity fault probability in [0, 1].
    rate: float = 0.0
    #: Bounded-retry budget for ring retransmission / disk retries.
    max_retries: int = 8
    #: Ring retransmission timeout for a *dropped* packet (ms); the
    #: n-th retry waits ``timeout_ms * backoff**n``.
    timeout_ms: float = 4.0
    backoff: float = 2.0
    #: Receiver NAK turnaround for a *corrupted* packet (ms) — the
    #: checksum fails on arrival, so retransmission starts much sooner
    #: than a silent drop's timeout.
    nak_delay_ms: float = 0.05
    #: Spacing between disk read retries (ms).
    retry_delay_ms: float = 1.0
    #: Explicit IP kill schedule for ``ip_kill``: ((ip_id, at_ms), ...).
    kills: Tuple[Tuple[int, float], ...] = ()
    #: Window for rate-drawn ``ip_kill`` times / ``ic_failure`` strikes.
    window_ms: float = 1000.0
    #: Delay after query activation before an armed ``ic_failure`` hits.
    at_ms: float = 250.0
    #: Failover budget per query for ``ic_failure``.
    max_failovers: int = 3

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"{self.kind}: rate must be in [0, 1], got {self.rate}")
        if self.max_retries < 0:
            raise FaultError(f"{self.kind}: max_retries must be >= 0")
        if self.timeout_ms <= 0 or self.nak_delay_ms <= 0 or self.retry_delay_ms <= 0:
            raise FaultError(f"{self.kind}: recovery delays must be positive")
        if self.backoff < 1.0:
            raise FaultError(f"{self.kind}: backoff must be >= 1")
        if self.kills and self.kind != "ip_kill":
            raise FaultError(f"{self.kind}: explicit kills apply only to ip_kill")
        if self.max_failovers < 0:
            raise FaultError(f"{self.kind}: max_failovers must be >= 0")
        # Tolerate list-of-lists from JSON round-trips.
        object.__setattr__(
            self, "kills", tuple((int(ip), float(at)) for ip, at in self.kills)
        )

    @property
    def armed(self) -> bool:
        """True when this spec can actually strike."""
        return self.rate > 0.0 or bool(self.kills)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the full set of armed fault specs for one run."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        seen: Dict[Tuple[str, str], FaultSpec] = {}
        for spec in self.specs:
            key = (spec.kind, spec.site)
            if key in seen:
                raise FaultError(
                    f"duplicate spec for kind={spec.kind!r} site={spec.site!r}"
                )
            seen[key] = spec

    @property
    def armed(self) -> bool:
        """True when at least one spec can strike (binds an injector)."""
        return any(spec.armed for spec in self.specs)

    def spec(self, kind: str, site: str = "*") -> Optional[FaultSpec]:
        """The spec governing ``kind`` at ``site``; exact site wins over "*"."""
        fallback: Optional[FaultSpec] = None
        for candidate in self.specs:
            if candidate.kind != kind:
                continue
            if candidate.site == site:
                return candidate
            if candidate.site == "*":
                fallback = candidate
        return fallback

    # -- serialization (sweep workers, experiment JSON) ----------------------

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict; round-trips through :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "specs": [asdict(spec) for spec in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        specs = tuple(FaultSpec(**spec) for spec in data.get("specs", ()))  # type: ignore[arg-type]
        return cls(seed=int(data.get("seed", 0)), specs=specs)  # type: ignore[call-overload]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


#: Ambient fault plan; read once by each Simulator at construction.
_ambient: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan simulators built right now should inject under (or None)."""
    return _ambient


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for simulators constructed inside the block.

    Mirrors :func:`repro.check.sanitizing`: the plan is captured at
    ``Simulator.__init__`` time, so the context need only cover machine
    construction — ``run()`` can happen outside it.
    """
    global _ambient
    previous = _ambient
    _ambient = plan
    try:
        yield plan
    finally:
        _ambient = previous
