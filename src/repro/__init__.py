"""dataflow-dbm: a reproduction of Boral & DeWitt's *Design Considerations
for Data-flow Database Machines* (SIGMOD 1980 / Wisconsin TR #369).

The library has four layers:

1. **Relational substrate** (:mod:`repro.relational`, :mod:`repro.query`,
   :mod:`repro.workload`): schemas, byte-accurate pages, relations, a
   predicate DSL, reference operators (the correctness oracle), query
   trees, and the paper's ten-query / 5.5 MB benchmark.
2. **Simulation kernel** (:mod:`repro.sim`): a deterministic
   discrete-event engine with FIFO resources and monitors.
3. **Machines** (:mod:`repro.direct`, :mod:`repro.ring`): the
   centralized-control DIRECT-style simulator used for the granularity
   study (Figure 3.1) and bandwidth curves (Figure 4.2), and the
   ring-based machine of Section 4 with its packet formats and broadcast
   join protocol.
4. **Analysis and experiments** (:mod:`repro.analysis`,
   :mod:`repro.experiments`): the closed-form models of Sections 3.3/4.1
   and one runnable experiment per table/figure.

Quickstart::

    from repro import (
        generate_benchmark_database, benchmark_queries, execute,
        DirectMachine, RingMachine,
    )

    db = generate_benchmark_database(scale=0.1)
    trees = benchmark_queries(db.catalog, db.relation_names)
    oracle = execute(trees[0], db.catalog)          # reference answer

    machine = RingMachine(db.catalog, processors=8, page_bytes=db.page_bytes)
    machine.submit(trees[0])
    report = machine.run()
    assert report.results[trees[0].name].same_rows_as(oracle)
"""

from repro.errors import ReproError
from repro.relational import (
    Attribute,
    Catalog,
    DataType,
    HeapFile,
    Page,
    Relation,
    Schema,
    attr,
    operators,
)
from repro.query import QueryTree, execute, explain, scan
from repro.query.builder import delete_from
from repro.workload import benchmark_queries, generate_benchmark_database
from repro.sim import Simulator
from repro.direct import DirectMachine, DirectReport, ExecModel, Granularity
from repro.direct.machine import run_benchmark
from repro.ring import RingMachine, RingReport
from repro.ring.machine import run_ring_benchmark

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Attribute",
    "DataType",
    "Schema",
    "Page",
    "Relation",
    "HeapFile",
    "Catalog",
    "attr",
    "operators",
    "QueryTree",
    "scan",
    "delete_from",
    "execute",
    "explain",
    "generate_benchmark_database",
    "benchmark_queries",
    "Simulator",
    "DirectMachine",
    "DirectReport",
    "ExecModel",
    "Granularity",
    "run_benchmark",
    "RingMachine",
    "RingReport",
    "run_ring_benchmark",
    "__version__",
]
