"""E1 / Figure 3.1: page- vs relation-level granularity.

The paper: "Using a benchmark containing ten queries ..., a relational
database containing 15 relations with a combined size of 5.5 megabytes,
and two memory cells for each processor, these two granularities were
compared.  The results are presented in Figure 3.1.  As illustrated by
this experiment ..., the page-level granularity generally outperforms
relational-level granularity by a factor of about two."

We sweep the processor count on the DIRECT simulator and report both
execution times and the ratio.  Expected shape: times fall with
processors and flatten; the ratio grows toward ~2 once the machine has
enough processors to expose relation-level's materialization stalls.

Each (processor count, granularity) cell is an independent simulator
build, so the sweep fans out over :func:`repro.sweep.map_points`
(``workers > 1`` parallelizes; results are byte-identical to serial).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.direct.machine import run_benchmark
from repro.direct import scheduler
from repro.experiments.common import (
    DEFAULTS,
    ExperimentResult,
    benchmark_workload,
    cached_benchmark_database,
)
from repro.sweep import map_points

#: Processor counts swept by default (the paper's axis is unlabeled in our
#: copy; 5..50 brackets the 50-IP anchor of Section 4.1).
DEFAULT_PROCESSORS = (5, 10, 20, 30, 40, 50)

#: Granularities compared, in per-point execution order.
_GRANULARITIES = (scheduler.PAGE, scheduler.RELATION)


def _point(
    processors: int,
    granularity: str,
    scale: Optional[float],
    selectivity: Optional[float],
) -> dict:
    """One sweep cell: the ten-query benchmark at one configuration.

    Module-level and returning plain numbers so it runs identically
    inline or in a sweep worker process.
    """
    db = cached_benchmark_database(scale=scale, page_bytes=DEFAULTS["direct_page_bytes"])
    trees = benchmark_workload(db, selectivity=selectivity)
    report = run_benchmark(
        db.catalog,
        trees,
        processors=processors,
        granularity=scheduler.granularity(granularity),
        page_bytes=DEFAULTS["direct_page_bytes"],
        cache_bytes=DEFAULTS["direct_cache_bytes"],
    )
    return {
        "elapsed_ms": report.elapsed_ms,
        "mbps": report.bandwidth_mbps(),
        "disk_bytes": report.disk_bytes,
    }


def run(
    processors: Sequence[int] = DEFAULT_PROCESSORS,
    scale: Optional[float] = None,
    selectivity: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the Figure 3.1 sweep and return its rows.

    Row fields: ``processors``, ``page_ms``, ``relation_ms``, ``ratio``,
    ``page_mbps`` (average interconnect bandwidth at page level).
    ``workers`` fans the (processors x granularity) grid out over worker
    processes; output is identical to the serial run.
    """
    db = cached_benchmark_database(scale=scale, page_bytes=DEFAULTS["direct_page_bytes"])
    result = ExperimentResult(
        experiment_id="E1 (Figure 3.1)",
        title="Comparison of page-level and relation-level granularities",
        parameters={
            "scale": scale if scale is not None else DEFAULTS["scale"],
            "selectivity": selectivity if selectivity is not None else DEFAULTS["selectivity"],
            "page_bytes": DEFAULTS["direct_page_bytes"],
            "cache_bytes": DEFAULTS["direct_cache_bytes"],
            "memory_cells": 2,
            "database_bytes": db.catalog.total_bytes,
        },
    )
    points = [
        dict(processors=procs, granularity=g.key, scale=scale, selectivity=selectivity)
        for procs in processors
        for g in _GRANULARITIES
    ]
    cells = map_points(_point, points, workers=workers)
    for i, procs in enumerate(processors):
        page = cells[2 * i]
        relation = cells[2 * i + 1]
        result.rows.append(
            {
                "processors": procs,
                "page_ms": round(page["elapsed_ms"], 1),
                "relation_ms": round(relation["elapsed_ms"], 1),
                "ratio": relation["elapsed_ms"] / page["elapsed_ms"],
                "page_mbps": page["mbps"],
                "page_disk_bytes": page["disk_bytes"],
                "relation_disk_bytes": relation["disk_bytes"],
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
