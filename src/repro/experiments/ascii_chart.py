"""Plain-text line charts for the figure experiments.

The paper's figures are hand-drawn curves; an open-source reproduction
should show the same curves without a plotting dependency.  These charts
render one or more named series over a shared numeric x-axis into a
fixed-size character grid, with per-series markers and a legend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Markers assigned to series in order.
_MARKERS = "*o+x#@%&"


def line_chart(
    title: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
) -> str:
    """Render ``series`` (name -> y values over ``x_values``) as text.

    >>> print(line_chart("t", "x", "y", [1, 2], {"a": [0.0, 1.0]})
    ...       )  # doctest: +SKIP
    """
    if not x_values or not series:
        return f"{title}\n(no data)"
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x_values)} x values"
            )

    all_y = [y for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_values), max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        return round((x - x_min) / (x_max - x_min) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_min) / (y_max - y_min) * (height - 1))

    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        points = [(col(x), row(y)) for x, y in zip(x_values, ys)]
        for (c0, r0), (c1, r1) in zip(points, points[1:]):
            for c, r in _segment(c0, r0, c1, r1):
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for c, r in points:
            grid[r][c] = marker

    lines: List[str] = [title, ""]
    y_top = _fmt(y_max)
    y_bottom = _fmt(y_min)
    gutter = max(len(y_top), len(y_bottom), len(y_label)) + 1
    for i, grid_row in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(gutter)
        elif i == height - 1:
            prefix = y_bottom.rjust(gutter)
        elif i == height // 2:
            prefix = y_label.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} |{''.join(grid_row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_axis = _fmt(x_min).ljust(width // 2) + _fmt(x_max).rjust(width - width // 2)
    lines.append(" " * gutter + "  " + x_axis)
    lines.append(" " * gutter + "  " + x_label.center(width))
    lines.append("")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * gutter + "  " + legend)
    return "\n".join(lines)


def _segment(c0: int, r0: int, c1: int, r1: int) -> List[Tuple[int, int]]:
    """Integer points along a line segment (Bresenham)."""
    points: List[Tuple[int, int]] = []
    dc, dr = abs(c1 - c0), -abs(r1 - r0)
    sc = 1 if c0 < c1 else -1
    sr = 1 if r0 < r1 else -1
    err = dc + dr
    c, r = c0, r0
    while True:
        points.append((c, r))
        if c == c1 and r == r1:
            return points
        e2 = 2 * err
        if e2 >= dr:
            err += dr
            c += sc
        if e2 <= dc:
            err += dc
            r += sr


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e7:
        return str(int(value))
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def figure_3_1_chart(rows: Sequence[dict]) -> str:
    """Figure 3.1 as the paper drew it: time vs processors, two curves."""
    return line_chart(
        title="Figure 3.1 — Comparison of Page-Level and Relation-Level Granularities",
        x_label="number of processors",
        y_label="exec ms",
        x_values=[r["processors"] for r in rows],
        series={
            "relation-level": [r["relation_ms"] for r in rows],
            "page-level": [r["page_ms"] for r in rows],
        },
    )


def figure_4_2_chart(rows: Sequence[dict]) -> str:
    """Figure 4.2: average bandwidth per level vs number of IPs."""
    return line_chart(
        title="Figure 4.2 — Bandwidth Requirements vs Number of IPs (average Mbps)",
        x_label="number of instruction processors",
        y_label="Mbps",
        x_values=[r["ips"] for r in rows],
        series={
            "outer ring": [r["outer_ring_mbps"] for r in rows],
            "cache level": [r["cache_level_mbps"] for r in rows],
            "disk level": [r["disk_level_mbps"] for r in rows],
        },
    )
