"""E13 (extension): requirement 5 — surviving disabled processors.

"The database machine design should permit the addition of additional
processors in a simple and straightforward manner and should be able to
survive an arbitrary number of disabled processors."  (Section 4.0)

This experiment runs the benchmark on the fault-tolerant ring machine
while killing a growing fraction of the IP pool mid-run, measuring the
graceful-degradation curve: every run must produce exactly the oracle's
rows; execution time should rise smoothly toward the
surviving-processor count's healthy baseline.

The kills are expressed as a :class:`repro.faults.FaultPlan` (an
``ip_kill`` spec with an explicit schedule) and the sweep cells fan out
over :func:`repro.sweep.map_points`, so ``workers > 1`` parallelizes the
kill-count grid with byte-identical output to the serial run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import MachineError
from repro.faults import FaultPlan, FaultSpec, injecting
from repro.query import execute
from repro.experiments.common import ExperimentResult
from repro.ring.machine import RingMachine
from repro.sweep import map_points
from repro.workload import benchmark_queries, generate_benchmark_database


def _sweep_point(
    killed: int,
    processors: int,
    kill_at_ms: float,
    scale: float,
    selectivity: float,
    seed: int,
    page_bytes: int,
) -> dict:
    """One degradation cell: the benchmark with ``killed`` IPs fail-stopping.

    Module-level (picklable) so :func:`map_points` can ship it to worker
    processes; the database generation is seeded, so every process
    materializes the identical workload and oracle.
    """
    db = generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)
    oracle = {
        t.name: execute(t, db.catalog)
        for t in benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)
    }
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                kind="ip_kill",
                kills=tuple(
                    (ip_id, kill_at_ms + 50.0 * ip_id) for ip_id in range(1, killed + 1)
                ),
            ),
        ),
    )
    with injecting(plan):
        machine = RingMachine(
            db.catalog,
            processors=processors,
            controllers=16,
            page_bytes=page_bytes,
            fault_tolerant=True,
            watchdog_interval_ms=100.0,
        )
    for tree in benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity):
        machine.submit(tree)
    report = machine.run()
    correct = all(
        report.results[name].same_rows_as(expected) for name, expected in oracle.items()
    )
    return {"elapsed_ms": report.elapsed_ms, "all_correct": correct}


def run(
    processors: int = 8,
    kill_counts: Sequence[int] = (0, 2, 4, 6),
    kill_at_ms: float = 500.0,
    scale: float = 0.1,
    selectivity: float = 0.3,
    seed: int = 1979,
    page_bytes: int = 2048,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Degradation sweep: kill ``k`` of ``processors`` IPs at ``kill_at_ms``.

    Row fields: ``killed``, ``survivors``, ``elapsed_ms``, ``slowdown``
    (vs the zero-failure run), ``all_correct``.
    """
    for killed in kill_counts:
        if killed >= processors:
            raise MachineError("must leave at least one survivor")
    result = ExperimentResult(
        experiment_id="E13 (extension)",
        title="Survival of disabled processors (requirement 5)",
        parameters={
            "processors": processors,
            "kill_at_ms": kill_at_ms,
            "scale": scale,
            "selectivity": selectivity,
        },
    )
    points = [
        dict(
            killed=killed,
            processors=processors,
            kill_at_ms=kill_at_ms,
            scale=scale,
            selectivity=selectivity,
            seed=seed,
            page_bytes=page_bytes,
        )
        for killed in kill_counts
    ]
    cells = map_points(_sweep_point, points, workers=workers)
    baseline: Optional[float] = None
    for killed, cell in zip(kill_counts, cells):
        if baseline is None:
            baseline = cell["elapsed_ms"]
        result.rows.append(
            {
                "killed": killed,
                "survivors": processors - killed,
                "elapsed_ms": round(cell["elapsed_ms"], 1),
                "slowdown": cell["elapsed_ms"] / baseline,
                "all_correct": cell["all_correct"],
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
