"""Shared experiment infrastructure: result containers and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.workload import generate_benchmark_database, benchmark_queries
from repro.workload.generator import BenchmarkDatabase


@dataclass
class ExperimentResult:
    """Rows plus enough metadata to regenerate and cite the run."""

    experiment_id: str
    title: str
    parameters: Dict[str, object]
    rows: List[dict] = field(default_factory=list)

    def render(self) -> str:
        """The experiment as an ASCII table with a header block."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "parameters: " + ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items())),
            "",
            render_table(self.rows),
        ]
        return "\n".join(lines)

    def column(self, name: str) -> List:
        """One column of the result rows."""
        return [row[name] for row in self.rows]


def render_table(rows: Sequence[dict]) -> str:
    """Fixed-width ASCII table from row dictionaries (union of keys)."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), max(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in rendered)
    return "\n".join([header, rule, body])


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


#: Default workload parameters for the headline experiments.  Documented
#: here once so every experiment and EXPERIMENTS.md agree; see DESIGN.md §6
#: for why these specific values were chosen (the paper does not publish
#: selectivities or its simulator's page size).
DEFAULTS = {
    "scale": 1.0,
    "seed": 1979,
    "selectivity": 0.25,
    "direct_page_bytes": 4096,
    "direct_cache_bytes": 2 * 1024 * 1024,
    "ring_page_bytes": 16384,
    "ring_cache_bytes": 2 * 1024 * 1024,
}


def benchmark_database(scale: float = None, page_bytes: int = None) -> BenchmarkDatabase:
    """The Section 3.2 database at experiment defaults (overridable)."""
    return generate_benchmark_database(
        scale=scale if scale is not None else DEFAULTS["scale"],
        seed=DEFAULTS["seed"],
        page_bytes=page_bytes or DEFAULTS["direct_page_bytes"],
    )


def benchmark_workload(db: BenchmarkDatabase, selectivity: float = None):
    """Fresh query trees for the ten-query benchmark (trees are stateful —
    node ids are unique per construction — so each run builds its own)."""
    return benchmark_queries(
        db.catalog,
        db.relation_names,
        selectivity=selectivity if selectivity is not None else DEFAULTS["selectivity"],
    )
