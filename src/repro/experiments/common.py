"""Shared experiment infrastructure: result containers, table rendering,
and registry-backed metric reports.

Per-run measurement lives in the :mod:`repro.obs` registry (the machines
publish stable metric names at the end of every run); the helpers here
*read* the registry instead of each experiment hand-rolling its own
counters.  ``repro metrics <experiment>`` is built on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Sequence

from repro import hw
from repro.obs import MetricsRegistry, metric_key, parse_metric_key
from repro.workload import generate_benchmark_database, benchmark_queries
from repro.workload.generator import BenchmarkDatabase


@dataclass
class ExperimentResult:
    """Rows plus enough metadata to regenerate and cite the run."""

    experiment_id: str
    title: str
    parameters: Dict[str, object]
    rows: List[dict] = field(default_factory=list)

    def render(self) -> str:
        """The experiment as an ASCII table with a header block."""
        lines = [
            f"== {self.experiment_id}: {self.title} ==",
            "parameters: " + ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items())),
            "",
            render_table(self.rows),
        ]
        return "\n".join(lines)

    def column(self, name: str) -> List:
        """One column of the result rows."""
        return [row[name] for row in self.rows]


def render_table(rows: Sequence[dict]) -> str:
    """Fixed-width ASCII table from row dictionaries (union of keys)."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), max(len(r[i]) for r in rendered)) for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(v.rjust(w) for v, w in zip(r, widths)) for r in rendered)
    return "\n".join([header, rule, body])


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


#: Default workload parameters for the headline experiments.  Documented
#: here once so every experiment and EXPERIMENTS.md agree; see DESIGN.md §6
#: for why these specific values were chosen (the paper does not publish
#: selectivities or its simulator's page size).
DEFAULTS = {
    "scale": 1.0,
    "seed": 1979,
    "selectivity": 0.25,
    "direct_page_bytes": 4096,
    "direct_cache_bytes": 2 * 1024 * 1024,
    "ring_page_bytes": 16384,
    "ring_cache_bytes": 2 * 1024 * 1024,
}


def benchmark_database(scale: float = None, page_bytes: int = None) -> BenchmarkDatabase:
    """The Section 3.2 database at experiment defaults (overridable)."""
    return generate_benchmark_database(
        scale=scale if scale is not None else DEFAULTS["scale"],
        seed=DEFAULTS["seed"],
        page_bytes=page_bytes or DEFAULTS["direct_page_bytes"],
    )


@lru_cache(maxsize=8)
def cached_benchmark_database(scale: float = None, page_bytes: int = None) -> BenchmarkDatabase:
    """:func:`benchmark_database`, memoized per process.

    Generation is seeded, so every process — the serial runner and each
    sweep worker alike — materializes an identical database.  The catalog
    is read-only to the machines (each run packs its own page images and
    builds fresh query trees), so sweep points can share one instance.
    """
    return benchmark_database(scale=scale, page_bytes=page_bytes)


#: The ring technologies priced in Section 4, as name -> raw Mbps.  The
#: metrics report compares each run's offered load against all three.
RING_TECHNOLOGY_MBPS = {
    "ttl_40mbps": hw.OUTER_RING_TTL.bit_rate_mbps,
    "fiber_400mbps": hw.OUTER_RING_FIBER.bit_rate_mbps,
    "ecl_1gbps": hw.OUTER_RING_ECL.bit_rate_mbps,
}


def ring_technology_headroom(offered_mbps: float) -> Dict[str, float]:
    """Fraction of each Section 4 ring technology ``offered_mbps`` consumes."""
    return {
        tech: offered_mbps / capacity
        for tech, capacity in RING_TECHNOLOGY_MBPS.items()
    }


def _run_sort_key(value: str):
    """Order ``run`` label values numerically where possible."""
    try:
        return (0, int(value))
    except (TypeError, ValueError):
        return (1, str(value))


def per_query_metrics(registry: MetricsRegistry) -> List[dict]:
    """Per-query rows read back from the registry's stable gauge names.

    A sweep publishes gauges from many runs (``run`` label); each row is
    one (run, query) pair, joined with that run's machine- and ring-level
    utilization so the row stands alone.
    """
    gauges = registry.report()["gauges"]
    # Run-level context to join onto every query row of the same run.
    run_context: Dict[str, dict] = {}
    for key, value in gauges.items():
        name, labels = parse_metric_key(key)
        run = labels.get("run")
        if run is None:
            continue
        context = run_context.setdefault(run, {})
        if name in ("machine.ip_utilization", "machine.processor_utilization"):
            context["machine_utilization"] = value
        elif name == "ring.utilization":
            context[f"ring_utilization.{labels['ring']}"] = value
    queries: Dict[tuple, dict] = {}
    for key, value in gauges.items():
        name, labels = parse_metric_key(key)
        query = labels.get("query")
        if query is None:
            continue
        run = labels.get("run", "")
        row = queries.setdefault((run, query), {"run": run, "query": query})
        row[name] = value
    rows = []
    for run, query in sorted(queries, key=lambda k: (_run_sort_key(k[0]), k[1])):
        row = queries[(run, query)]
        row.update(run_context.get(run, {}))
        rows.append(row)
    return rows


def metrics_report(registry: MetricsRegistry, experiment_id: str = "") -> dict:
    """The machine-readable per-run report ``repro metrics`` emits.

    Combines the raw registry snapshot with the derived views every
    experiment used to compute by hand: per-query rows, resource queue
    statistics, and each ring's offered load against the three priced
    ring technologies (Section 4).  Sweeps publish one entry per ``run``
    label.
    """
    snapshot = registry.report()
    gauges = snapshot["gauges"]
    rings = []
    for key in sorted(gauges):
        name, labels = parse_metric_key(key)
        if name != "ring.offered_mbps":
            continue
        offered = gauges[key]

        def sibling(gauge_name: str) -> float:
            return gauges.get(metric_key(gauge_name, labels), 0.0)

        rings.append(
            {
                "ring": labels["ring"],
                "run": labels.get("run", ""),
                "offered_mbps": offered,
                "utilization": sibling("ring.utilization"),
                "peak_queue": sibling("ring.peak_queue"),
                "mean_queue_wait_ms": sibling("ring.mean_queue_wait_ms"),
                "technology_headroom": ring_technology_headroom(offered),
            }
        )
    rings.sort(key=lambda r: (_run_sort_key(r["run"]), r["ring"]))
    queues = []
    for key, stats in snapshot["series"].items():
        name, labels = parse_metric_key(key)
        if name != "resource.queue_depth":
            continue
        entry = {"resource": labels["resource"], "run": labels.get("run", "")}
        entry.update(stats)
        queues.append(entry)
    queues.sort(key=lambda q: (_run_sort_key(q["run"]), q["resource"]))
    return {
        "experiment": experiment_id,
        "queries": per_query_metrics(registry),
        "rings": rings,
        "queue_depths": queues,
        "metrics": snapshot,
    }


def benchmark_workload(db: BenchmarkDatabase, selectivity: float = None):
    """Fresh query trees for the ten-query benchmark (trees are stateful —
    node ids are unique per construction — so each run builds its own)."""
    return benchmark_queries(
        db.catalog,
        db.relation_names,
        selectivity=selectivity if selectivity is not None else DEFAULTS["selectivity"],
    )
