"""E2 / Section 3.3: tuple- vs page-level arbitration traffic (analytic).

Reproduces the paper's worked example exactly — n*m*(200+c) bytes at tuple
level vs n*m*(20+c/100) at page level with 1,000-byte pages (ratio ~10),
and another order of magnitude at 10,000-byte pages — then generalizes
over overhead values.
"""

from __future__ import annotations

from typing import Sequence

from repro import hw
from repro.analysis.bandwidth import traffic_comparison, traffic_ratio
from repro.experiments.common import ExperimentResult

#: Defaults mirror the paper's example: 100-byte tuples; we pick n=m=1000
#: tuples (the paper leaves n, m symbolic — the ratio is independent).
DEFAULT_N = 1000
DEFAULT_M = 1000


def run(
    n_outer: int = DEFAULT_N,
    m_inner: int = DEFAULT_M,
    page_sizes: Sequence[int] = (1_000, 10_000),
    overhead_values: Sequence[int] = (0, 20, 100),
) -> ExperimentResult:
    """The Section 3.3 traffic table.

    Row fields: ``granularity``, ``page_bytes``, ``overhead``,
    ``packets``, ``bytes``, ``ratio_vs_tuple``.
    """
    result = ExperimentResult(
        experiment_id="E2 (Section 3.3)",
        title="Arbitration-network traffic: tuple vs page granularity",
        parameters={
            "n_outer": n_outer,
            "m_inner": m_inner,
            "tuple_bytes": hw.ANALYSIS_TUPLE_BYTES,
        },
    )
    result.rows = traffic_comparison(
        n_outer,
        m_inner,
        tuple_bytes=hw.ANALYSIS_TUPLE_BYTES,
        page_sizes=list(page_sizes),
        overhead_values=list(overhead_values),
    )
    return result


def paper_anchor_ratio() -> float:
    """The paper's headline number: ~10x at 1,000-byte pages, zero overhead."""
    return traffic_ratio(DEFAULT_N, DEFAULT_M, page_bytes=1_000, overhead_bytes=0)


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())
    print(f"\npaper anchor (1KB pages, c=0): tuple/page ratio = {paper_anchor_ratio():.1f}")


if __name__ == "__main__":  # pragma: no cover
    main()
