"""E7 / Section 4.1: ring technology sizing against measured demand.

Combines the Figure 4.2 sweep with the technology table: which of the
paper's ring options (40 Mbps TTL, 400 Mbps fiber, 1 Gbps ECL) carries
each configuration, and where the TTL ring's ~50-IP limit falls under a
linear extrapolation of measured per-IP demand.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import hw
from repro.analysis.ring_sizing import linear_demand, max_ips_supported, sizing_table
from repro.experiments import figure_4_2
from repro.experiments.common import ExperimentResult


def run(
    ips: Sequence[int] = figure_4_2.DEFAULT_IPS,
    scale: Optional[float] = None,
    selectivity: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Measure demand (via E3), then evaluate each ring technology.

    Adds a closing row with the TTL ring's supported IP count under the
    per-IP demand measured at the smallest configuration (conservative:
    small configurations have the highest per-IP load).  ``workers`` is
    forwarded to the underlying E3 sweep.
    """
    sweep = figure_4_2.run(ips=ips, scale=scale, selectivity=selectivity, workers=workers)
    demand_points = [(row["ips"], row["outer_ring_mbps"]) for row in sweep.rows]
    result = ExperimentResult(
        experiment_id="E7 (Section 4.1)",
        title="Ring technology feasibility at measured demand",
        parameters=dict(sweep.parameters),
    )
    result.rows = sizing_table(demand_points)

    # Size at the largest configuration's per-IP demand (the paper's
    # framing: "sufficient for up to 50 instruction processors"), and also
    # record the conservative bound from the heaviest per-IP point.
    n_last, mbps_last = demand_points[-1]
    per_ip = mbps_last / n_last
    worst_per_ip = max(mbps / n for n, mbps in demand_points)
    result.parameters["per_ip_demand_mbps"] = round(per_ip, 3)
    result.parameters["worst_per_ip_demand_mbps"] = round(worst_per_ip, 3)
    result.parameters["ttl_ring_ip_limit_linear"] = max_ips_supported(
        hw.OUTER_RING_TTL, linear_demand(per_ip)
    )
    result.parameters["ttl_ring_ip_limit_conservative"] = max_ips_supported(
        hw.OUTER_RING_TTL, linear_demand(worst_per_ip)
    )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    res = run()
    print(res.render())
    print(
        f"\nTTL 40 Mbps ring supports ~{res.parameters['ttl_ring_ip_limit_linear']} IPs "
        f"at {res.parameters['per_ip_demand_mbps']} Mbps/IP (paper: ~50)"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
