"""E3 / Figure 4.2: bandwidth requirements vs number of IPs.

Paper setup: 16K-byte operands, LSI-11 IPs (16K page in 33 ms), Intel 2314
CCD cache, two IBM 3330 drives, page-level granularity; "the bandwidth for
each of the different processor levels was obtained by dividing the total
number of bytes transferred by the execution time of the benchmark" —
average, not peak.

We run the benchmark on the *ring machine* (the design Figure 4.2 sizes)
across IP counts, reporting the outer-ring offered load alongside the
storage-hierarchy levels, and check the paper's anchors: <= 40 Mbps
through 50 IPs, <= 100 Mbps for larger configurations.

Each IP count is an independent simulator build, so the sweep fans out
over :func:`repro.sweep.map_points` (``workers > 1`` parallelizes;
results are byte-identical to serial).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.direct import traffic as tlevels
from repro.experiments.common import (
    DEFAULTS,
    ExperimentResult,
    benchmark_workload,
    cached_benchmark_database,
)
from repro.ring.machine import run_ring_benchmark
from repro.sweep import map_points

#: The paper's anchor points.
TTL_RING_MBPS = 40.0
LARGE_CONFIG_MBPS = 100.0

DEFAULT_IPS = (5, 10, 25, 50, 75, 100)


def _point(
    ips: int,
    controllers: int,
    scale: Optional[float],
    selectivity: Optional[float],
) -> dict:
    """One sweep cell: the ring-machine benchmark at one IP count."""
    db = cached_benchmark_database(scale=scale, page_bytes=DEFAULTS["ring_page_bytes"])
    trees = benchmark_workload(db, selectivity=selectivity)
    report = run_ring_benchmark(
        db.catalog,
        trees,
        processors=ips,
        controllers=controllers,
        page_bytes=DEFAULTS["ring_page_bytes"],
        cache_bytes=DEFAULTS["ring_cache_bytes"],
    )
    elapsed_s = report.elapsed_ms / 1000.0
    cache_bytes = (
        report.traffic[tlevels.CACHE_TO_PROC] + report.traffic[tlevels.PROC_TO_CACHE]
    )
    disk_bytes = (
        report.traffic[tlevels.DISK_TO_CACHE] + report.traffic[tlevels.CACHE_TO_DISK]
    )
    return {
        "ips": ips,
        "elapsed_ms": round(report.elapsed_ms, 1),
        "outer_ring_mbps": report.outer_ring_mbps,
        "inner_ring_mbps": report.inner_ring_mbps,
        "cache_level_mbps": cache_bytes * 8.0 / 1e6 / elapsed_s,
        "disk_level_mbps": disk_bytes * 8.0 / 1e6 / elapsed_s,
        "fits_40mbps": report.outer_ring_mbps <= TTL_RING_MBPS,
        "fits_100mbps": report.outer_ring_mbps <= LARGE_CONFIG_MBPS,
    }


def run(
    ips: Sequence[int] = DEFAULT_IPS,
    scale: Optional[float] = None,
    selectivity: Optional[float] = None,
    controllers: int = 24,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """The Figure 4.2 sweep on the ring machine.

    Row fields: ``ips``, ``elapsed_ms``, ``outer_ring_mbps``,
    ``inner_ring_mbps``, ``cache_level_mbps``, ``disk_level_mbps``,
    ``fits_40mbps``, ``fits_100mbps``.  ``workers`` fans the IP counts
    out over worker processes; output is identical to the serial run.
    """
    db = cached_benchmark_database(scale=scale, page_bytes=DEFAULTS["ring_page_bytes"])
    result = ExperimentResult(
        experiment_id="E3 (Figure 4.2)",
        title="Average bandwidth by level vs number of instruction processors",
        parameters={
            "scale": scale if scale is not None else DEFAULTS["scale"],
            "selectivity": selectivity if selectivity is not None else DEFAULTS["selectivity"],
            "page_bytes": DEFAULTS["ring_page_bytes"],
            "controllers": controllers,
            "database_bytes": db.catalog.total_bytes,
        },
    )
    points = [
        dict(ips=n, controllers=controllers, scale=scale, selectivity=selectivity)
        for n in ips
    ]
    result.rows = map_points(_point, points, workers=workers)
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
