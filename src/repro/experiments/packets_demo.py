"""E4 / Figures 4.3-4.5: packet format round-trip exhibit.

Builds one of each packet type over real page bytes, encodes, decodes,
and reports field-level fidelity plus wire sizes (the numbers the
Section 3.3 overhead constant ``c`` abstracts).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.relational.page import Page
from repro.relational.schema import DataType, Schema
from repro.ring.packets import (
    ControlMessage,
    ControlPacket,
    InstructionPacket,
    ResultPacket,
    SourceOperand,
    instruction_packet_bytes,
    result_packet_bytes,
)

_DEMO_SCHEMA = Schema.build(
    ("key", DataType.INT), ("b", DataType.INT), ("pad", DataType.CHAR, 16)
)


def _demo_page(rows: int, page_bytes: int = 512) -> Page:
    page = Page(_DEMO_SCHEMA, page_bytes)
    for i in range(rows):
        page.append((i, i * 7, f"r{i}"))
    return page


def run(page_bytes: int = 512, rows: int = 8) -> ExperimentResult:
    """Round-trip each packet type; rows report sizes and fidelity."""
    result = ExperimentResult(
        experiment_id="E4 (Figures 4.3-4.5)",
        title="Packet format round trips and wire sizes",
        parameters={"page_bytes": page_bytes, "rows_per_page": rows},
    )
    page = _demo_page(rows, page_bytes)
    raw = page.to_bytes()

    instruction = InstructionPacket(
        ip_id=7,
        query_id=42,
        sender_ic=3,
        destination_ic=5,
        flush_when_done=True,
        opcode="join",
        result_relation="joined",
        result_schema=_DEMO_SCHEMA.concat_unique(_DEMO_SCHEMA),
        operands=[
            SourceOperand("outer_rel", _DEMO_SCHEMA, raw),
            SourceOperand("inner_rel", _DEMO_SCHEMA, raw),
        ],
        tag=11,
    )
    encoded = instruction.encode()
    decoded = InstructionPacket.decode(encoded)
    predicted = instruction_packet_bytes(
        instruction.result_schema,
        [(_DEMO_SCHEMA, len(raw)), (_DEMO_SCHEMA, len(raw))],
    )
    result.rows.append(
        {
            "packet": "instruction (Fig 4.3)",
            "wire_bytes": len(encoded),
            "predicted_bytes": predicted,
            "roundtrip_ok": decoded == instruction,
        }
    )

    result_packet = ResultPacket(ic_id=5, relation_name="joined", page_bytes=raw)
    encoded = result_packet.encode()
    decoded_r = ResultPacket.decode(encoded)
    result.rows.append(
        {
            "packet": "result (Fig 4.4)",
            "wire_bytes": len(encoded),
            "predicted_bytes": result_packet_bytes(len(raw)),
            "roundtrip_ok": decoded_r == result_packet,
        }
    )

    control = ControlPacket(
        ic_id=3, sender_ip=7, message=ControlMessage.REQUEST_INNER, argument=2
    )
    encoded = control.encode()
    decoded_c = ControlPacket.decode(encoded)
    result.rows.append(
        {
            "packet": "control (Fig 4.5)",
            "wire_bytes": len(encoded),
            "predicted_bytes": control.wire_bytes,
            "roundtrip_ok": decoded_c == control,
        }
    )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
