"""E16 (extension): latency decomposition vs load — where the time goes.

E15's saturation curve shows *that* p99 latency diverges past the knee;
this experiment shows *why*.  Each cell reruns the serving loop with an
armed :class:`repro.obs.spans.SpanCollector` and attributes every
completed query's end-to-end latency into the five critical-path buckets
(queueing / service / transit / disk / retransmission).  Under light
load the mean latency is service-dominated — the machine itself is the
path.  Past the knee the admission queue takes over: the queueing share
climbs toward 1 while the absolute service time barely moves, the
classic open-loop overload signature, now visible per bucket.

Span collection is armed *inside* the point function (a local collector
per cell), so cells stay independent and the sweep still fans out over
worker processes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.obs.critical_path import BUCKETS, explain
from repro.obs.spans import SpanCollector, collecting
from repro.serve import ServeConfig, serve
from repro.sweep import map_points

#: Offered rates straddling the default ring machine's knee at the quick
#: scale: comfortably under capacity (service-dominated), past the knee,
#: deep in overload (queueing-dominated).
DEFAULT_RATES = (2.0, 10.0, 40.0)


def _point(
    machine: str,
    rate: float,
    duration_ms: float,
    seed: int,
    scale: float,
    selectivity: float,
    processors: int,
    max_inflight: int,
    queue_limit: int,
) -> dict:
    """One cell: a traced serving run plus its explain-latency report.

    Module-level so ``map_points`` can pickle it; the collector is local
    to the cell, so parallel workers never share span state.
    """
    config = ServeConfig(
        machine=machine,
        rate_qps=rate,
        duration_ms=duration_ms,
        seed=seed,
        scale=scale,
        selectivity=selectivity,
        processors=processors,
        max_inflight=max_inflight,
        queue_limit=queue_limit,
    )
    collector = SpanCollector()
    with collecting(collector):
        slo = serve(config)
    return {"slo": slo, "explain": explain(collector, top=1)}


def run(
    machines: Sequence[str] = ("ring",),
    rates: Sequence[float] = DEFAULT_RATES,
    duration_ms: float = 3000.0,
    seed: int = 1979,
    scale: float = 0.05,
    selectivity: float = 0.1,
    processors: int = 8,
    max_inflight: int = 8,
    queue_limit: int = 64,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep offered rate x machine; report the per-bucket latency shares.

    Row fields: ``machine``, ``rate_qps``, ``p99_ms`` (end to end), one
    ``<bucket>_share`` column per bucket (fraction of mean latency), and
    ``dominant`` — the bucket carrying the largest share, which flips
    from service to queueing as the rate crosses the knee.
    """
    result = ExperimentResult(
        experiment_id="E16 (extension)",
        title="Latency decomposition vs load: critical-path bucket shares",
        parameters={
            "duration_ms": duration_ms,
            "scale": scale,
            "selectivity": selectivity,
            "seed": seed,
            "processors": processors,
            "max_inflight": max_inflight,
            "queue_limit": queue_limit,
        },
    )
    grid = [(machine, rate) for machine in machines for rate in rates]
    points = [
        dict(
            machine=machine,
            rate=rate,
            duration_ms=duration_ms,
            seed=seed,
            scale=scale,
            selectivity=selectivity,
            processors=processors,
            max_inflight=max_inflight,
            queue_limit=queue_limit,
        )
        for machine, rate in grid
    ]
    cells = map_points(_point, points, workers=workers)
    for (machine, rate), cell in zip(grid, cells):
        report = cell["explain"]
        shares = {kind: report["buckets"][kind]["share"] for kind in BUCKETS}
        dominant = max(BUCKETS, key=lambda kind: (shares[kind], kind))
        row = {
            "machine": machine,
            "rate_qps": rate,
            "queries": report["queries"],
            "p99_ms": report["end_to_end"]["p99_ms"],
        }
        for kind in BUCKETS:
            row[f"{kind}_share"] = shares[kind]
        row["dominant"] = dominant
        result.rows.append(row)
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
