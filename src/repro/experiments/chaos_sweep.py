"""E14 (extension): chaos sweep — every fault class x rate x machine.

Requirement 5 of Section 4.0 asks that the machine "survive an arbitrary
number of disabled processors"; the fault-injection subsystem
(:mod:`repro.faults`) generalizes that to lossy rings, transient disk
errors, poisoned cache frames, and fail-stopped ICs/IPs.  This
experiment drives the ten-query benchmark through a grid of
``(machine, fault class, fault rate)`` cells and checks **every** cell
against the sequential oracle: chaos may slow the run down (retransmits,
retries, failovers), but it must never change a single result row.

Each cell runs under a seeded :class:`repro.faults.FaultPlan`, so the
whole grid is deterministic — same seed, same strikes, byte-identical
rows — and fans out over :func:`repro.sweep.map_points` (``workers > 1``
parallelizes with identical output).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec, injecting
from repro.query import execute
from repro.direct.machine import DirectMachine
from repro.experiments.common import ExperimentResult
from repro.ring.machine import RingMachine
from repro.sweep import map_points
from repro.workload import benchmark_queries, generate_benchmark_database

#: Fault classes that exist on each machine.  The DIRECT machine has no
#: rings, ICs, or IPs to break — only its storage hierarchy.
MACHINE_FAULTS: Dict[str, Tuple[str, ...]] = {
    "ring": FAULT_KINDS,
    "direct": ("disk_read_error", "cache_poison"),
}

#: Counter names that represent a successful recovery action.
_RECOVERY_COUNTERS = (
    "ring.retransmit",
    "disk.retry",
    "cache.refetch",
    "ic.failover",
    "ip.kill",
)


def _spec_for(fault: str, rate: float) -> FaultSpec:
    """The spec one chaos cell arms for ``fault`` at ``rate``."""
    if fault == "ip_kill":
        return FaultSpec(kind="ip_kill", rate=rate, window_ms=500.0)
    if fault == "ic_failure":
        return FaultSpec(kind="ic_failure", rate=rate, at_ms=50.0, max_failovers=5)
    return FaultSpec(kind=fault, rate=rate)


def run_faulted_benchmark(
    machine: str,
    plan: FaultPlan,
    scale: float = 0.05,
    selectivity: float = 0.3,
    seed: int = 2027,
    page_bytes: int = 2048,
    processors: int = 8,
) -> dict:
    """Run the ten-query benchmark on ``machine`` under ``plan``.

    Returns a JSON-safe summary: ``elapsed_ms``, ``events``,
    ``all_correct`` (against the sequential oracle), ``result_rows``,
    and the injector's recovery ``counters``.  Shared by the chaos sweep
    cells and the ``repro faults`` CLI command.
    """
    if machine not in MACHINE_FAULTS:
        raise FaultError(f"unknown machine {machine!r}; choose from {sorted(MACHINE_FAULTS)}")
    db = generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)
    oracle = {
        t.name: execute(t, db.catalog)
        for t in benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)
    }
    trees = benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)
    if machine == "ring":
        with injecting(plan):
            rig = RingMachine(
                db.catalog,
                processors=processors,
                controllers=16,
                page_bytes=page_bytes,
                fault_tolerant=True,
                watchdog_interval_ms=100.0,
            )
        for tree in trees:
            rig.submit(tree)
        report = rig.run()
        sim = rig.sim
    else:
        with injecting(plan):
            dm = DirectMachine(db.catalog, processors=processors, page_bytes=page_bytes)
        for tree in trees:
            dm.submit(tree)
        report = dm.run()
        sim = dm.sim
    results = report.results
    elapsed = report.elapsed_ms
    events = report.events_processed
    correct = all(results[name].same_rows_as(expected) for name, expected in oracle.items())
    counters: Dict[str, int] = {}
    if sim.faults is not None:
        counters = sim.faults.snapshot()
    return {
        "elapsed_ms": elapsed,
        "events": events,
        "all_correct": correct,
        "result_rows": sum(len(list(r.rows())) for r in results.values()),
        "counters": counters,
    }


def _point(
    machine: str,
    fault: str,
    rate: float,
    scale: float,
    selectivity: float,
    seed: int,
    page_bytes: int,
    processors: int,
) -> dict:
    """One chaos cell (module-level so ``map_points`` can pickle it)."""
    plan = FaultPlan(seed=seed, specs=(_spec_for(fault, rate),))
    cell = run_faulted_benchmark(
        machine,
        plan,
        scale=scale,
        selectivity=selectivity,
        seed=seed,
        page_bytes=page_bytes,
        processors=processors,
    )
    # The injector snapshot is keyed "name[site]"; fold it into one
    # recovery total so rows stay narrow.
    recoveries = 0
    for key, value in cell["counters"].items():
        name = key.split("[", 1)[0]
        if name in _RECOVERY_COUNTERS:
            recoveries += value
    cell["recoveries"] = recoveries
    return cell


def run(
    machines: Sequence[str] = ("ring", "direct"),
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    fault_classes: Optional[Sequence[str]] = None,
    scale: float = 0.05,
    selectivity: float = 0.3,
    seed: int = 2027,
    page_bytes: int = 2048,
    processors: int = 8,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """The chaos grid: each machine's fault classes x ``rates``.

    Row fields: ``machine``, ``fault``, ``rate``, ``elapsed_ms``,
    ``slowdown`` (vs the same machine+fault's lowest-rate cell),
    ``recoveries`` (retransmits + retries + refetches + failovers +
    kills), ``all_correct``.  Every cell — including the faulted ones —
    must match the sequential oracle exactly.
    """
    result = ExperimentResult(
        experiment_id="E14 (extension)",
        title="Chaos sweep: correctness under injected faults (requirement 5)",
        parameters={
            "scale": scale,
            "selectivity": selectivity,
            "seed": seed,
            "processors": processors,
            "rates": tuple(rates),
        },
    )
    grid = []
    for machine in machines:
        if machine not in MACHINE_FAULTS:
            raise FaultError(
                f"unknown machine {machine!r}; choose from {sorted(MACHINE_FAULTS)}"
            )
        for fault in MACHINE_FAULTS[machine]:
            if fault_classes is not None and fault not in fault_classes:
                continue
            for rate in rates:
                grid.append((machine, fault, rate))
    points = [
        dict(
            machine=machine,
            fault=fault,
            rate=rate,
            scale=scale,
            selectivity=selectivity,
            seed=seed,
            page_bytes=page_bytes,
            processors=processors,
        )
        for machine, fault, rate in grid
    ]
    cells = map_points(_point, points, workers=workers)
    baselines: Dict[Tuple[str, str], float] = {}
    for (machine, fault, rate), cell in zip(grid, cells):
        baseline = baselines.setdefault((machine, fault), cell["elapsed_ms"])
        result.rows.append(
            {
                "machine": machine,
                "fault": fault,
                "rate": rate,
                "elapsed_ms": round(cell["elapsed_ms"], 1),
                "slowdown": cell["elapsed_ms"] / baseline,
                "recoveries": cell["recoveries"],
                "all_correct": cell["all_correct"],
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
