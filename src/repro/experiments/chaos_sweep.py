"""E14 (extension): chaos sweep — every fault class x rate x machine.

Requirement 5 of Section 4.0 asks that the machine "survive an arbitrary
number of disabled processors"; the fault-injection subsystem
(:mod:`repro.faults`) generalizes that to lossy rings, transient disk
errors, poisoned cache frames, and fail-stopped ICs/IPs.  This
experiment drives the ten-query benchmark through a grid of
``(machine, fault class, fault rate)`` cells and checks **every** cell
against the sequential oracle: chaos may slow the run down (retransmits,
retries, failovers), but it must never change a single result row.

Each cell runs under a seeded :class:`repro.faults.FaultPlan`, so the
whole grid is deterministic — same seed, same strikes, byte-identical
rows — and fans out over :func:`repro.sweep.map_points` (``workers > 1``
parallelizes with identical output).

The grid has two workload rows per (machine, fault, rate) coordinate:

* ``read`` — the original ten-query benchmark, checked row-for-row
  against the sequential oracle;
* ``write`` — a mixed read/write transaction stream with the WAL armed,
  checked **byte-for-byte**: after the run the stable store is
  recovered and compared against an interpreter replay of the committed
  set (:func:`repro.recovery.harness.oracle_bytes`).

The three *stateful* fault classes (``machine_crash``, ``torn_page``,
``log_tail_corrupt``) are whole-machine power-cut models, not
survivable soft faults; they live in E17's recovery sweep
(:mod:`repro.experiments.recovery_sweep`), not here.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec, injecting
from repro.query import execute
from repro.direct.machine import DirectMachine
from repro.experiments.common import ExperimentResult
from repro.ring.machine import RingMachine
from repro.sweep import map_points
from repro.workload import benchmark_queries, generate_benchmark_database

#: Power-cut fault classes: they end the run instead of degrading it,
#: so they belong to the E17 recovery sweep, not the chaos grid.
STATEFUL_FAULTS: Tuple[str, ...] = ("machine_crash", "torn_page", "log_tail_corrupt")

#: Fault classes that exist on each machine.  The DIRECT machine has no
#: rings, ICs, or IPs to break — only its storage hierarchy.
MACHINE_FAULTS: Dict[str, Tuple[str, ...]] = {
    "ring": tuple(k for k in FAULT_KINDS if k not in STATEFUL_FAULTS),
    "direct": ("disk_read_error", "cache_poison"),
}

#: Fault classes the write-transaction cells run under.  ``ip_kill``
#: is excluded on ring: a killed IP degrades read bandwidth but write
#: packets are executed by the MC path, so the cell adds no coverage.
WRITE_MACHINE_FAULTS: Dict[str, Tuple[str, ...]] = {
    "ring": ("ring_drop", "disk_read_error", "cache_poison", "ic_failure"),
    "direct": ("disk_read_error", "cache_poison"),
}

#: Counter names that represent a successful recovery action.
_RECOVERY_COUNTERS = (
    "ring.retransmit",
    "disk.retry",
    "cache.refetch",
    "ic.failover",
    "ip.kill",
)


def _spec_for(fault: str, rate: float) -> FaultSpec:
    """The spec one chaos cell arms for ``fault`` at ``rate``."""
    if fault == "ip_kill":
        return FaultSpec(kind="ip_kill", rate=rate, window_ms=500.0)
    if fault == "ic_failure":
        return FaultSpec(kind="ic_failure", rate=rate, at_ms=50.0, max_failovers=5)
    return FaultSpec(kind=fault, rate=rate)


def run_faulted_benchmark(
    machine: str,
    plan: FaultPlan,
    scale: float = 0.05,
    selectivity: float = 0.3,
    seed: int = 2027,
    page_bytes: int = 2048,
    processors: int = 8,
) -> dict:
    """Run the ten-query benchmark on ``machine`` under ``plan``.

    Returns a JSON-safe summary: ``elapsed_ms``, ``events``,
    ``all_correct`` (against the sequential oracle), ``result_rows``,
    and the injector's recovery ``counters``.  Shared by the chaos sweep
    cells and the ``repro faults`` CLI command.
    """
    if machine not in MACHINE_FAULTS:
        raise FaultError(f"unknown machine {machine!r}; choose from {sorted(MACHINE_FAULTS)}")
    db = generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)
    oracle = {
        t.name: execute(t, db.catalog)
        for t in benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)
    }
    trees = benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)
    if machine == "ring":
        with injecting(plan):
            rig = RingMachine(
                db.catalog,
                processors=processors,
                controllers=16,
                page_bytes=page_bytes,
                fault_tolerant=True,
                watchdog_interval_ms=100.0,
            )
        for tree in trees:
            rig.submit(tree)
        report = rig.run()
        sim = rig.sim
    else:
        with injecting(plan):
            dm = DirectMachine(db.catalog, processors=processors, page_bytes=page_bytes)
        for tree in trees:
            dm.submit(tree)
        report = dm.run()
        sim = dm.sim
    results = report.results
    elapsed = report.elapsed_ms
    events = report.events_processed
    correct = all(results[name].same_rows_as(expected) for name, expected in oracle.items())
    counters: Dict[str, int] = {}
    if sim.faults is not None:
        counters = sim.faults.snapshot()
    return {
        "elapsed_ms": elapsed,
        "events": events,
        "all_correct": correct,
        "result_rows": sum(len(list(r.rows())) for r in results.values()),
        "counters": counters,
    }


def run_faulted_write_benchmark(
    machine: str,
    plan: FaultPlan,
    scale: float = 0.05,
    write_fraction: float = 0.5,
    seed: int = 2027,
    page_bytes: int = 2048,
    processors: int = 8,
    queries: int = 12,
) -> dict:
    """Run a mixed read/write stream on ``machine`` with the WAL armed.

    Soft faults (lossy rings, disk retries, IC failovers...) may abort
    and retry transactions, but the durable outcome must be exact: the
    recovered stable store is compared *byte-for-byte* against an
    interpreter replay of the committed set.
    """
    from repro.recovery.harness import _run_workload, oracle_bytes
    from repro.recovery.restart import recover
    from repro.recovery.store import StableStore
    from repro.recovery.txn import TransactionManager
    from repro.workload.updates import mixed_update_workload

    if machine not in WRITE_MACHINE_FAULTS:
        raise FaultError(
            f"unknown machine {machine!r}; choose from {sorted(WRITE_MACHINE_FAULTS)}"
        )
    db = generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)
    workload = mixed_update_workload(
        db.catalog,
        db.relation_names,
        seed=seed,
        count=queries,
        write_fraction=write_fraction,
    )
    store = StableStore()
    tm = TransactionManager(store, page_bytes)
    with injecting(plan):
        if machine == "ring":
            rig = RingMachine(
                db.catalog,
                processors=processors,
                controllers=16,
                page_bytes=page_bytes,
                fault_tolerant=True,
                watchdog_interval_ms=100.0,
            )
        else:
            rig = DirectMachine(db.catalog, processors=processors, page_bytes=page_bytes)
    rig.attach_recovery(tm)
    elapsed = _run_workload(machine, rig, workload)
    report = recover(store)
    committed = list(report.committed)
    recovered = store.committed_bytes()
    oracle = oracle_bytes(committed, workload, scale, seed, page_bytes)
    counters: Dict[str, int] = {}
    if rig.sim.faults is not None:
        counters = rig.sim.faults.snapshot()
    return {
        "elapsed_ms": elapsed,
        "events": 0,
        "all_correct": recovered == oracle
        and set(tm.committed_names) <= set(committed),
        "result_rows": len(committed),
        "commits": tm.commits,
        "aborts": tm.aborts,
        "counters": counters,
    }


def _point(
    machine: str,
    fault: str,
    rate: float,
    scale: float,
    selectivity: float,
    seed: int,
    page_bytes: int,
    processors: int,
    workload: str = "read",
) -> dict:
    """One chaos cell (module-level so ``map_points`` can pickle it)."""
    plan = FaultPlan(seed=seed, specs=(_spec_for(fault, rate),))
    if workload == "write":
        cell = run_faulted_write_benchmark(
            machine,
            plan,
            scale=scale,
            seed=seed,
            page_bytes=page_bytes,
            processors=processors,
        )
    else:
        cell = run_faulted_benchmark(
            machine,
            plan,
            scale=scale,
            selectivity=selectivity,
            seed=seed,
            page_bytes=page_bytes,
            processors=processors,
        )
    # The injector snapshot is keyed "name[site]"; fold it into one
    # recovery total so rows stay narrow.
    recoveries = 0
    for key, value in cell["counters"].items():
        name = key.split("[", 1)[0]
        if name in _RECOVERY_COUNTERS:
            recoveries += value
    cell["recoveries"] = recoveries
    return cell


def run(
    machines: Sequence[str] = ("ring", "direct"),
    rates: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    fault_classes: Optional[Sequence[str]] = None,
    scale: float = 0.05,
    selectivity: float = 0.3,
    seed: int = 2027,
    page_bytes: int = 2048,
    processors: int = 8,
    workers: Optional[int] = None,
    workloads: Sequence[str] = ("read", "write"),
) -> ExperimentResult:
    """The chaos grid: each machine's fault classes x ``rates``.

    Row fields: ``machine``, ``workload`` (``read`` or ``write``),
    ``fault``, ``rate``, ``elapsed_ms``, ``slowdown`` (vs the same
    machine+workload+fault's lowest-rate cell), ``recoveries``
    (retransmits + retries + refetches + failovers + kills),
    ``all_correct``.  Every cell — including the faulted ones — must
    match its oracle exactly: row-identity for read cells,
    byte-identity of the recovered store for write cells.
    """
    result = ExperimentResult(
        experiment_id="E14 (extension)",
        title="Chaos sweep: correctness under injected faults (requirement 5)",
        parameters={
            "scale": scale,
            "selectivity": selectivity,
            "seed": seed,
            "processors": processors,
            "rates": tuple(rates),
            "workloads": tuple(workloads),
        },
    )
    grid = []
    for machine in machines:
        if machine not in MACHINE_FAULTS:
            raise FaultError(
                f"unknown machine {machine!r}; choose from {sorted(MACHINE_FAULTS)}"
            )
        for workload in workloads:
            faults = (
                WRITE_MACHINE_FAULTS[machine]
                if workload == "write"
                else MACHINE_FAULTS[machine]
            )
            for fault in faults:
                if fault_classes is not None and fault not in fault_classes:
                    continue
                for rate in rates:
                    grid.append((machine, workload, fault, rate))
    points = [
        dict(
            machine=machine,
            fault=fault,
            rate=rate,
            scale=scale,
            selectivity=selectivity,
            seed=seed,
            page_bytes=page_bytes,
            processors=processors,
            workload=workload,
        )
        for machine, workload, fault, rate in grid
    ]
    cells = map_points(_point, points, workers=workers)
    baselines: Dict[Tuple[str, str, str], float] = {}
    for (machine, workload, fault, rate), cell in zip(grid, cells):
        baseline = baselines.setdefault(
            (machine, workload, fault), cell["elapsed_ms"]
        )
        result.rows.append(
            {
                "machine": machine,
                "workload": workload,
                "fault": fault,
                "rate": rate,
                "elapsed_ms": round(cell["elapsed_ms"], 1),
                "slowdown": cell["elapsed_ms"] / baseline if baseline else 1.0,
                "recoveries": cell["recoveries"],
                "all_correct": cell["all_correct"],
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
