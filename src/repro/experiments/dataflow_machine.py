"""E6 / Section 2.2-3.0: granularities on the MIT-model machine.

The DIRECT simulator (E1) measures granularity through the storage
hierarchy; this experiment isolates the *architecture-level* consequences
on the Dennis-style machine of Figure 2.2, where the only resources are
memory cells, the two networks, and the processor pool:

* relation granularity fires each instruction **once** — its concurrency
  is capped by the number of enabled query-tree nodes;
* page granularity fires per page (pair) — concurrency scales with data;
* tuple granularity moves each tuple (pair) as its own packet through the
  arbitration network — the Section 3.3 byte blowup, now *measured* on a
  running machine rather than computed.

Each (processor count, granularity) cell is an independent machine
build, so the sweep fans out over :func:`repro.sweep.map_points`
(``workers > 1`` parallelizes; results are byte-identical to serial).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.dataflow.machine import run_dataflow
from repro.experiments.common import ExperimentResult
from repro.sweep import map_points
from repro.workload import benchmark_queries, generate_benchmark_database

DEFAULT_PROCESSORS = (2, 8, 32)

#: Granularities compared, in per-point execution order.
_GRANULARITIES = ("relation", "page", "tuple")


@lru_cache(maxsize=8)
def _database(scale: float, seed: int, page_bytes: int):
    """The benchmark database, memoized per process (generation is seeded,
    so every sweep worker materializes an identical copy)."""
    return generate_benchmark_database(scale=scale, seed=seed, page_bytes=page_bytes)


def _point(
    processors: int,
    granularity: str,
    scale: float,
    selectivity: float,
    page_bytes: int,
    seed: int,
) -> dict:
    """One sweep cell: the benchmark on the MIT-model machine."""
    db = _database(scale, seed, page_bytes)
    trees = benchmark_queries(db.catalog, db.relation_names, selectivity=selectivity)
    report = run_dataflow(
        db.catalog,
        trees,
        processors=processors,
        granularity=granularity,
        page_bytes=page_bytes,
    )
    return {
        "elapsed_ms": report.elapsed_ms,
        "arbitration_bytes": report.arbitration_bytes,
    }


def run(
    processors: Sequence[int] = DEFAULT_PROCESSORS,
    scale: float = 0.1,
    selectivity: float = 0.3,
    page_bytes: int = 2048,
    seed: int = 1979,
    workers: int = None,
) -> ExperimentResult:
    """Sweep processors x granularities on the data-flow machine.

    The default scale is smaller than E1's: the MIT model keeps all data
    memory-resident, so the interesting effects (firing concurrency and
    network load) appear at any scale.  ``workers`` fans the grid out
    over worker processes; output is identical to the serial run.
    """
    db = _database(scale, seed, page_bytes)
    result = ExperimentResult(
        experiment_id="E6 (Figure 2.2 model)",
        title="Granularities on the MIT-model data-flow machine",
        parameters={
            "scale": scale,
            "selectivity": selectivity,
            "page_bytes": page_bytes,
            "database_bytes": db.catalog.total_bytes,
        },
    )
    points = [
        dict(
            processors=procs,
            granularity=granularity,
            scale=scale,
            selectivity=selectivity,
            page_bytes=page_bytes,
            seed=seed,
        )
        for procs in processors
        for granularity in _GRANULARITIES
    ]
    cells = map_points(_point, points, workers=workers)
    for i, procs in enumerate(processors):
        row = {"processors": procs}
        for granularity, cell in zip(_GRANULARITIES, cells[3 * i : 3 * i + 3]):
            row[f"{granularity}_ms"] = round(cell["elapsed_ms"], 1)
            row[f"{granularity}_arb_bytes"] = cell["arbitration_bytes"]
        row["rel_over_page"] = row["relation_ms"] / row["page_ms"]
        row["tuple_traffic_blowup"] = (
            row["tuple_arb_bytes"] / row["page_arb_bytes"]
            if row["page_arb_bytes"]
            else float("inf")
        )
        result.rows.append(row)
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
