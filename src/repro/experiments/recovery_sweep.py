"""E17 (extension): recovery sweep — write-fraction x crash-rate x machine.

The paper's machines never lose power: Section 4's requirement 5 covers
*component* failures (a disabled processor), not a whole-machine crash
mid-transaction.  The durability extension adds exactly that: a WAL with
fuzzy checkpoints (DESIGN.md §14) and an ARIES-style restart.  This
experiment is its acceptance gate — a grid of
``(machine, write_fraction, crash_rate)`` cells where every crash tears
eligible dirty pages, corrupts the unforced log tail, and must still
recover to a stable store **byte-identical** to the interpreter replay
of the recovered commit list (with every acknowledged commit in it).

``crash_rate = 0`` cells double as the no-crash control: the shutdown
checkpoint alone must carry the full committed state.

Each cell is one :func:`repro.recovery.harness.run_crash_trial`; the
grid fans out over :func:`repro.sweep.map_points` deterministically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.recovery.harness import MACHINES, run_crash_trial
from repro.sweep import map_points


def _point(
    machine: str,
    seed: int,
    write_fraction: float,
    crash_rate: float,
    scale: float,
    crash_at_ms: float,
    queries: int,
    page_bytes: int,
    processors: int,
) -> dict:
    """One recovery cell (module-level so ``map_points`` can pickle it)."""
    trial = run_crash_trial(
        machine=machine,
        seed=seed,
        scale=scale,
        write_fraction=write_fraction,
        crash_rate=crash_rate,
        crash_at_ms=crash_at_ms,
        queries=queries,
        page_bytes=page_bytes,
        processors=processors,
    )
    rec = trial.recovery or {}
    return {
        "crashed": trial.crashed,
        "commits": trial.commits,
        "aborts": trial.aborts,
        "committed": len(trial.committed),
        "redo": rec.get("redo_applied", 0),
        "undo": rec.get("undo_applied", 0),
        "torn_repaired": len(trial.damaged_repaired),
        "byte_identical": trial.byte_identical,
        "acknowledged_durable": trial.acknowledged_durable,
        "ok": trial.ok,
    }


def run(
    machines: Sequence[str] = MACHINES,
    write_fractions: Sequence[float] = (0.25, 0.5, 1.0),
    crash_rates: Sequence[float] = (0.0, 0.5, 1.0),
    seed: int = 1980,
    scale: float = 0.02,
    crash_at_ms: float = 250.0,
    queries: int = 12,
    page_bytes: int = 2048,
    processors: int = 4,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """The recovery grid; every cell must report ``ok``.

    Row fields: ``machine``, ``write_fraction``, ``crash_rate``,
    ``crashed``, ``commits``/``aborts`` (as acknowledged before the
    cut), ``committed`` (recovered commit count), ``redo``/``undo``
    (restart record counts), ``torn_repaired``, ``byte_identical``,
    ``acknowledged_durable``, ``ok``.
    """
    result = ExperimentResult(
        experiment_id="E17 (extension)",
        title="Recovery sweep: byte-identical restart after stateful crashes",
        parameters={
            "seed": seed,
            "scale": scale,
            "crash_at_ms": crash_at_ms,
            "queries": queries,
            "processors": processors,
        },
    )
    grid = [
        (machine, wf, cr)
        for machine in machines
        for wf in write_fractions
        for cr in crash_rates
    ]
    points = [
        dict(
            machine=machine,
            seed=seed,
            write_fraction=wf,
            crash_rate=cr,
            scale=scale,
            crash_at_ms=crash_at_ms,
            queries=queries,
            page_bytes=page_bytes,
            processors=processors,
        )
        for machine, wf, cr in grid
    ]
    cells = map_points(_point, points, workers=workers)
    for (machine, wf, cr), cell in zip(grid, cells):
        row = {"machine": machine, "write_fraction": wf, "crash_rate": cr}
        row.update(cell)
        result.rows.append(row)
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
