"""E8 (extension): tuple-level granularity *measured* in the simulator.

The paper argues against tuple granularity analytically (Section 3.3) but
never simulates it.  We do: the DIRECT simulator's TUPLE policy charges
per-tuple packet overhead through the arbitration network (n*m*(w_o+w_i+c)
bytes per join page pair plus per-tuple dispatch CPU).  Expected shape:
execution time no better than page level, with an order of magnitude more
interconnect traffic — confirming the paper's argument by measurement.

Each (processor count, granularity) cell is an independent simulator
build, so the sweep fans out over :func:`repro.sweep.map_points`
(``workers > 1`` parallelizes; results are byte-identical to serial).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.direct.machine import run_benchmark
from repro.direct import scheduler
from repro.experiments.common import (
    DEFAULTS,
    ExperimentResult,
    benchmark_workload,
    cached_benchmark_database,
)
from repro.sweep import map_points

DEFAULT_PROCESSORS = (10, 30, 50)

#: Granularities compared, in per-point execution order.
_GRANULARITIES = (scheduler.PAGE, scheduler.RELATION, scheduler.TUPLE)


def _point(
    processors: int,
    granularity: str,
    scale: Optional[float],
    selectivity: Optional[float],
) -> dict:
    """One sweep cell: the benchmark at one (processors, granularity)."""
    db = cached_benchmark_database(scale=scale, page_bytes=DEFAULTS["direct_page_bytes"])
    trees = benchmark_workload(db, selectivity=selectivity)
    report = run_benchmark(
        db.catalog,
        trees,
        processors=processors,
        granularity=scheduler.granularity(granularity),
        page_bytes=DEFAULTS["direct_page_bytes"],
        cache_bytes=DEFAULTS["direct_cache_bytes"],
    )
    return {
        "elapsed_ms": report.elapsed_ms,
        "interconnect_bytes": report.interconnect_bytes,
    }


def run(
    processors: Sequence[int] = DEFAULT_PROCESSORS,
    scale: Optional[float] = None,
    selectivity: Optional[float] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Measure all three granularities on the same workload.

    Row fields per processor count: times for page/relation/tuple and the
    interconnect bytes for page vs tuple (the headline blowup).
    ``workers`` fans the (processors x granularity) grid out over worker
    processes; output is identical to the serial run.
    """
    result = ExperimentResult(
        experiment_id="E8 (extension)",
        title="Tuple-level granularity measured against page and relation",
        parameters={
            "scale": scale if scale is not None else DEFAULTS["scale"],
            "selectivity": selectivity if selectivity is not None else DEFAULTS["selectivity"],
            "page_bytes": DEFAULTS["direct_page_bytes"],
        },
    )
    points = [
        dict(processors=procs, granularity=g.key, scale=scale, selectivity=selectivity)
        for procs in processors
        for g in _GRANULARITIES
    ]
    cells = map_points(_point, points, workers=workers)
    for i, procs in enumerate(processors):
        page, relation, tup = cells[3 * i : 3 * i + 3]
        result.rows.append(
            {
                "processors": procs,
                "page_ms": round(page["elapsed_ms"], 1),
                "relation_ms": round(relation["elapsed_ms"], 1),
                "tuple_ms": round(tup["elapsed_ms"], 1),
                "page_net_bytes": page["interconnect_bytes"],
                "tuple_net_bytes": tup["interconnect_bytes"],
                "traffic_blowup": (
                    tup["interconnect_bytes"] / page["interconnect_bytes"]
                    if page["interconnect_bytes"]
                    else float("inf")
                ),
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
