"""E10 (extension): distributed vs centralized control, and direct routing.

Two questions the paper raises but does not measure:

1. Section 1.0/4.0: does *distributing* the arbitration and distribution
   networks (the ring machine's ICs and IPs) keep up with the
   centralized-control DIRECT organization?  We run the same benchmark on
   both machines.
2. Section 5.0: does routing intermediate pages IP->IP "without first
   sending the page to an IC" reduce outer-ring traffic, and what does it
   cost?  We run the ring machine with ``direct_ip_routing`` off and on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.direct.machine import run_benchmark
from repro.direct import scheduler
from repro.experiments.common import DEFAULTS, ExperimentResult, benchmark_database, benchmark_workload
from repro.ring.machine import run_ring_benchmark

DEFAULT_IPS = (10, 25, 50)


def run(
    ips: Sequence[int] = DEFAULT_IPS,
    scale: Optional[float] = None,
    selectivity: Optional[float] = None,
    controllers: int = 24,
) -> ExperimentResult:
    """Compare DIRECT, ring, and ring+direct-routing per processor count.

    Row fields: ``ips``, ``direct_ms``, ``ring_ms``, ``ring_routed_ms``,
    ``ring_net_bytes``, ``ring_routed_net_bytes``, ``routing_byte_delta``.
    """
    page_bytes = DEFAULTS["ring_page_bytes"]
    db = benchmark_database(scale=scale, page_bytes=page_bytes)
    result = ExperimentResult(
        experiment_id="E10 (extension)",
        title="Centralized (DIRECT) vs distributed (ring) control; IP->IP routing",
        parameters={
            "scale": scale if scale is not None else DEFAULTS["scale"],
            "selectivity": selectivity if selectivity is not None else DEFAULTS["selectivity"],
            "page_bytes": page_bytes,
            "controllers": controllers,
        },
    )
    for n in ips:
        direct = run_benchmark(
            db.catalog,
            benchmark_workload(db, selectivity=selectivity),
            processors=n,
            granularity=scheduler.PAGE,
            page_bytes=page_bytes,
            cache_bytes=DEFAULTS["ring_cache_bytes"],
        )
        ring = run_ring_benchmark(
            db.catalog,
            benchmark_workload(db, selectivity=selectivity),
            processors=n,
            controllers=controllers,
            page_bytes=page_bytes,
            cache_bytes=DEFAULTS["ring_cache_bytes"],
        )
        routed = run_ring_benchmark(
            db.catalog,
            benchmark_workload(db, selectivity=selectivity),
            processors=n,
            controllers=controllers,
            page_bytes=page_bytes,
            cache_bytes=DEFAULTS["ring_cache_bytes"],
            direct_ip_routing=True,
        )
        result.rows.append(
            {
                "ips": n,
                "direct_ms": round(direct.elapsed_ms, 1),
                "ring_ms": round(ring.elapsed_ms, 1),
                "ring_routed_ms": round(routed.elapsed_ms, 1),
                "ring_net_bytes": ring.outer_ring_bytes,
                "ring_routed_net_bytes": routed.outer_ring_bytes,
                "routing_byte_delta": (
                    (routed.outer_ring_bytes - ring.outer_ring_bytes)
                    / ring.outer_ring_bytes
                    if ring.outer_ring_bytes
                    else 0.0
                ),
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
