"""E10 (extension): distributed vs centralized control, and direct routing.

Two questions the paper raises but does not measure:

1. Section 1.0/4.0: does *distributing* the arbitration and distribution
   networks (the ring machine's ICs and IPs) keep up with the
   centralized-control DIRECT organization?  We run the same benchmark on
   both machines.
2. Section 5.0: does routing intermediate pages IP->IP "without first
   sending the page to an IC" reduce outer-ring traffic, and what does it
   cost?  We run the ring machine with ``direct_ip_routing`` off and on.

Every (IP count, machine variant) pair is an independent simulator build,
so the sweep fans out over :func:`repro.sweep.map_points` (``workers >
1`` parallelizes; results are byte-identical to serial).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.direct.machine import run_benchmark
from repro.direct import scheduler
from repro.experiments.common import (
    DEFAULTS,
    ExperimentResult,
    benchmark_workload,
    cached_benchmark_database,
)
from repro.ring.machine import run_ring_benchmark
from repro.sweep import map_points

DEFAULT_IPS = (10, 25, 50)

#: Machine variants compared, in per-point execution order.
_VARIANTS = ("direct", "ring", "ring_routed")


def _point(
    ips: int,
    variant: str,
    controllers: int,
    scale: Optional[float],
    selectivity: Optional[float],
) -> dict:
    """One sweep cell: the benchmark on one machine variant at one size."""
    page_bytes = DEFAULTS["ring_page_bytes"]
    db = cached_benchmark_database(scale=scale, page_bytes=page_bytes)
    trees = benchmark_workload(db, selectivity=selectivity)
    if variant == "direct":
        report = run_benchmark(
            db.catalog,
            trees,
            processors=ips,
            granularity=scheduler.PAGE,
            page_bytes=page_bytes,
            cache_bytes=DEFAULTS["ring_cache_bytes"],
        )
        return {"elapsed_ms": report.elapsed_ms, "net_bytes": report.interconnect_bytes}
    report = run_ring_benchmark(
        db.catalog,
        trees,
        processors=ips,
        controllers=controllers,
        page_bytes=page_bytes,
        cache_bytes=DEFAULTS["ring_cache_bytes"],
        direct_ip_routing=(variant == "ring_routed"),
    )
    return {"elapsed_ms": report.elapsed_ms, "net_bytes": report.outer_ring_bytes}


def run(
    ips: Sequence[int] = DEFAULT_IPS,
    scale: Optional[float] = None,
    selectivity: Optional[float] = None,
    controllers: int = 24,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Compare DIRECT, ring, and ring+direct-routing per processor count.

    Row fields: ``ips``, ``direct_ms``, ``ring_ms``, ``ring_routed_ms``,
    ``ring_net_bytes``, ``ring_routed_net_bytes``, ``routing_byte_delta``.
    ``workers`` fans the (ips x variant) grid out over worker processes;
    output is identical to the serial run.
    """
    result = ExperimentResult(
        experiment_id="E10 (extension)",
        title="Centralized (DIRECT) vs distributed (ring) control; IP->IP routing",
        parameters={
            "scale": scale if scale is not None else DEFAULTS["scale"],
            "selectivity": selectivity if selectivity is not None else DEFAULTS["selectivity"],
            "page_bytes": DEFAULTS["ring_page_bytes"],
            "controllers": controllers,
        },
    )
    points = [
        dict(
            ips=n,
            variant=variant,
            controllers=controllers,
            scale=scale,
            selectivity=selectivity,
        )
        for n in ips
        for variant in _VARIANTS
    ]
    cells = map_points(_point, points, workers=workers)
    for i, n in enumerate(ips):
        direct, ring, routed = cells[3 * i : 3 * i + 3]
        result.rows.append(
            {
                "ips": n,
                "direct_ms": round(direct["elapsed_ms"], 1),
                "ring_ms": round(ring["elapsed_ms"], 1),
                "ring_routed_ms": round(routed["elapsed_ms"], 1),
                "ring_net_bytes": ring["net_bytes"],
                "ring_routed_net_bytes": routed["net_bytes"],
                "routing_byte_delta": (
                    (routed["net_bytes"] - ring["net_bytes"]) / ring["net_bytes"]
                    if ring["net_bytes"]
                    else 0.0
                ),
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
