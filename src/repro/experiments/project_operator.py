"""E11 (extension): parallel project — the paper's open problem.

Section 5.0: "We have been examining the problem of the project operator
[attribute cut + duplicate elimination] for several months and have not
yet developed an algorithm for which a high degree of parallelism can be
maintained for the duration of the operator."

We implement and compare four strategies, computing real answers (all
must agree) and charging the library's device model for time:

* ``serial``       — one processor, one hash table (what the ring machine
                     does today: project is capped at 1 IP);
* ``sort_merge``   — parallel run formation, then a serial merge that
                     drops adjacent duplicates (the classic 1979 answer);
* ``hash_partition`` — hash-repartition rows across processors, each
                     deduplicates its partition independently (the answer
                     the field converged on; full parallelism end-to-end);
* ``hierarchical`` — local dedup per processor, then a serial global
                     merge of the survivors (good when duplication is
                     high, degrades to serial when rows are unique).

Expected shape: ``hash_partition`` sustains near-linear speedup —
resolving the paper's open problem in the direction history took.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro import hw
from repro.experiments.common import ExperimentResult
from repro.relational.schema import Row
from repro.workload.generator import BENCHMARK_SCHEMA, generate_benchmark_database

#: Cost constants (ms) from the device model.
HASH_MS = hw.LSI11_HASH_TUPLE_MS
COMPARE_MS = hw.LSI11_TUPLE_COMPARE_MS
#: Interconnect cost to move one tuple between processors.
MOVE_MS = hw.ANALYSIS_TUPLE_BYTES / hw.LSI11_SCAN_RATE


def _cut(rows: List[Row], indices: List[int]) -> List[Row]:
    return [tuple(r[i] for i in indices) for r in rows]


def serial_dedup(rows: List[Row], processors: int) -> tuple:
    """One processor, one hash table."""
    seen: set = set()
    out: List[Row] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    time_ms = len(rows) * HASH_MS
    return out, time_ms


def sort_merge_dedup(rows: List[Row], processors: int) -> tuple:
    """Parallel run sort, serial duplicate-dropping merge.

    Time: the longest run sort (parallel) plus the merge over all rows
    (serial) — the merge is why parallelism "cannot be maintained for the
    duration of the operator".
    """
    p = max(1, processors)
    chunk = -(-len(rows) // p)
    runs = [sorted(rows[i : i + chunk]) for i in range(0, len(rows), chunk)]
    import heapq

    out: List[Row] = []
    previous = None
    for row in heapq.merge(*runs):
        if row != previous:
            out.append(row)
            previous = row
    n = len(rows)
    sort_time = (chunk * math.log2(max(2, chunk))) * COMPARE_MS
    merge_time = n * math.log2(max(2, p)) * COMPARE_MS
    return out, sort_time + merge_time


def hash_partition_dedup(rows: List[Row], processors: int) -> tuple:
    """Hash-repartition, then independent per-partition dedup.

    Fully parallel in both phases; the repartition pays one tuple move
    across the interconnect per row.
    """
    p = max(1, processors)
    partitions: List[List[Row]] = [[] for _ in range(p)]
    for row in rows:
        partitions[hash(row) % p].append(row)
    out: List[Row] = []
    for part in partitions:
        seen: set = set()
        for row in part:
            if row not in seen:
                seen.add(row)
                out.append(row)
    n = len(rows)
    scatter_time = (n / p) * (HASH_MS / 4 + MOVE_MS)  # parallel producers
    biggest = max((len(part) for part in partitions), default=0)
    dedup_time = biggest * HASH_MS
    return out, scatter_time + dedup_time


def hierarchical_dedup(rows: List[Row], processors: int) -> tuple:
    """Local dedup per processor, then a serial global merge."""
    p = max(1, processors)
    chunk = -(-len(rows) // p)
    locals_: List[List[Row]] = []
    longest = 0
    for i in range(0, len(rows), chunk):
        seen: set = set()
        local: List[Row] = []
        for row in rows[i : i + chunk]:
            if row not in seen:
                seen.add(row)
                local.append(row)
        locals_.append(local)
        longest = max(longest, len(rows[i : i + chunk]))
    seen_global: set = set()
    out: List[Row] = []
    survivors = 0
    for local in locals_:
        survivors += len(local)
        for row in local:
            if row not in seen_global:
                seen_global.add(row)
                out.append(row)
    local_time = longest * HASH_MS
    merge_time = survivors * HASH_MS  # serial pass over survivors
    return out, local_time + merge_time


STRATEGIES = {
    "serial": serial_dedup,
    "sort_merge": sort_merge_dedup,
    "hash_partition": hash_partition_dedup,
    "hierarchical": hierarchical_dedup,
}


def run(
    processors: Sequence[int] = (1, 4, 16, 64),
    rows: int = 20_000,
    attributes: Sequence[str] = ("b",),
    scale: Optional[float] = None,
    seed: int = 1979,
) -> ExperimentResult:
    """Dedup the projection of benchmark rows under each strategy.

    Projecting onto ``b`` (domain 1,000) makes duplication heavy — the
    regime where duplicate elimination dominates the project operator.
    """
    db = generate_benchmark_database(scale=scale if scale is not None else 0.5, seed=seed)
    source: List[Row] = []
    for relation in db.catalog:
        for row in relation.rows():
            source.append(row)
            if len(source) >= rows:
                break
        if len(source) >= rows:
            break
    indices = [BENCHMARK_SCHEMA.index_of(a) for a in attributes]
    cut = _cut(source, indices)
    expected = set(cut)

    result = ExperimentResult(
        experiment_id="E11 (extension)",
        title="Parallel project (duplicate elimination) strategies",
        parameters={"rows": len(cut), "attributes": list(attributes), "distinct": len(expected)},
    )
    for p in processors:
        row: Dict[str, object] = {"processors": p}
        serial_time = None
        for name, strategy in STRATEGIES.items():
            out, time_ms = strategy(list(cut), p)
            if set(out) != expected or len(out) != len(expected):
                raise AssertionError(f"strategy {name} produced a wrong answer")
            if name == "serial":
                serial_time = time_ms
            row[f"{name}_ms"] = round(time_ms, 1)
        for name in STRATEGIES:
            row[f"{name}_speedup"] = round(serial_time / row[f"{name}_ms"], 2)
        result.rows.append(row)
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
