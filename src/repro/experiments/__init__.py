"""Experiment harness: one module per table/figure (see DESIGN.md §4).

Every experiment returns plain row dictionaries and can render itself as
an ASCII table, so the same code backs the unit tests, the pytest
benchmarks, and the EXPERIMENTS.md records.

* E1  :mod:`repro.experiments.figure_3_1` — page- vs relation-level
  granularity on the DIRECT simulator.
* E2  :mod:`repro.experiments.section_3_3` — tuple- vs page-level
  arbitration traffic (analytic).
* E3  :mod:`repro.experiments.figure_4_2` — bandwidth by storage level vs
  number of IPs.
* E4  :mod:`repro.experiments.packets_demo` — packet format round trips.
* E7  :mod:`repro.experiments.ring_sizing_exp` — ring technology anchors.
* E8  :mod:`repro.experiments.granularity_tuple` — tuple granularity
  measured in the simulator (extension).
* E10 :mod:`repro.experiments.ring_vs_direct` — distributed (ring) vs
  centralized (DIRECT) control, and IP->IP direct routing (extension).
* E11 :mod:`repro.experiments.project_operator` — parallel duplicate
  elimination strategies (the paper's open problem; extension).
* E13 :mod:`repro.experiments.fault_tolerance` — graceful degradation
  while IPs fail-stop mid-run (requirement 5; extension).
* E14 :mod:`repro.experiments.chaos_sweep` — chaos sweep: every
  :mod:`repro.faults` fault class x rate x machine, oracle-checked
  (extension).
* E15 :mod:`repro.experiments.serving` — steady-state serving saturation:
  open-loop offered rate x achieved throughput x tail latency
  (extension; ROADMAP item 1).
* E16 :mod:`repro.experiments.latency_decomposition` — critical-path
  latency attribution vs load (extension).
* E17 :mod:`repro.experiments.recovery_sweep` — durable update
  transactions: machine x write-fraction x crash-rate, byte-identical
  restart from the WAL (extension).
"""

from repro.experiments.common import ExperimentResult, render_table

__all__ = ["ExperimentResult", "render_table"]
