"""E15 (extension): steady-state serving — the saturation curve.

The paper's Section 4 bandwidth analysis asks whether the machine can
stand up to "heavy traffic from millions of users"; the batch benchmark
cannot answer that, because a closed batch of ten queries never exposes
queueing.  This experiment sweeps an open-loop Poisson arrival rate
across machines and reports the classic saturation curve: achieved
throughput tracks offered load up to the knee, then plateaus while p99
latency diverges (the queue, not the machine, absorbs the excess).

Each cell is one :func:`repro.serve.serve` run — seeded, byte-stable —
and the grid fans out over :func:`repro.sweep.map_points`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult
from repro.serve import ServeConfig, serve
from repro.sweep import map_points

#: Default offered rates (queries/second).  Chosen to straddle the knee
#: of both default machines at the quick scale below: the low rates are
#: comfortably under capacity, the high ones are deep in overload.
DEFAULT_RATES = (10.0, 20.0, 40.0, 80.0, 160.0)


def _point(
    machine: str,
    rate: float,
    arrivals: str,
    duration_ms: float,
    seed: int,
    scale: float,
    b_domain: int,
    selectivity: float,
    page_bytes: int,
    processors: int,
    max_inflight: int,
    queue_limit: int,
    policy: str,
) -> dict:
    """One saturation cell (module-level so ``map_points`` can pickle it)."""
    config = ServeConfig(
        machine=machine,
        arrivals=arrivals,
        rate_qps=rate,
        duration_ms=duration_ms,
        seed=seed,
        scale=scale,
        b_domain=b_domain,
        selectivity=selectivity,
        page_bytes=page_bytes,
        processors=processors,
        max_inflight=max_inflight,
        queue_limit=queue_limit,
        policy=policy,
    )
    return serve(config)


def run(
    machines: Sequence[str] = ("ring", "direct"),
    rates: Sequence[float] = DEFAULT_RATES,
    arrivals: str = "poisson",
    duration_ms: float = 4000.0,
    seed: int = 1979,
    scale: float = 0.05,
    b_domain: int = 100,
    selectivity: float = 0.1,
    page_bytes: int = 2048,
    processors: int = 8,
    max_inflight: int = 8,
    queue_limit: int = 64,
    policy: str = "fifo",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep offered rate x machine; report the saturation curve.

    Row fields: ``machine``, ``rate_qps`` (nominal), ``offered_qps``
    (realized arrivals over the window), ``achieved_qps``, ``p50_ms``,
    ``p99_ms``, ``p999_ms``, ``shed``, ``util``.
    """
    result = ExperimentResult(
        experiment_id="E15 (extension)",
        title="Serving saturation: offered rate x achieved throughput x latency",
        parameters={
            "arrivals": arrivals,
            "duration_ms": duration_ms,
            "scale": scale,
            "selectivity": selectivity,
            "seed": seed,
            "processors": processors,
            "max_inflight": max_inflight,
            "queue_limit": queue_limit,
            "policy": policy,
        },
    )
    grid = [(machine, rate) for machine in machines for rate in rates]
    points = [
        dict(
            machine=machine,
            rate=rate,
            arrivals=arrivals,
            duration_ms=duration_ms,
            seed=seed,
            scale=scale,
            b_domain=b_domain,
            selectivity=selectivity,
            page_bytes=page_bytes,
            processors=processors,
            max_inflight=max_inflight,
            queue_limit=queue_limit,
            policy=policy,
        )
        for machine, rate in grid
    ]
    cells = map_points(_point, points, workers=workers)
    for (machine, rate), slo in zip(grid, cells):
        latency = slo["latency"]
        result.rows.append(
            {
                "machine": machine,
                "rate_qps": rate,
                "offered_qps": slo["offered_qps"],
                "achieved_qps": slo["achieved_qps"],
                "p50_ms": latency["p50_ms"],
                "p99_ms": latency["p99_ms"],
                "p999_ms": latency["p999_ms"],
                "shed": slo["admission"]["shed"],
                "util": slo["utilization"],
            }
        )
    return result


def main() -> None:  # pragma: no cover - manual entry point
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
