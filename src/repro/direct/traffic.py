"""Byte-level traffic accounting per storage level.

Figure 4.2 plots "the bandwidth requirements of DIRECT with page-level
granularity ... obtained by dividing the total number of bytes transferred
by the execution time of the benchmark".  The meter tracks bytes per
transfer level so the experiment can report that division per level and in
total.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


#: Transfer levels of the three-level storage hierarchy plus control.
DISK_TO_CACHE = "disk_to_cache"
CACHE_TO_DISK = "cache_to_disk"
CACHE_TO_PROC = "cache_to_proc"
PROC_TO_CACHE = "proc_to_cache"
#: Intermediate pages flowing processor -> controller local memory and back
#: (the first level of the paper's three-level storage hierarchy).
PROC_TO_IC = "proc_to_ic"
IC_TO_PROC = "ic_to_proc"
CONTROL = "control"

ALL_LEVELS = [
    DISK_TO_CACHE,
    CACHE_TO_DISK,
    CACHE_TO_PROC,
    PROC_TO_CACHE,
    PROC_TO_IC,
    IC_TO_PROC,
    CONTROL,
]

#: Levels that cross the processor interconnect (DIRECT's cross-point
#: switch; the outer ring in the Section 4 machine).
INTERCONNECT_LEVELS = [CACHE_TO_PROC, PROC_TO_CACHE, PROC_TO_IC, IC_TO_PROC, CONTROL]

#: Levels that touch the mass-storage devices.
DISK_LEVELS = [DISK_TO_CACHE, CACHE_TO_DISK]


class TrafficMeter:
    """Accumulates transferred bytes by level."""

    def __init__(self):
        self._bytes: Dict[str, int] = {level: 0 for level in ALL_LEVELS}

    def add(self, level: str, nbytes: int) -> None:
        """Record ``nbytes`` moved across ``level``."""
        if level not in self._bytes:
            raise KeyError(f"unknown traffic level {level!r}; use one of {ALL_LEVELS}")
        if nbytes < 0:
            raise ValueError(f"traffic cannot be negative ({nbytes})")
        self._bytes[level] += nbytes

    def bytes_at(self, level: str) -> int:
        """Total bytes recorded at ``level``."""
        return self._bytes[level]

    def total(self, levels: Optional[Sequence[str]] = None) -> int:
        """Total bytes across ``levels``.

        ``None`` (the default) means every level; an explicit empty
        sequence means *no* levels and totals 0 — the distinction matters
        to callers that compute level subsets dynamically.
        """
        chosen = ALL_LEVELS if levels is None else levels
        return sum(self._bytes[level] for level in chosen)

    @property
    def interconnect_bytes(self) -> int:
        """Bytes that crossed the processor interconnect."""
        return self.total(INTERCONNECT_LEVELS)

    @property
    def disk_bytes(self) -> int:
        """Bytes that moved between cache and mass storage."""
        return self.total(DISK_LEVELS)

    def bandwidth_mbps(self, level_or_levels, elapsed_ms: float) -> float:
        """Average bandwidth in megabits/second over ``elapsed_ms``.

        This is exactly the paper's metric: average, not peak.  A
        non-positive ``elapsed_ms`` (serving mode measures short windows,
        some of them empty) reports 0.0 rather than dividing by zero.
        """
        if elapsed_ms <= 0:
            return 0.0
        if isinstance(level_or_levels, str):
            nbytes = self.bytes_at(level_or_levels)
        else:
            nbytes = self.total(list(level_or_levels))
        return nbytes * 8.0 / 1e6 / (elapsed_ms / 1000.0)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the per-level byte counts."""
        return dict(self._bytes)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self._bytes.items())
        return f"TrafficMeter({parts})"
