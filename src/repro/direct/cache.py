"""The shared multiport disk cache: frames, LRU replacement, dirty spills.

DIRECT places a CCD disk cache between the query processors and the
mass-storage disks; together with processor memory this forms the paper's
three-level storage hierarchy.  The cache is page-framed: a read miss
allocates a frame and fills it from disk; producing an intermediate page
allocates a frame dirty; evicting a dirty frame first writes it to disk
("when an IC fills its segment of the disk cache, pages will be swapped
out to disk").

Concurrent requests for the same page share one transfer (the cross-point
switch "broadcast facility" — requirement 4 of Section 4.0), which is what
makes the nested-loops join's inner-relation streaming cheap.

**Storage faults** (paper requirement 5): an armed ``disk_read_error``
spec makes mass-storage page transfers fail transiently — the cache
retries after ``retry_delay_ms``, up to ``max_retries`` times, then
raises :class:`repro.errors.RetryExhaustedError` naming the drive.  An
armed ``cache_poison`` spec corrupts clean, unpinned frames at hit time;
the cache discards the poisoned frame and re-fetches the page from its
mass-storage copy.  Both draw from seeded per-site streams, so recovery
is deterministic.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.errors import MachineError, RetryExhaustedError
from repro.faults.plan import FaultSpec
from repro.direct import traffic as tlevels
from repro.direct.exec_model import ExecModel
from repro.direct.traffic import TrafficMeter
from repro.relational.page import Page
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


@dataclass
class PageRef:
    """A page identity flowing through the machine.

    ``payload`` carries the actual rows (None only for never-materialized
    pages, which do not occur in practice).  ``on_disk`` tracks whether a
    copy exists on mass storage; base-relation pages start True,
    intermediate pages become True only if spilled.
    """

    key: str
    nbytes: int
    payload: Optional[Page]
    on_disk: bool
    disk_id: int
    row_count: int = 0

    def __hash__(self) -> int:
        return hash(self.key)

    def __eq__(self, other) -> bool:
        return isinstance(other, PageRef) and other.key == self.key


@dataclass
class _Frame:
    ref: PageRef
    dirty: bool
    pins: int = 0
    last_use: int = 0
    doomed: bool = False
    #: Soft-pinned: evicted only when no unprotected victim exists.  Models
    #: the IC cache segments of Section 4.1 (operand pages of an active
    #: instruction keep their frames while the instruction runs).
    protected: bool = False


@dataclass
class _SharedRead:
    waiters: List[Callable[[], None]] = field(default_factory=list)


class DiskCache:
    """Frame-managed CCD cache in front of the mass-storage drives."""

    def __init__(
        self,
        sim: Simulator,
        meter: TrafficMeter,
        model: ExecModel,
        capacity_frames: int,
        ports: Resource,
        disks: List[Resource],
    ):
        if capacity_frames < 4:
            raise MachineError(f"cache needs at least 4 frames, got {capacity_frames}")
        self.sim = sim
        self.meter = meter
        self.model = model
        self.capacity_frames = capacity_frames
        self.ports = ports
        self.disks = disks
        self._frames: Dict[str, _Frame] = {}
        self._use_clock = itertools.count()
        self._alloc_waiters: Deque[Callable[[], None]] = deque()
        self._inflight_reads: Dict[str, _SharedRead] = {}
        #: Pages counted resident including frames mid-fill.
        self._reserved = 0
        #: Last page key read per drive, for sequential-transfer detection.
        self._disk_last: Dict[int, str] = {}
        self._sanitizer = sim.sanitizer
        if self._sanitizer is not None:
            self._sanitizer.register_finish_check("disk-cache", self._sanitize_finish)
        # Fault injection: resolve the storage specs once.  ``None`` when
        # nothing is armed, so the fault-free paths below run verbatim.
        self._injector = sim.faults
        self._disk_spec: Optional[FaultSpec] = None
        self._poison_spec: Optional[FaultSpec] = None
        if self._injector is not None:
            self._disk_spec = self._injector.armed_spec("disk_read_error")
            self._poison_spec = self._injector.armed_spec("cache_poison")
            if self._disk_spec is None and self._poison_spec is None:
                self._injector = None

    # -- public API -------------------------------------------------------------

    @property
    def resident_frames(self) -> int:
        """Frames currently allocated (including mid-transfer)."""
        return self._reserved

    def is_resident(self, ref: PageRef) -> bool:
        """True when ``ref`` currently occupies a frame."""
        return ref.key in self._frames

    def has_inflight(self, ref: PageRef) -> bool:
        """True when a delivery of ``ref`` is on the interconnect right now.

        Joining such a read costs nothing extra (broadcast) — the paper's
        IPs use exactly this opportunism via their IRC vectors.
        """
        return ref.key in self._inflight_reads

    def read_shared(self, ref: PageRef, done: Callable[[], None]) -> None:
        """Deliver ``ref`` toward the processor interconnect.

        Cache hit: one port transaction.  Miss: disk fill, then one port
        transaction.  Requests arriving while the same page's delivery is
        in flight share it (broadcast), paying no extra port or disk time
        and adding no extra interconnect bytes.
        """
        inflight = self._inflight_reads.get(ref.key)
        if inflight is not None:
            inflight.waiters.append(done)
            return
        self._inflight_reads[ref.key] = _SharedRead(waiters=[done])

        if self._poison_spec is not None:
            frame = self._frames.get(ref.key)
            if (
                frame is not None
                and frame.pins == 0
                and not frame.dirty
                and frame.ref.on_disk
                and self._injector.decide(
                    "cache_poison", "cache", self._poison_spec.rate
                )
            ):
                # The frame's content is corrupt; its clean disk copy is
                # authoritative, so drop the frame and fall through to a
                # normal miss (re-fetch from mass storage).
                self._injector.count("cache.poison")
                self._injector.count("cache.refetch")
                self._release(ref.key)

        if ref.key in self._frames:
            self._pin(ref.key)
            self._port_deliver(ref)
            return
        if not ref.on_disk:
            raise MachineError(
                f"page {ref.key!r} is neither cached nor on disk — it was "
                f"discarded while still needed"
            )
        self._allocate(lambda: self._fill_from_disk(ref))

    def write_page(self, ref: PageRef, done: Callable[[], None], dirty: bool = True) -> None:
        """Install a processor-produced page into the cache.

        Charges one port transaction and counts processor-to-cache
        interconnect bytes; the frame lands dirty (an intermediate page
        with no disk copy yet).  Writing a key that is already resident
        rewrites its frame in place — allocating a second slot for the
        same key would leak the first reservation and shrink effective
        capacity for the rest of the run.
        """

        def delivered() -> None:
            self.meter.add(tlevels.PROC_TO_CACHE, self.model.packet_bytes(ref.nbytes))
            self._unpin(ref.key)
            done()

        existing = self._frames.get(ref.key)
        if existing is not None:
            existing.ref = ref
            existing.dirty = dirty
            existing.pins += 1
            existing.last_use = next(self._use_clock)
            self.ports.submit(self.model.cache_port_ms(ref.nbytes), delivered, nbytes=ref.nbytes)
            return

        def with_frame() -> None:
            self._frames[ref.key] = _Frame(
                ref=ref, dirty=dirty, pins=1, last_use=next(self._use_clock)
            )
            self.ports.submit(self.model.cache_port_ms(ref.nbytes), delivered, nbytes=ref.nbytes)

        self._allocate(with_frame)

    def protect(self, ref: PageRef) -> None:
        """Soft-pin ``ref``'s frame while its instruction is active."""
        frame = self._frames.get(ref.key)
        if frame is not None:
            frame.protected = True

    def unprotect(self, ref: PageRef) -> None:
        """Release the soft pin on ``ref``."""
        frame = self._frames.get(ref.key)
        if frame is not None:
            frame.protected = False

    def discard(self, ref: PageRef) -> None:
        """Drop ``ref`` from the hierarchy (its consumers are all done).

        A pinned frame is doomed instead and freed at unpin time.
        """
        frame = self._frames.get(ref.key)
        if frame is None:
            return
        if frame.pins > 0:
            frame.doomed = True
            return
        self._release(ref.key)

    # -- internals -------------------------------------------------------------

    def _sanitize_finish(self) -> List[str]:
        """End-of-run frame-accounting invariants for the sanitizer."""
        violations: List[str] = []
        for key, frame in sorted(self._frames.items()):
            if frame.pins > 0:
                violations.append(f"frame {key!r} leaked {frame.pins} pin(s)")
        if self._reserved != len(self._frames):
            violations.append(
                f"reservation imbalance: {self._reserved} reserved slots for "
                f"{len(self._frames)} resident frames"
            )
        if self._alloc_waiters:
            violations.append(
                f"{len(self._alloc_waiters)} frame-allocation waiter(s) stranded"
            )
        for key in sorted(self._inflight_reads):
            violations.append(f"in-flight read of {key!r} was never delivered")
        return violations

    def _reserve_slot(self) -> None:
        """Count one frame reservation; sanitize mode polices the ceiling."""
        self._reserved += 1
        if self._sanitizer is not None and self._reserved > self.capacity_frames:
            self._sanitizer.fail(
                f"disk-cache double-reserve: {self._reserved} reservations "
                f"exceed {self.capacity_frames} frames"
            )

    def _unreserve_slot(self) -> None:
        """Hand a reservation back; a queued allocation claims it at once."""
        self._reserved -= 1
        if self._alloc_waiters:
            waiter = self._alloc_waiters.popleft()
            self._reserve_slot()
            waiter()

    def _pin(self, key: str) -> None:
        frame = self._frames[key]
        frame.pins += 1
        frame.last_use = next(self._use_clock)

    def _unpin(self, key: str) -> None:
        frame = self._frames.get(key)
        if frame is None:
            return
        frame.pins -= 1
        if frame.pins <= 0:
            if frame.doomed:
                self._release(key)
            else:
                # The frame just became evictable; a queued allocation may
                # now be able to claim it.
                self._retry_alloc_waiters()

    def _release(self, key: str) -> None:
        del self._frames[key]
        self._unreserve_slot()

    def _allocate(self, granted: Callable[[], None]) -> None:
        """Hand a free frame slot to ``granted``, evicting if needed."""
        if self._reserved < self.capacity_frames:
            self._reserve_slot()
            granted()
            return
        victim = self._pick_victim()
        if victim is None:
            # Everything pinned: wait for an unpin/release.
            self._alloc_waiters.append(granted)
            return
        self._evict_then(victim, granted)

    def _evict_then(self, victim: str, granted: Callable[[], None]) -> None:
        """Evict ``victim`` (spilling a dirty frame first), then grant.

        A dirty victim's write-back takes disk time, during which the frame
        stays resident (readers may legitimately hit it — the page is still
        in the cache).  If anyone re-pins the frame while the write-back is
        in flight, the eviction *aborts* at completion rather than deleting
        a frame a consumer believes is resident; the allocation then retries
        against the current frame population.  The write-back itself is
        never wasted: the spilled content is on disk either way.
        """
        frame = self._frames[victim]
        if frame.dirty:
            frame.pins += 1  # protect the victim during the write-back
            spilled_ref = frame.ref  # the content this write-back persists

            def spilled() -> None:
                self.meter.add(tlevels.CACHE_TO_DISK, spilled_ref.nbytes)
                spilled_ref.on_disk = True
                if frame.ref is spilled_ref:
                    # Not rewritten mid-spill: the frame is clean now.
                    frame.dirty = False
                frame.pins -= 1
                if frame.pins > 0:
                    self._allocate(granted)  # re-referenced: abort eviction
                    return
                del self._frames[victim]
                granted()

            disk_index = spilled_ref.disk_id % len(self.disks)
            disk = self.disks[disk_index]
            self._disk_last[disk_index] = spilled_ref.key  # spill moves the arm
            disk.submit(self.model.disk_ms(spilled_ref.nbytes), spilled, nbytes=spilled_ref.nbytes)
        else:
            del self._frames[victim]
            granted()

    def _retry_alloc_waiters(self) -> None:
        """Serve queued allocations as frames become evictable."""
        while self._alloc_waiters:
            victim = self._pick_victim()
            if victim is None:
                return
            waiter = self._alloc_waiters.popleft()
            self._evict_then(victim, waiter)

    def _pick_victim(self) -> Optional[str]:
        best: Optional[str] = None
        best_rank: Optional[tuple] = None
        for key, frame in self._frames.items():
            if frame.pins > 0:
                continue
            rank = (frame.protected, frame.last_use)  # unprotected LRU first
            if best_rank is None or rank < best_rank:
                best, best_rank = key, rank
        return best

    def _sequential_read(self, disk_index: int, key: str) -> bool:
        """True when ``key`` continues the drive's previous read.

        Base pages are laid out contiguously per relation and interleaved
        across the drives, so a relation scan reads keys ``rel:i`` and
        ``rel:i+k`` (k = number of drives) on one arm — no seek needed.
        """
        previous = self._disk_last.get(disk_index)
        if previous is None:
            return False
        prev_prefix, _, prev_idx = previous.rpartition(":")
        cur_prefix, _, cur_idx = key.rpartition(":")
        if prev_prefix != cur_prefix or not prev_idx.isdigit() or not cur_idx.isdigit():
            return False
        gap = int(cur_idx) - int(prev_idx)
        return 0 < gap <= 2 * len(self.disks)

    def _fill_from_disk(self, ref: PageRef, attempt: int = 0) -> None:
        disk_index = ref.disk_id % len(self.disks)
        disk = self.disks[disk_index]
        sequential = self._sequential_read(disk_index, ref.key)
        self._disk_last[disk_index] = ref.key

        def filled() -> None:
            if self._disk_spec is not None and self._injector.decide(
                "disk_read_error", f"disk{disk_index}", self._disk_spec.rate
            ):
                # Transient read error: the transfer is discarded and
                # retried after a fixed delay (re-charging disk time; the
                # retry is a random read — the arm has not moved).
                spec = self._disk_spec
                if attempt >= spec.max_retries:
                    raise RetryExhaustedError(
                        f"disk{disk_index}: read of {ref.key!r} still failing "
                        f"after {attempt + 1} attempts "
                        f"(max_retries={spec.max_retries})"
                    )
                self._injector.count("disk.read_error", f"disk{disk_index}")
                self._injector.count("disk.retry", f"disk{disk_index}")
                self.sim.schedule(
                    spec.retry_delay_ms,
                    lambda: self._fill_from_disk(ref, attempt + 1),
                    label=f"cache.disk{disk_index}.retry",
                )
                return
            self.meter.add(tlevels.DISK_TO_CACHE, ref.nbytes)
            existing = self._frames.get(ref.key)
            if existing is not None:
                # A concurrent write_page installed this key while the
                # disk fill was in flight.  Keep that (newer) frame and
                # hand the fill's duplicate reservation back — keeping
                # both would permanently shrink effective capacity.
                self._pin(ref.key)
                self._unreserve_slot()
                self._port_deliver(ref)
                return
            self._frames[ref.key] = _Frame(
                ref=ref, dirty=False, pins=1, last_use=next(self._use_clock)
            )
            self._port_deliver(ref)

        disk.submit(
            self.model.disk_ms(ref.nbytes, sequential=sequential),
            filled,
            nbytes=ref.nbytes,
        )

    def _port_deliver(self, ref: PageRef) -> None:
        def delivered() -> None:
            self.meter.add(tlevels.CACHE_TO_PROC, self.model.packet_bytes(ref.nbytes))
            self._unpin(ref.key)
            shared = self._inflight_reads.pop(ref.key)
            for waiter in shared.waiters:
                waiter()

        self.ports.submit(self.model.cache_port_ms(ref.nbytes), delivered, nbytes=ref.nbytes)
