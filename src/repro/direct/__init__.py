"""DIRECT-style MIMD database machine simulator (Figures 3.1 and 4.2).

The paper's granularity experiment ran on the authors' simulator of DIRECT
[1,2]: a centralized back-end controller dispatching instruction packets to
a pool of query processors over a cross-point switch, with a shared
multiport CCD disk cache between the processors and the mass-storage
disks.  This package rebuilds that simulator:

* :mod:`repro.direct.exec_model` — per-page operator service times derived
  from the paper's device constants, plus the row-exact page kernels.
* :mod:`repro.direct.cache` — the shared CCD disk cache (frames, LRU,
  dirty spills to disk).
* :mod:`repro.direct.instructions` — runtime instruction objects compiled
  from query-tree nodes, with page tables, task queues and output
  assembly.
* :mod:`repro.direct.scheduler` — the three operand granularities as
  scheduling policies (RELATION / PAGE / TUPLE).
* :mod:`repro.direct.machine` — the machine itself and its run report.
* :mod:`repro.direct.traffic` — byte-level traffic accounting per storage
  level (the measurement behind Figure 4.2).

Every simulated instruction moves *real* pages of *real* rows, so results
are checked against the reference interpreter in the integration tests.
"""

from repro.direct.exec_model import ExecModel
from repro.direct.scheduler import Granularity
from repro.direct.machine import DirectMachine, DirectReport
from repro.direct.traffic import TrafficMeter

__all__ = [
    "DirectMachine",
    "DirectReport",
    "ExecModel",
    "Granularity",
    "TrafficMeter",
]
