"""Operator execution model: row-exact page kernels + device service times.

The simulated processors do two separable things:

1. **Compute real answers.**  The page kernels below produce the exact rows
   a real processor would (so simulator output is checked against the
   reference interpreter).  For equijoins the kernel uses a hash probe —
   the *result* is identical to nested loops; only Python wall time
   differs.
2. **Charge simulated time.**  Service times follow the nested-loops cost
   the paper assumes (o_rows * i_rows pair comparisons for a join page
   pair), with constants from :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro import hw
from repro.relational.page import Page
from repro.relational.predicate import JoinCondition
from repro.relational.schema import Row


# ---------------------------------------------------------------------------
# Row-exact page kernels
# ---------------------------------------------------------------------------


def restrict_page(page: Page, test: Callable[[Row], bool]) -> List[Row]:
    """Rows of ``page`` passing the compiled predicate ``test``."""
    return [row for row in page.rows() if test(row)]


def join_pages(
    outer_page: Page,
    inner_page: Page,
    condition: JoinCondition,
    outer_index: int,
    inner_index: int,
) -> List[Row]:
    """Concatenated rows of one outer-page x inner-page nested-loops step.

    ``outer_index``/``inner_index`` are the join attributes' positions in
    the page schemas (precomputed once per instruction).  Equijoins take a
    hash shortcut with an identical result.
    """
    if condition.is_equijoin:
        probe: dict = {}
        for irow in inner_page.rows():
            probe.setdefault(irow[inner_index], []).append(irow)
        out: List[Row] = []
        for orow in outer_page.rows():
            for irow in probe.get(orow[outer_index], ()):
                out.append(orow + irow)
        return out
    fn = condition.op.fn
    return [
        orow + irow
        for orow in outer_page.rows()
        for irow in inner_page.rows()
        if fn(orow[outer_index], irow[inner_index])
    ]


def project_rows(rows: List[Row], indices: List[int]) -> List[Row]:
    """Attribute cut (no dedup) of ``rows`` to the given positions."""
    return [tuple(row[i] for i in indices) for row in rows]


def fused_chain_end(now: float, parts: Sequence[float]) -> float:
    """Absolute end time of a charge chain begun at ``now``.

    Accumulates left to right, matching an unfused cascade where each
    link schedules relative to its own fire time — float addition is not
    associative, so pre-summing the parts could land an ulp away from
    the timestamp the cascade would have produced.
    """
    end = now
    for part in parts:
        end = end + part
    return end


def fused_chain_spans(now: float, parts: Sequence[float]) -> List[Tuple[float, float]]:
    """Per-link ``(start, duration)`` intervals of a chain begun at ``now``.

    The analytic sub-spans an observer (tracer or span collector) reports
    for a fused chain: each link starts exactly where the unfused cascade
    would have scheduled it, using the same left-to-right accumulation as
    :func:`fused_chain_end`, so traced fused runs show the same per-op
    intervals as unfused ones.
    """
    spans: List[Tuple[float, float]] = []
    start = now
    for part in parts:
        spans.append((start, part))
        start = start + part
    return spans


# ---------------------------------------------------------------------------
# Service-time model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecModel:
    """Device timing model for one machine configuration.

    All methods return **milliseconds** of service time on the named
    device.  Defaults reproduce the paper's Figure 4.2 assumptions
    (LSI-11 processors, Intel 2314 CCD cache, IBM 3330 disks).
    """

    page_bytes: int = hw.RING_PAGE_BYTES
    #: Processor-side memory rate: 16 KB in 33 ms (paper).
    proc_scan_rate: float = hw.LSI11_SCAN_RATE
    restrict_tuple_ms: float = hw.LSI11_RESTRICT_TUPLE_MS
    join_pair_ms: float = hw.LSI11_JOIN_PAIR_MS
    hash_tuple_ms: float = hw.LSI11_HASH_TUPLE_MS
    #: Control bytes per instruction/result packet (the paper's ``c``).
    packet_overhead_bytes: int = 100
    #: Fixed dispatch latency per packet (controller + switch setup).
    dispatch_ms: float = 0.5
    #: Latency to stage a page into/out of controller local memory.
    ic_latency_ms: float = 0.2
    ccd: hw.CcdCacheModel = hw.INTEL_2314_CCD
    disk: hw.DiskModel = hw.IBM_3330

    # -- processor side ------------------------------------------------------

    def proc_read_ms(self, nbytes: int) -> float:
        """Processor time to pull ``nbytes`` into its local memory."""
        return nbytes / self.proc_scan_rate

    def proc_write_ms(self, nbytes: int) -> float:
        """Processor time to push ``nbytes`` out of its local memory."""
        return nbytes / self.proc_scan_rate

    def restrict_cpu_ms(self, rows: int) -> float:
        """CPU time to apply a predicate to ``rows`` tuples."""
        return rows * self.restrict_tuple_ms

    def join_cpu_ms(self, outer_rows: int, inner_rows: int) -> float:
        """CPU time for a nested-loops page-pair step."""
        return outer_rows * inner_rows * self.join_pair_ms

    def project_cpu_ms(self, rows: int) -> float:
        """CPU time to cut and hash ``rows`` tuples for dedup."""
        return rows * self.hash_tuple_ms

    # -- cache / disk side -----------------------------------------------------

    def cache_port_ms(self, nbytes: int) -> float:
        """One CCD cache-port transaction of ``nbytes``."""
        return self.ccd.access_time_ms(nbytes)

    def disk_ms(self, nbytes: int, sequential: bool = False) -> float:
        """One mass-storage transfer of ``nbytes``."""
        return self.disk.access_time_ms(nbytes, sequential=sequential)

    # -- packets ----------------------------------------------------------------

    def packet_bytes(self, payload_bytes: int) -> int:
        """Wire size of a packet carrying ``payload_bytes``."""
        return payload_bytes + self.packet_overhead_bytes
