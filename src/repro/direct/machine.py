"""The DIRECT-style machine: processors, cache, disks, and the controller.

This is the simulator behind Figure 3.1 (page- vs relation-level
granularity) and Figure 4.2 (bandwidth vs number of processors).  The
machine executes a list of query trees concurrently, moving real pages of
real rows through a three-level storage hierarchy:

    mass storage (IBM 3330 x2)  <->  CCD disk cache  <->  processor memory

Key modeled behaviours:

* **Two memory cells per processor** (the Figure 3.1 configuration): a
  processor executes one instruction packet while the next packet's
  operand page streams into its second cell.
* **Broadcast inner streaming for joins**: concurrent requests for the
  same inner page share one cache-port transaction and one interconnect
  transfer (DIRECT's cross-point switch broadcast).
* **Granularity as policy** (:mod:`repro.direct.scheduler`): page-level
  pipelines intermediate pages to consumers immediately; relation-level
  materializes them (cache pressure then spills them to disk, which is
  precisely the traffic the paper's Section 3.2 experiment exposes).
* **Deadlock-free joins**: an outer-page task that runs out of available
  inner pages parks and releases its processor.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro import hw
from repro.errors import CrashError, FaultError, MachineError
from repro.direct import traffic as tlevels
from repro.direct.cache import DiskCache, PageRef
from repro.direct.exec_model import ExecModel, fused_chain_end, fused_chain_spans
from repro.direct.instructions import (
    AppendInstruction,
    DeleteInstruction,
    Instruction,
    JoinInstruction,
    ProjectInstruction,
    RestrictInstruction,
    Task,
    UnionInstruction,
    UpdateInstruction,
)
from repro.direct.scheduler import Granularity, PAGE, pick_instruction
from repro.direct.traffic import TrafficMeter
from repro.recovery.apply import apply_write
from repro.recovery.txn import Transaction, TransactionManager
from repro.relational.catalog import Catalog
from repro.relational.page import Page
from repro.relational.relation import Relation
from repro.relational.schema import Row
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    ScanNode,
    UnionNode,
    UpdateNode,
)
from repro.sim.engine import Simulator
from repro.sim.fusion import resolve_fusion
from repro.sim.resources import Resource, checked_utilization


class _Processor:
    """One query processor with two memory cells (execute + stage)."""

    __slots__ = ("pid", "executing", "staged", "staged_ready", "busy_ms")

    def __init__(self, pid: int):
        self.pid = pid
        self.executing: Optional[Task] = None
        self.staged: Optional[Task] = None
        self.staged_ready = False
        self.busy_ms = 0.0

    @property
    def can_stage(self) -> bool:
        return self.staged is None

    @property
    def fully_idle(self) -> bool:
        return self.executing is None and self.staged is None


@dataclass
class QueryRun:
    """Per-query execution record."""

    tree: QueryTree
    root_instruction: Instruction
    submitted_at: float = 0.0
    completed_at: Optional[float] = None
    result_rows: int = 0

    @property
    def elapsed_ms(self) -> Optional[float]:
        """Response time of this query, or None while running."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass
class DirectReport:
    """Everything a run produces: timing, traffic, and actual results."""

    granularity: str
    processors: int
    elapsed_ms: float
    traffic: Dict[str, int]
    interconnect_bytes: int
    disk_bytes: int
    query_times: Dict[str, float]
    results: Dict[str, Relation]
    processor_utilization: float
    events_processed: int

    def bandwidth_mbps(self, levels=None) -> float:
        """Average Mbps across ``levels`` (default: interconnect levels)."""
        if self.elapsed_ms <= 0:
            return 0.0
        if levels is None:
            nbytes = self.interconnect_bytes
        elif isinstance(levels, str):
            nbytes = self.traffic[levels]
        else:
            nbytes = sum(self.traffic[level] for level in levels)
        return nbytes * 8.0 / 1e6 / (self.elapsed_ms / 1000.0)

    @property
    def total_bytes(self) -> int:
        """All bytes moved anywhere in the hierarchy."""
        return sum(self.traffic.values())


class DirectMachine:
    """A configurable DIRECT-style MIMD database machine simulator."""

    def __init__(
        self,
        catalog: Catalog,
        processors: int = 8,
        granularity: Granularity = PAGE,
        model: Optional[ExecModel] = None,
        page_bytes: int = hw.RING_PAGE_BYTES,
        cache_bytes: Optional[int] = None,
        cache_ports: int = 8,
        num_disks: int = hw.NUM_MASS_STORAGE_DRIVES,
        memory_cells: int = hw.MEMORY_CELLS_PER_PROCESSOR,
        join_wait_timeout_ms: float = 100.0,
        ic_buffer_bytes: int = 128 * 1024,
        max_events: int = 5_000_000,
        fuse_ops: Optional[bool] = None,
    ):
        if processors < 1:
            raise MachineError("need at least one processor")
        if memory_cells not in (1, 2):
            raise MachineError("memory_cells must be 1 or 2")
        self.catalog = catalog
        self.granularity = granularity
        self.page_bytes = page_bytes
        self.model = model or ExecModel(page_bytes=page_bytes)
        self.memory_cells = memory_cells
        self.join_wait_timeout_ms = join_wait_timeout_ms
        self.max_events = max_events

        self.sim = Simulator()
        # Operator-loop fusion (repro.sim.fusion); resolve_fusion keeps the
        # flag off when a fault plan is armed on this simulator or when the
        # static effect analysis has not proven this machine's chains safe.
        self.fuse_ops = resolve_fusion(fuse_ops, self.sim, component="direct")
        self.meter = TrafficMeter()
        self.processors = [_Processor(i) for i in range(processors)]
        if self.sim.spans is not None:
            self.sim.spans.register_capacity("processors", processors)
        self.ports = Resource(self.sim, "cache-ports", capacity=cache_ports)
        self.disks = [
            Resource(self.sim, f"disk{i}", capacity=1) for i in range(num_disks)
        ]

        # The cache must hold at least the pages in flight to/from every
        # processor or allocation can stall the pipeline; clamp with a
        # documented floor (see DESIGN.md section 5).
        floor = (3 * processors + 8) * page_bytes
        requested = cache_bytes if cache_bytes is not None else hw.DEFAULT_CACHE_BYTES
        self.cache_bytes = max(requested, floor)
        self.cache = DiskCache(
            sim=self.sim,
            meter=self.meter,
            model=self.model,
            capacity_frames=self.cache_bytes // page_bytes,
            ports=self.ports,
            disks=self.disks,
        )

        self._instructions: List[Instruction] = []
        self._runs: List[QueryRun] = []
        self._base_pages: Dict[str, List[PageRef]] = {}
        self._finishing: Dict[int, bool] = {}
        self._pending_writes: Dict[int, int] = {}

        # Controller (IC) local memory: the first level of the paper's
        # three-level hierarchy.  Freshly produced intermediate pages live
        # here; only overflow reaches the shared disk cache.
        self.ic_buffer_pages = max(2, ic_buffer_bytes // page_bytes)
        self._buffered: Dict[str, PageRef] = {}
        self._buffer_fifo: Dict[int, List[str]] = {}
        # Insertion-ordered dict-as-set: any future iteration stays
        # independent of PYTHONHASHSEED.
        self._overflowing: Dict[str, None] = {}
        self._buffer_reads: Dict[str, List[Callable[[], None]]] = {}

        #: Durable write transactions (see :meth:`attach_recovery`);
        #: None means writes install in-memory only, the pre-WAL behavior.
        self.txn: Optional[TransactionManager] = None
        self._write_txns: Dict[str, Transaction] = {}
        self._write_results: Dict[str, List[Row]] = {}

        #: Serving hook: called as ``(query_name, completed_at_ms,
        #: result_rows)`` when a query's root instruction completes.
        self.on_query_complete: Optional[Callable[[str, float, int], None]] = None
        #: Serve mode disables per-query gauges (thousands of queries
        #: would bloat the metrics registry).
        self.publish_per_query_metrics = True

    # ------------------------------------------------------------------ setup

    def _base_page_refs(self, relation_name: str) -> List[PageRef]:
        """Machine-page-size images of a base relation (built once)."""
        if relation_name not in self._base_pages:
            relation = self.catalog.get(relation_name)
            # Shared read-only images, memoized on the relation: machines
            # built over the same catalog repack nothing.
            pages = relation.packed_pages(self.page_bytes)
            salt = zlib.crc32(relation_name.encode("utf-8"))
            refs = [
                PageRef(
                    key=f"base:{relation_name}:{i}",
                    nbytes=self.page_bytes,
                    payload=page,
                    on_disk=True,
                    disk_id=(salt + i) % max(1, len(self.disks)),
                    row_count=page.row_count,
                )
                for i, page in enumerate(pages)
            ]
            self._base_pages[relation_name] = refs
        return self._base_pages[relation_name]

    def attach_recovery(self, tm: TransactionManager) -> None:
        """Arm durable write transactions through ``tm``.

        Seeds the stable store from the catalog's current images if the
        caller has not already, and registers the WAL invariants with
        this run's sanitizer.  DIRECT has no admission lock manager, so
        callers must serialize conflicting writes themselves (the crash
        harness and serve layer chain write submissions back-to-back).
        """
        if not tm.store.pages:
            tm.seed_from_catalog(self.catalog)
        self.txn = tm
        tm.register_sanitizer(self.sim)

    def submit(self, tree: QueryTree) -> QueryRun:
        """Compile ``tree`` into instructions and queue it for execution."""
        tree.validate(self.catalog)
        root = tree.root
        if (
            self.txn is not None
            and isinstance(root, (AppendNode, DeleteNode, UpdateNode))
            and tree.name not in self._write_txns
        ):
            self._write_txns[tree.name] = self.txn.begin(
                tree.name,
                root.target_relation,
                root.output_schema(self.catalog),
                append=isinstance(root, AppendNode),
            )
        by_node: Dict[int, Instruction] = {}
        root_instr: Optional[Instruction] = None

        for node in tree.nodes():
            if isinstance(node, ScanNode):
                continue
            instr = self._compile_node(node, tree)
            by_node[node.node_id] = instr
            self._instructions.append(instr)
            self._finishing[id(instr)] = False
            self._pending_writes[id(instr)] = 0
            self._buffer_fifo[id(instr)] = []
            root_instr = instr

            # Wire operands: base relations deliver at start; child
            # instructions register this one as their consumer.
            operand_children = self._operand_children(node)
            for idx, child in enumerate(operand_children):
                if isinstance(child, ScanNode):
                    refs = self._base_page_refs(child.relation_name)
                    self.sim.schedule(
                        0.0,
                        lambda i=instr, x=idx, r=refs: self._deliver_base(i, x, r),
                        label=f"{instr.label}.base{idx}",
                    )
                else:
                    by_node[child.node_id].consumers.append((instr, idx))

        if root_instr is None:
            raise MachineError(
                f"query {tree.name} compiles to no instructions "
                f"(bare scans are not executable work)"
            )
        run = QueryRun(tree=tree, root_instruction=root_instr, submitted_at=self.sim.now)
        self._runs.append(run)
        if self.sim.spans is not None:
            # Idempotent: the serve layer may have opened this record at
            # offer time; direct submission opens it here.
            self.sim.spans.query_begin(tree.name, self.sim.now)
        return run

    def _compile_node(self, node: QueryNode, tree: QueryTree) -> Instruction:
        if isinstance(node, RestrictNode):
            return RestrictInstruction(
                node, tree, node.child.output_schema(self.catalog), self.page_bytes
            )
        if isinstance(node, ProjectNode):
            return ProjectInstruction(
                node, tree, node.child.output_schema(self.catalog), self.page_bytes
            )
        if isinstance(node, JoinNode):
            return JoinInstruction(
                node,
                tree,
                node.outer.output_schema(self.catalog),
                node.inner.output_schema(self.catalog),
                self.page_bytes,
            )
        if isinstance(node, UnionNode):
            return UnionInstruction(
                node, tree, node.children[0].output_schema(self.catalog), self.page_bytes
            )
        if isinstance(node, AppendNode):
            return AppendInstruction(
                node, tree, node.child.output_schema(self.catalog), self.page_bytes
            )
        if isinstance(node, DeleteNode):
            return DeleteInstruction(
                node, tree, self.catalog.get(node.target_relation).schema, self.page_bytes
            )
        if isinstance(node, UpdateNode):
            return UpdateInstruction(
                node, tree, self.catalog.get(node.target_relation).schema, self.page_bytes
            )
        raise MachineError(
            f"the DIRECT simulator does not execute {node.opcode!r} nodes; "
            f"use the reference interpreter or the ring machine"
        )

    def _operand_children(self, node: QueryNode) -> Sequence[QueryNode]:
        """Operand producers for ``node``.

        Childless write roots (delete/update) read the target relation
        itself: synthesize a scan so the standard base-delivery path
        feeds them the target's current pages.
        """
        if isinstance(node, (DeleteNode, UpdateNode)):
            return [ScanNode(node.target_relation)]
        return node.children

    def _deliver_base(self, instr: Instruction, operand_index: int, refs: List[PageRef]) -> None:
        for ref in refs:
            instr.operand_page_arrived(operand_index, ref)
        instr.operand_completed(operand_index)
        if operand_index == 1:
            self._wake_join_waiters(instr)
        self._check_completion(instr)  # empty base relations complete instantly
        self._dispatch()

    # ------------------------------------------------------------------ run

    def run(self) -> DirectReport:
        """Execute every submitted query to completion and report."""
        if not self._runs:
            raise MachineError("no queries submitted")
        return self.run_service()

    def run_service(self) -> DirectReport:
        """Drive the machine until the event heap drains, then report.

        The serving layer schedules arrival events that call
        :meth:`submit` mid-run, so no queries need to exist up front;
        every query submitted must still finish before the heap drains.
        """
        self._arm_machine_crash()
        self.sim.run(max_events=self.max_events)
        unfinished = [r.tree.name for r in self._runs if r.completed_at is None]
        if unfinished:
            raise MachineError(
                f"simulation drained with unfinished queries: {unfinished}"
            )
        if self.txn is not None:
            # Clean shutdown: force the log, flush every dirty page, and
            # checkpoint — the sanitizer's dirty-page leak check runs next.
            self.txn.shutdown()
        self.sim.finalize_sanitizer()
        self.sim.finalize_faults()
        elapsed = self.sim.now
        busy = sum(p.busy_ms for p in self.processors)
        utilization = checked_utilization(
            self.sim, busy, elapsed, len(self.processors), "direct.processors"
        )
        self._publish_metrics(elapsed, utilization)
        return DirectReport(
            granularity=self.granularity.key,
            processors=len(self.processors),
            elapsed_ms=elapsed,
            traffic=self.meter.snapshot(),
            interconnect_bytes=self.meter.interconnect_bytes,
            disk_bytes=self.meter.disk_bytes,
            query_times={r.tree.name: r.elapsed_ms for r in self._runs},
            results={r.tree.name: self._result_relation(r) for r in self._runs},
            processor_utilization=utilization,
            events_processed=self.sim.events_processed,
        )

    def _arm_machine_crash(self) -> None:
        """Schedule a whole-machine power cut if the plan draws one.

        Mirrors the ring machine: the strike raises
        :class:`repro.errors.CrashError` straight out of the event loop,
        and the crash harness picks recovery up from the stable store.
        """
        inj = self.sim.faults
        if inj is None:
            return
        spec = inj.armed_spec("machine_crash")
        if spec is None or spec.rate <= 0:
            return
        if self.txn is None:
            raise FaultError(
                "fault plan arms machine_crash but no transaction manager "
                "is attached (attach_recovery); a crash without durable "
                "state cannot be recovered"
            )
        if not inj.decide("machine_crash", "machine", spec.rate):
            return
        at_ms = spec.at_ms + inj.uniform("machine_crash", "machine", 0.0, spec.window_ms)

        def crash_now() -> None:
            inj.count("machine.crash", "machine")
            raise CrashError(
                f"machine crash fault at t={self.sim.now:.3f}ms "
                f"({len(self.txn.active)} transaction(s) in flight)"
            )

        self.sim.schedule_at(at_ms, crash_now, label="fault.machine_crash")

    def _publish_metrics(self, elapsed: float, utilization: float) -> None:
        """Summarize the run into the metrics registry (stable names)."""
        metrics = self.sim.metrics
        if not metrics.enabled:
            return
        rid = self.sim.run_id
        metrics.set_gauge("machine.elapsed_ms", elapsed, machine="direct", run=rid)
        metrics.set_gauge(
            "machine.processor_utilization", utilization, machine="direct", run=rid
        )
        for resource in [self.ports] + self.disks:
            metrics.set_gauge(
                "resource.utilization",
                resource.utilization(elapsed),
                resource=resource.name,
                run=rid,
            )
            metrics.set_gauge(
                "resource.peak_queue",
                resource.stats.peak_queue,
                resource=resource.name,
                run=rid,
            )
        for level, nbytes in self.meter.snapshot().items():
            metrics.set_gauge("traffic.bytes", nbytes, machine="direct", level=level, run=rid)
        if not self.publish_per_query_metrics:
            return
        for run in self._runs:
            if run.elapsed_ms is not None:
                metrics.set_gauge(
                    "query.elapsed_ms", run.elapsed_ms, query=run.tree.name, run=rid
                )
                metrics.set_gauge(
                    "query.result_rows", run.result_rows, query=run.tree.name, run=rid
                )

    def _result_relation(self, run: QueryRun) -> Relation:
        instr = run.root_instruction
        rows = self._write_results.get(run.tree.name)
        if rows is not None:
            # Write queries report the target's whole new content (the
            # convention shared with the ring machine and interpreter).
            return Relation.from_rows(
                f"{run.tree.name}.result",
                instr.output_schema,
                rows,
                self.page_bytes,
                validated=True,
            )
        out = Relation(
            f"{run.tree.name}.result", instr.output_schema, page_bytes=self.page_bytes
        )
        for ref in instr.produced_pages:
            out.append_page(ref.payload)
        return out

    # ------------------------------------------------------------------ dispatch

    def _dispatch(self) -> None:
        """MC allocation loop: stage tasks onto processors with a free cell."""
        while True:
            proc = self._stageable_processor()
            if proc is None:
                return
            instr = pick_instruction(self._instructions, metrics=self.sim.metrics)
            if instr is None:
                return
            if self.sim.tracer.enabled:
                self.sim.tracer.instant(
                    f"dispatch.{instr.label}",
                    "mc",
                    self.sim.now,
                    "controller",
                    args={"processor": proc.pid},
                )
            task = instr.pop_task()
            instr.in_flight += 1
            instr.assigned_processors += 1
            if instr.started_at is None:
                instr.started_at = self.sim.now
            self._assign(proc, task)

    def _stageable_processor(self) -> Optional[_Processor]:
        # Prefer fully idle processors so work spreads out before
        # double-buffering kicks in.
        for proc in self.processors:
            if proc.fully_idle:
                return proc
        if self.memory_cells >= 2:
            for proc in self.processors:
                if proc.can_stage and proc.executing is not None:
                    return proc
        return None

    def _assign(self, proc: _Processor, task: Task) -> None:
        proc.staged = task
        proc.staged_ready = False
        # Instruction packet: control header through the interconnect.
        self.meter.add(tlevels.CONTROL, self.model.packet_overhead_bytes)

        def fetched() -> None:
            # Operand page lands in the staging memory cell (autonomous
            # transfer; does not occupy the execution unit).
            fill = self.model.proc_read_ms(task.page.nbytes)
            if self.sim.spans is not None:
                # Service time for the query, but not processor busy time:
                # the staging transfer runs beside the execution unit.
                self.sim.spans.record(
                    "service",
                    task.instruction.query.name,
                    self.sim.now,
                    self.sim.now + fill,
                    name="proc.stage",
                )
            self.sim.schedule(
                fill,
                lambda: self._staged_filled(proc),
                label=f"p{proc.pid}.fill",
            )

        self.sim.schedule(
            self.model.dispatch_ms,
            lambda: self._fetch_operand(
                task.page, fetched, query=task.instruction.query.name
            ),
            label=f"p{proc.pid}.dispatch",
        )

    def _fetch_operand(
        self, ref: PageRef, done: Callable[[], None], query: Optional[str] = None
    ) -> None:
        """Deliver an operand page toward a processor.

        Intermediate pages still in controller local memory ship straight
        over the interconnect; everything else goes through the disk
        cache (and mass storage on a miss).  Concurrent requests for a
        buffered page share one transfer, like the cache's broadcast.
        """
        if ref.key in self._buffered:
            waiters = self._buffer_reads.get(ref.key)
            if waiters is not None:
                waiters.append(done)
                return
            self._buffer_reads[ref.key] = [done]

            def delivered() -> None:
                self.meter.add(tlevels.IC_TO_PROC, self.model.packet_bytes(ref.nbytes))
                for cb in self._buffer_reads.pop(ref.key, []):
                    cb()

            if self.sim.spans is not None:
                # The interconnect hop out of controller memory is transit
                # time for the requesting query (sharers that pile onto an
                # in-flight read fall into the queueing residual).
                self.sim.spans.record(
                    "transit",
                    query,
                    self.sim.now,
                    self.sim.now + self.model.ic_latency_ms,
                    name="ic.read",
                )
            self.sim.schedule(self.model.ic_latency_ms, delivered, label="ic.read")
        else:
            spans = self.sim.spans
            if spans is not None and query is not None:
                started = self.sim.now
                inner_done = done

                def cache_fetched() -> None:
                    spans.record("disk", query, started, self.sim.now, name="cache.read")
                    inner_done()

                done = cache_fetched
            self.cache.read_shared(ref, done)

    def _staged_filled(self, proc: _Processor) -> None:
        proc.staged_ready = True
        if proc.executing is None:
            self._promote(proc)

    def _promote(self, proc: _Processor) -> None:
        if proc.staged is None or not proc.staged_ready:
            return
        task = proc.staged
        proc.staged = None
        proc.staged_ready = False
        proc.executing = task
        self._dispatch()  # the staging cell just freed up
        self._execute(proc, task)

    # ------------------------------------------------------------------ execution

    def _execute(self, proc: _Processor, task: Task) -> None:
        if isinstance(task.instruction, JoinInstruction):
            self._join_step(proc, task)
        else:
            self._unary_execute(proc, task)

    def _charge(
        self,
        proc: _Processor,
        delay: float,
        then: Callable[[], None],
        query: Optional[str] = None,
        what: str = "cpu",
    ) -> None:
        if self.sim.tracer.enabled:
            self.sim.tracer.span("cpu", "proc", self.sim.now, delay, f"P{proc.pid}")
        if self.sim.metrics.enabled:
            self.sim.metrics.tally("proc.charge_ms", kind="cpu").observe(delay)
        if self.sim.spans is not None:
            self.sim.spans.record(
                "service", query, self.sim.now, self.sim.now + delay, name=f"proc.{what}"
            )
            self.sim.spans.resource_busy("processors", self.sim.now, delay)

        def done() -> None:
            # Credit busy time when the service interval has actually
            # elapsed, mirroring Resource.stats.busy_time — crediting at
            # schedule time counts work that has not happened yet.
            proc.busy_ms += delay
            then()

        self.sim.schedule(delay, done, label=f"p{proc.pid}.cpu")

    def _unary_execute(self, proc: _Processor, task: Task) -> None:
        instr = task.instruction
        rows_in = task.page.row_count
        cpu = self._unary_cpu_ms(instr, rows_in)
        if self.granularity.tuple_dispatch:
            cpu += rows_in * self.granularity.tuple_dispatch_ms
            self._charge_tuple_traffic(instr, rows_in, task.page)

        def computed() -> None:
            rows_out = instr.compute(task)
            self._emit_rows(proc, instr, rows_out, lambda: self._finish_task(proc, task))

        self._charge(proc, cpu, computed, query=instr.query.name)

    def _unary_cpu_ms(self, instr: Instruction, rows: int) -> float:
        if isinstance(instr, (RestrictInstruction, DeleteInstruction, UpdateInstruction)):
            # Delete/update kernels are a predicate pass over the page,
            # the same work profile as restrict.
            return self.model.restrict_cpu_ms(rows)
        if isinstance(instr, (ProjectInstruction, UnionInstruction, AppendInstruction)):
            return self.model.project_cpu_ms(rows)
        raise MachineError(f"no unary cost model for {type(instr).__name__}")

    def _join_step(self, proc: _Processor, task: Task) -> None:
        instr: JoinInstruction = task.instruction
        inner_ref = instr.next_unseen_inner(task, self.cache)
        if inner_ref is None:
            if instr.inner_exhausted(task):
                self._finish_task(proc, task)
            else:
                self._wait_for_inner(proc, task)
            return

        def inner_delivered() -> None:
            # Inner operand pages of an active join are the hottest re-read
            # set; keep them resident (IC cache-segment behaviour).
            self.cache.protect(inner_ref)
            fill = self.model.proc_read_ms(inner_ref.nbytes)
            if self.fuse_ops:
                self._fused_join_fill(proc, task, instr, inner_ref, fill)
                return

            def filled() -> None:
                cpu = self.model.join_cpu_ms(task.page.row_count, inner_ref.row_count)
                if self.granularity.tuple_dispatch:
                    pairs = task.page.row_count * inner_ref.row_count
                    cpu += pairs * self.granularity.tuple_dispatch_ms
                    self._charge_pair_traffic(instr, task.page, inner_ref)

                self._charge(
                    proc,
                    cpu,
                    lambda: self._join_pair_done(proc, task, instr, inner_ref),
                    query=instr.query.name,
                )

            if self.sim.tracer.enabled:
                self.sim.tracer.span(
                    "inner-fill", "proc", self.sim.now, fill, f"P{proc.pid}"
                )
            if self.sim.metrics.enabled:
                self.sim.metrics.tally("proc.charge_ms", kind="inner-fill").observe(fill)
            if self.sim.spans is not None:
                self.sim.spans.record(
                    "service",
                    instr.query.name,
                    self.sim.now,
                    self.sim.now + fill,
                    name="proc.fill",
                )
                self.sim.spans.resource_busy("processors", self.sim.now, fill)

            def fill_done() -> None:
                proc.busy_ms += fill
                filled()

            self.sim.schedule(fill, fill_done, label=f"p{proc.pid}.inner-fill")

        self._fetch_operand(inner_ref, inner_delivered, query=instr.query.name)

    def _join_pair_done(
        self, proc: _Processor, task: Task, instr: JoinInstruction, inner_ref: PageRef
    ) -> None:
        """One outer-page x inner-page step has finished its service time."""
        rows = instr.compute_pair(task, inner_ref)
        task.seen_inner.add(inner_ref.key)
        if instr.inner_page_consumed(inner_ref):
            if _is_base(inner_ref):
                self.cache.unprotect(inner_ref)
            else:
                self._drop_intermediate(inner_ref)
        self._emit_rows(proc, instr, rows, lambda: self._join_step(proc, task))

    def _fused_join_fill(
        self,
        proc: _Processor,
        task: Task,
        instr: JoinInstruction,
        inner_ref: PageRef,
        fill: float,
    ) -> None:
        """Fill + join CPU as one event (see :mod:`repro.sim.fusion`).

        The chain is deterministic once the inner page is resident, so the
        end time is known up front; busy time is credited per link in the
        cascade's order and ``count_fused`` keeps the event tally equal.
        """
        cpu = self.model.join_cpu_ms(task.page.row_count, inner_ref.row_count)
        if self.granularity.tuple_dispatch:
            pairs = task.page.row_count * inner_ref.row_count
            cpu += pairs * self.granularity.tuple_dispatch_ms
            self._charge_pair_traffic(instr, task.page, inner_ref)
        sim = self.sim
        if sim.tracer.enabled:
            sim.tracer.span("inner-fill", "proc", sim.now, fill, f"P{proc.pid}")
            sim.tracer.span("cpu", "proc", sim.now + fill, cpu, f"P{proc.pid}")
        if sim.metrics.enabled:
            sim.metrics.tally("proc.charge_ms", kind="inner-fill").observe(fill)
            sim.metrics.tally("proc.charge_ms", kind="cpu").observe(cpu)
        if sim.spans is not None:
            # Fusion composition: report the same per-link intervals the
            # unfused cascade would have produced (analytic sub-spans).
            links = fused_chain_spans(sim.now, (fill, cpu))
            for (span_start, dur), what in zip(links, ("fill", "cpu")):
                sim.spans.record(
                    "service",
                    instr.query.name,
                    span_start,
                    span_start + dur,
                    name=f"proc.{what}",
                )
                sim.spans.resource_busy("processors", span_start, dur)

        def fused_done() -> None:
            proc.busy_ms += fill
            proc.busy_ms += cpu
            sim.count_fused(1)
            self._join_pair_done(proc, task, instr, inner_ref)

        sim.schedule_abs(
            fused_chain_end(sim.now, (fill, cpu)), fused_done, label=f"p{proc.pid}.cpu"
        )

    def _park_task(self, proc: _Processor, task: Task) -> None:
        instr = task.instruction
        instr.park(task)
        instr.in_flight -= 1
        instr.assigned_processors -= 1
        self._release_processor(proc)

    def _wait_for_inner(self, proc: _Processor, task: Task) -> None:
        """Hold the processor awaiting the next broadcast inner page.

        This is the paper's IP behaviour in Section 4.2 (the IP keeps its
        outer page and requests inner pages as they arrive).  The periodic
        timeout releases the processor only when it is actually needed —
        other instructions have dispatchable work and no processor is free
        — so a stalled producer can never deadlock the machine, and a
        merely *slow* producer does not trigger futile repacking.
        """
        instr = task.instruction

        def timed_out() -> None:
            # Yield when this processor is needed: either its own staging
            # cell holds a ready packet, or other instructions have
            # dispatchable work and every processor is occupied.
            staged_behind = proc.staged is not None and proc.staged_ready
            if staged_behind or self._processor_needed():
                instr.waiting = [w for w in instr.waiting if w[1] is not task]
                self._park_task(proc, task)
            else:
                event = self.sim.schedule(
                    self.join_wait_timeout_ms, timed_out, label=f"p{proc.pid}.join-wait"
                )
                instr.waiting = [
                    (p, t, event) if t is task else (p, t, e) for p, t, e in instr.waiting
                ]

        event = self.sim.schedule(
            self.join_wait_timeout_ms, timed_out, label=f"p{proc.pid}.join-wait"
        )
        instr.waiting.append((proc, task, event))

    def _processor_needed(self) -> bool:
        """True when dispatchable work exists but no processor can take it."""
        if not any(i.has_dispatchable() for i in self._instructions):
            return False
        return self._stageable_processor() is None

    def _wake_join_waiters(self, instr: Instruction) -> None:
        """New inner input (or inner completion): resume waiting tasks.

        All woken tasks request the same fresh page, so the shared-read
        dedup in the cache turns the delivery into one broadcast.
        """
        if not isinstance(instr, JoinInstruction) or not instr.waiting:
            return
        waiters, instr.waiting = instr.waiting, []
        for proc, task, event in waiters:
            event.cancel()
            self._join_step(proc, task)

    def _finish_task(self, proc: _Processor, task: Task) -> None:
        instr = task.instruction
        instr.in_flight -= 1
        instr.assigned_processors -= 1
        # "Done" control packet back to the controller.
        self.meter.add(tlevels.CONTROL, self.model.packet_overhead_bytes)
        if instr.input_page_consumed(task.page) and not _is_base(task.page):
            self._drop_intermediate(task.page)
        self._check_completion(instr)
        self._release_processor(proc)

    def _release_processor(self, proc: _Processor) -> None:
        proc.executing = None
        if proc.staged is not None and proc.staged_ready:
            self._promote(proc)
        else:
            self._dispatch()

    # ------------------------------------------------------------------ output

    def _emit_rows(
        self,
        proc: _Processor,
        instr: Instruction,
        rows,
        then: Callable[[], None],
    ) -> None:
        """Push result rows into the assembler; write out completed pages.

        The producing processor pays write time per completed page; the
        cache write and consumer announcement proceed asynchronously.
        """
        completed = instr.assembler.add_rows(rows) if rows else []
        if not completed:
            then()
            return
        write_ms = sum(self.model.proc_write_ms(ref.nbytes) for ref in completed)
        for ref in completed:
            self._write_and_announce(instr, ref)
        self._charge(proc, write_ms, then, query=instr.query.name, what="write")

    def _write_and_announce(self, instr: Instruction, ref: PageRef) -> None:
        if self.granularity.materialize_to_disk:
            self._materialize_page(instr, ref)
            return
        self._pending_writes[id(instr)] += 1

        def placed() -> None:
            self._pending_writes[id(instr)] -= 1
            self.meter.add(tlevels.PROC_TO_IC, self.model.packet_bytes(ref.nbytes))
            self._buffered[ref.key] = ref
            self._buffer_fifo[id(instr)].append(ref.key)
            instr.produced_pages.append(ref)
            self._stage_write_rows(instr, ref)
            self._overflow_buffer(instr)
            if self.granularity.pipeline:
                self._announce_page(instr, ref)
            self._check_completion(instr)
            self._dispatch()

        self.sim.schedule(self.model.ic_latency_ms, placed, label="ic.place")

    def _materialize_page(self, instr: Instruction, ref: PageRef) -> None:
        """Relation-level output path: stage the page on mass storage.

        The page crosses the interconnect to the cache and is written
        through to disk; the consumer (enabled only at producer
        completion) reads it back through the cache later.
        """
        self._pending_writes[id(instr)] += 1

        def to_disk() -> None:
            self.meter.add(tlevels.PROC_TO_CACHE, self.model.packet_bytes(ref.nbytes))
            disk = self.disks[ref.disk_id % len(self.disks)]

            def written() -> None:
                self.meter.add(tlevels.CACHE_TO_DISK, ref.nbytes)
                ref.on_disk = True
                self._pending_writes[id(instr)] -= 1
                instr.produced_pages.append(ref)
                self._stage_write_rows(instr, ref)
                self._check_completion(instr)
                self._dispatch()

            disk.submit(self.model.disk_ms(ref.nbytes), written, nbytes=ref.nbytes)

        self.ports.submit(self.model.cache_port_ms(ref.nbytes), to_disk, nbytes=ref.nbytes)

    def _stage_write_rows(self, instr: Instruction, ref: PageRef) -> None:
        """WAL-stage a write root's freshly produced page.

        Only the root of a write query stages (its output *is* the
        target's new content); a crash mid-run therefore leaves genuine
        partial writes in the log for the undo phase to erase.
        """
        if instr.consumers or ref.payload is None:
            return
        txn = self._write_txns.get(instr.query.name)
        if txn is not None:
            self.txn.stage_rows(txn, list(ref.payload.rows()))

    def _overflow_buffer(self, instr: Instruction) -> None:
        """Push the oldest unconsumed pages out to the disk cache when the
        controller's local memory fills (Section 4.1: 'when the local
        memory of an IC fills, the IC will write the least desirable
        pages to its segment of the multiport disk cache')."""
        fifo = self._buffer_fifo[id(instr)]
        live = [k for k in fifo if k in self._buffered and k not in self._overflowing]
        excess = len(live) - self.ic_buffer_pages
        for key in live[: max(0, excess)]:
            ref = self._buffered[key]
            self._overflowing[key] = None

            def spilled(r=ref, k=key) -> None:
                # Readable from the cache now; release the buffer slot.
                self._overflowing.pop(k, None)
                self._buffered.pop(k, None)

            self.cache.write_page(ref, spilled, dirty=True)
        if excess > 0:
            self._buffer_fifo[id(instr)] = [k for k in fifo if k in self._buffered]

    def _announce_page(self, instr: Instruction, ref: PageRef) -> None:
        for consumer, operand_index in instr.consumers:
            consumer.operand_page_arrived(operand_index, ref)
            if operand_index == 1:
                self._wake_join_waiters(consumer)
        self._dispatch()

    # ------------------------------------------------------------------ completion

    def _check_completion(self, instr: Instruction) -> None:
        if instr.done or self._finishing[id(instr)]:
            return
        if self._pending_writes[id(instr)] != 0 or not instr.is_complete():
            return
        self._finishing[id(instr)] = True
        final = instr.assembler.flush()
        if final is None:
            self._complete(instr)
            return

        def written() -> None:
            self._pending_writes[id(instr)] -= 1
            instr.produced_pages.append(final)
            self._stage_write_rows(instr, final)
            if self.granularity.pipeline:
                self._announce_page(instr, final)
            self._complete(instr)

        self._pending_writes[id(instr)] += 1
        self.cache.write_page(final, written, dirty=True)

    def _complete(self, instr: Instruction) -> None:
        instr.done = True
        instr.completed_at = self.sim.now
        if not self.granularity.pipeline:
            # Relation-level: the operand becomes visible all at once now.
            for ref in instr.produced_pages:
                for consumer, operand_index in instr.consumers:
                    consumer.operand_page_arrived(operand_index, ref)
        for consumer, operand_index in instr.consumers:
            consumer.operand_completed(operand_index)
            if operand_index == 1:
                self._wake_join_waiters(consumer)
            self._check_completion(consumer)  # consumer may be trivially done
        if not instr.consumers:
            self._finish_query(instr)
        self._dispatch()

    def _finish_query(self, instr: Instruction) -> None:
        for run in self._runs:
            if run.root_instruction is instr:
                run.completed_at = self.sim.now
                run.result_rows = instr.assembler.rows_emitted
                node = run.tree.root
                if isinstance(node, (AppendNode, DeleteNode, UpdateNode)):
                    produced = [
                        row
                        for ref in instr.produced_pages
                        if ref.payload is not None
                        for row in ref.payload.rows()
                    ]
                    txn = self._write_txns.pop(run.tree.name, None)
                    _, rows = apply_write(
                        self.catalog,
                        node,
                        produced,
                        self.page_bytes,
                        tm=self.txn if txn is not None else None,
                        txn=txn,
                    )
                    self._write_results[run.tree.name] = rows
                    self._base_pages.pop(node.target_relation, None)
                    run.result_rows = len(rows)
                if self.sim.tracer.enabled:
                    self.sim.tracer.span(
                        run.tree.name,
                        "query",
                        run.submitted_at,
                        run.completed_at - run.submitted_at,
                        "queries",
                        args={"result_rows": run.result_rows},
                    )
                if self.sim.spans is not None:
                    self.sim.spans.query_end(
                        run.tree.name, self.sim.now, run.result_rows
                    )
                # The host drains the result; its pages leave the machine.
                for ref in instr.produced_pages:
                    self._drop_intermediate(ref)
                if self.on_query_complete is not None:
                    self.on_query_complete(
                        run.tree.name, run.completed_at, run.result_rows
                    )
                return

    def _drop_intermediate(self, ref: PageRef) -> None:
        """An intermediate page will never be read again: free its slot
        wherever it lives (controller memory, cache, or nowhere)."""
        if ref.key in self._overflowing:
            # Mid-spill; let the spill finish, then the cache owns it.
            self.cache.discard(ref)
            return
        if self._buffered.pop(ref.key, None) is None:
            self.cache.discard(ref)

    # ------------------------------------------------------------------ tuple-level accounting

    def _charge_tuple_traffic(self, instr: Instruction, rows: int, page: PageRef) -> None:
        """Per-tuple packet bytes a tuple-granularity dispatch would add."""
        width = _record_width(page)
        per_tuple = width + self.model.packet_overhead_bytes
        self.meter.add(tlevels.CONTROL, rows * per_tuple)

    def _charge_pair_traffic(self, instr: JoinInstruction, outer: PageRef, inner: PageRef) -> None:
        """Section 3.3's n*m*(w_o + w_i + c) bytes for one page pair."""
        pairs = outer.row_count * inner.row_count
        per_pair = (
            _record_width(outer) + _record_width(inner) + self.model.packet_overhead_bytes
        )
        self.meter.add(tlevels.CONTROL, pairs * per_pair)


def _is_base(ref: PageRef) -> bool:
    return ref.key.startswith("base:")


def _record_width(ref: PageRef) -> int:
    if ref.payload is None or ref.payload.row_count == 0:
        return 8
    return ref.payload.schema.record_width


def run_benchmark(
    catalog: Catalog,
    queries: Sequence[QueryTree],
    processors: int,
    granularity: Granularity = PAGE,
    **machine_kwargs,
) -> DirectReport:
    """Build a machine, submit ``queries`` simultaneously, run, report."""
    machine = DirectMachine(
        catalog, processors=processors, granularity=granularity, **machine_kwargs
    )
    for tree in queries:
        machine.submit(tree)
    return machine.run()
