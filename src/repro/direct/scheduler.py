"""The three operand granularities as scheduling policies (Section 3.0).

A granularity answers two questions:

1. **When do consumers see a producer's output?**  Page-level (and
   tuple-level) granularity *pipelines*: each produced page is announced
   immediately, so "an operator can be initiated as soon as at least one
   page of each participating relation exists".  Relation-level
   granularity announces everything only at producer completion.
2. **What is the dispatch unit charged for?**  Tuple-level granularity
   pays per-tuple packet overhead through the arbitration network
   (Section 3.3's n*m*(200+c) bytes); page- and relation-level pay per
   page.

The processor-allocation rule of the MC ("insuring that processors are
distributed across all nodes in the query tree") is
:func:`pick_instruction`: among instructions with dispatchable work, take
the one with the fewest processors currently assigned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.direct.instructions import Instruction


@dataclass(frozen=True)
class Granularity:
    """One operand granularity for data-flow query processing."""

    key: str
    #: Announce produced pages to consumers immediately (pipelining)?
    pipeline: bool
    #: Account dispatch traffic/overhead per tuple instead of per page?
    tuple_dispatch: bool
    #: Extra CPU per tuple packet fired through the arbitration network
    #: (tuple granularity only).
    tuple_dispatch_ms: float = 0.0
    #: Stage completed intermediate relations on mass storage.  True for
    #: relation-level granularity: the consuming instruction is enabled
    #: only after the producer completes, so its operand is a classical
    #: temporary relation — produced pages round-trip through the disk
    #: cache to disk and back, exactly the traffic Section 3.2 says
    #: pipelining eliminates.
    materialize_to_disk: bool = False

    def __str__(self) -> str:
        return self.key


#: Coarsest: a node is enabled only when its operands are fully computed.
RELATION = Granularity(
    key="relation", pipeline=False, tuple_dispatch=False, materialize_to_disk=True
)

#: The paper's choice: a page of a relation is the scheduling unit.
PAGE = Granularity(key="page", pipeline=True, tuple_dispatch=False)

#: Finest: a tuple is the scheduling unit; pays per-tuple packet overhead.
TUPLE = Granularity(key="tuple", pipeline=True, tuple_dispatch=True, tuple_dispatch_ms=0.02)

_BY_KEY = {g.key: g for g in (RELATION, PAGE, TUPLE)}


def granularity(key: str) -> Granularity:
    """Look up a granularity by name ('relation' | 'page' | 'tuple')."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(f"unknown granularity {key!r}; choose from {sorted(_BY_KEY)}") from None


# Convenience attributes on the class, so callers can say Granularity.PAGE.
Granularity.RELATION = RELATION
Granularity.PAGE = PAGE
Granularity.TUPLE = TUPLE


def pick_instruction(
    instructions: Iterable[Instruction], metrics=None
) -> Optional[Instruction]:
    """The MC's balancing rule: least-loaded dispatchable instruction.

    Ties break on node id (stable), which gives leaf instructions a mild
    priority since they were created first — they feed everyone else.

    ``metrics`` is an optional :class:`repro.obs.MetricsRegistry`; when
    enabled, every allocation decision is counted by operator kind so the
    ``repro metrics`` report shows where the MC sent processors.
    """
    best: Optional[Instruction] = None
    for instr in instructions:
        if not instr.has_dispatchable():
            continue
        if best is None or (instr.assigned_processors, instr.node.node_id) < (
            best.assigned_processors,
            best.node.node_id,
        ):
            best = instr
    if metrics is not None and metrics.enabled:
        if best is None:
            metrics.counter("scheduler.starved").add()
        else:
            metrics.counter("scheduler.pick", op=best.node.opcode).add()
    return best
