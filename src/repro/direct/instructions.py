"""Runtime instructions: query-tree nodes compiled for the machine.

Each non-scan node of a query tree becomes one :class:`Instruction` — the
paper's unit of control ("the instruction in each memory cell corresponds
to a node in the query tree").  An instruction owns:

* per-operand page tables that grow as producer instructions emit pages,
* a task queue (the units of work dispatched to processors),
* an output assembler that compresses result rows into full pages
  (Section 4.2: partial pages "are compressed to form full pages").

The join instruction implements the paper's nested-loops discipline: tasks
are *outer* pages; a task consumes every inner page, opportunistically and
out of order (the IRC-vector idea), and parks itself when no unseen inner
page is available yet — freeing its processor instead of blocking it,
which is what prevents pipeline deadlock under small processor pools.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import MachineError
from repro.direct.cache import PageRef
from repro.relational.page import Page
from repro.relational.schema import Row, Schema
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    UnionNode,
    UpdateNode,
)


@dataclass
class Task:
    """One unit of processor work.

    ``page`` is the input page (unary) or the outer page (join).  Join
    tasks carry the set of inner page keys already joined, so a parked
    task resumes where it left off.
    """

    instruction: "Instruction"
    page: PageRef
    seen_inner: Set[str] = field(default_factory=set)

    @property
    def is_join(self) -> bool:
        """True for join (outer-page) tasks."""
        return isinstance(self.instruction, JoinInstruction)


class OperandTable:
    """Consumer-side page table for one operand (cf. Fig 4.3 source operands)."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.pages: List[PageRef] = []
        self.complete = False
        self.total_rows = 0

    def add_page(self, ref: PageRef) -> None:
        """A producer delivered one more page of this operand."""
        if self.complete:
            raise MachineError(f"operand {self.name!r} grew after completion")
        self.pages.append(ref)
        self.total_rows += ref.row_count

    def mark_complete(self) -> None:
        """The producer has finished; no further pages will arrive."""
        self.complete = True

    @property
    def page_count(self) -> int:
        """Pages delivered so far."""
        return len(self.pages)


class OutputAssembler:
    """Packs result rows densely into machine pages."""

    def __init__(self, key_prefix: str, schema: Schema, page_bytes: int, disk_ids: int = 2):
        self.key_prefix = key_prefix
        self.schema = schema
        self.page_bytes = page_bytes
        self.disk_ids = disk_ids
        self._buffer: List[Row] = []
        self._page_seq = itertools.count()
        self._capacity = Page(schema, page_bytes).capacity
        self.rows_emitted = 0

    def add_rows(self, rows: List[Row]) -> List[PageRef]:
        """Buffer ``rows``; return any pages completed by them."""
        self._buffer.extend(rows)
        self.rows_emitted += len(rows)
        completed: List[PageRef] = []
        while len(self._buffer) >= self._capacity:
            completed.append(self._make_page(self._buffer[: self._capacity]))
            del self._buffer[: self._capacity]
        return completed

    def flush(self) -> Optional[PageRef]:
        """Emit the final partial page, if any rows remain."""
        if not self._buffer:
            return None
        ref = self._make_page(self._buffer)
        self._buffer = []
        return ref

    def _make_page(self, rows: List[Row]) -> PageRef:
        page = Page(self.schema, self.page_bytes)
        page.extend_unchecked(rows)  # kernel outputs are pre-validated tuples
        seq = next(self._page_seq)
        return PageRef(
            key=f"{self.key_prefix}:{seq}",
            nbytes=self.page_bytes,
            payload=page,
            on_disk=False,
            disk_id=seq % self.disk_ids,
            row_count=page.row_count,
        )


class Instruction:
    """Base runtime instruction.

    Subclasses define task generation and row computation; the machine
    drives fetches, charges time, and calls back into the instruction for
    bookkeeping.
    """

    def __init__(
        self,
        node: QueryNode,
        query: QueryTree,
        output_schema: Schema,
        page_bytes: int,
        disk_ids: int = 2,
    ):
        self.node = node
        self.query = query
        self.output_schema = output_schema
        self.operands: List[OperandTable] = []
        self.consumers: List[Tuple["Instruction", int]] = []
        self.assembler = OutputAssembler(
            f"q{query.query_id}.n{node.node_id}", output_schema, page_bytes, disk_ids
        )
        self.pending: Deque[Task] = deque()
        self.parked: List[Task] = []
        #: Join tasks holding their processor while awaiting broadcast inner
        #: pages: entries are ``(processor, task, timeout_event)``.
        self.waiting: List[tuple] = []
        self.in_flight = 0
        self.assigned_processors = 0
        self.done = False
        self.produced_pages: List[PageRef] = []
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    # -- identity ----------------------------------------------------------------

    @property
    def opcode(self) -> str:
        """The node's operator name."""
        return self.node.opcode

    @property
    def label(self) -> str:
        """Stable display/diagnostic name."""
        return f"{self.query.name}.{self.opcode}{self.node.node_id}"

    # -- state transitions --------------------------------------------------------

    def operand_page_arrived(self, operand_index: int, ref: PageRef) -> None:
        """A producer delivered a page into operand ``operand_index``."""
        self.operands[operand_index].add_page(ref)
        self._on_new_input(operand_index, ref)

    def operand_completed(self, operand_index: int) -> None:
        """A producer finished operand ``operand_index``."""
        self.operands[operand_index].mark_complete()
        self._on_operand_complete(operand_index)

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        raise NotImplementedError

    def _on_operand_complete(self, operand_index: int) -> None:
        pass

    # -- dispatch ------------------------------------------------------------------

    def has_dispatchable(self) -> bool:
        """True when a task could be handed to a processor right now."""
        return bool(self.pending) and not self.done

    def pop_task(self) -> Task:
        """Take the next dispatchable task."""
        return self.pending.popleft()

    def park(self, task: Task) -> None:
        """A join task ran out of available inner pages; shelve it."""
        self.parked.append(task)

    def unpark_all(self) -> None:
        """New inner input arrived: parked tasks become dispatchable again."""
        if self.parked:
            self.pending.extend(self.parked)
            self.parked.clear()

    def is_complete(self) -> bool:
        """True when every operand is complete and all work has drained."""
        if self.done:
            return True
        if not all(op.complete for op in self.operands):
            return False
        return (
            not self.pending
            and not self.parked
            and not self.waiting
            and self.in_flight == 0
        )

    # -- consumption of input pages (page lifetime management) ---------------------

    def input_page_consumed(self, ref: PageRef) -> bool:
        """Record one consumption of an input page.

        Returns True when this instruction will never need ``ref`` again
        (the machine may then drop intermediate pages from the cache).
        Unary instructions consume each input page exactly once.
        """
        return True


class RestrictInstruction(Instruction):
    """Restrict: one task per input page."""

    def __init__(self, node: RestrictNode, query, input_schema: Schema, page_bytes: int):
        super().__init__(node, query, input_schema, page_bytes)
        self.operands = [OperandTable("in", input_schema)]
        self.test = node.predicate.compile(input_schema)

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        self.pending.append(Task(self, ref))

    def compute(self, task: Task) -> List[Row]:
        """Rows of the task's page passing the predicate."""
        return [row for row in task.page.payload.rows() if self.test(row)]


class ProjectInstruction(Instruction):
    """Project: attribute cut + (centralized) duplicate elimination.

    Dedup state lives at the instruction, mirroring DIRECT's centralized
    control; the ring machine revisits this (the paper's open problem).
    """

    def __init__(self, node: ProjectNode, query, input_schema: Schema, page_bytes: int):
        out_schema = input_schema.project(node.attributes)
        super().__init__(node, query, out_schema, page_bytes)
        self.operands = [OperandTable("in", input_schema)]
        self.indices = [input_schema.index_of(a) for a in node.attributes]
        self.eliminate_duplicates = node.eliminate_duplicates
        self._seen: Set[Row] = set()

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        self.pending.append(Task(self, ref))

    def compute(self, task: Task) -> List[Row]:
        """Projected (and deduplicated) rows of the task's page."""
        out: List[Row] = []
        for row in task.page.payload.rows():
            cut = tuple(row[i] for i in self.indices)
            if self.eliminate_duplicates:
                if cut in self._seen:
                    continue
                self._seen.add(cut)
            out.append(cut)
        return out


class UnionInstruction(Instruction):
    """Union: pass-through of both operands with duplicate elimination."""

    def __init__(self, node: UnionNode, query, input_schema: Schema, page_bytes: int):
        super().__init__(node, query, input_schema, page_bytes)
        self.operands = [OperandTable("left", input_schema), OperandTable("right", input_schema)]
        self._seen: Set[Row] = set()

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        self.pending.append(Task(self, ref))

    def compute(self, task: Task) -> List[Row]:
        """Task-page rows not yet emitted by either side."""
        out: List[Row] = []
        for row in task.page.payload.rows():
            if row not in self._seen:
                self._seen.add(row)
                out.append(row)
        return out


class AppendInstruction(Instruction):
    """Append: pass the child's rows through toward the target relation.

    The machine installs the target's new content at query completion
    (the shared apply path); this instruction only assembles the rows
    that arrive from the subtree.
    """

    def __init__(self, node: AppendNode, query, input_schema: Schema, page_bytes: int):
        super().__init__(node, query, input_schema, page_bytes)
        self.operands = [OperandTable("in", input_schema)]

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        self.pending.append(Task(self, ref))

    def compute(self, task: Task) -> List[Row]:
        """All rows of the task's page (appends filter nothing)."""
        return list(task.page.payload.rows())


class DeleteInstruction(Instruction):
    """Delete: operand 0 is the target relation itself.

    Rows *failing* the predicate survive; the emitted stream is the
    target's whole new content (the write-result convention shared with
    the ring machine).
    """

    def __init__(self, node: DeleteNode, query, input_schema: Schema, page_bytes: int):
        super().__init__(node, query, input_schema, page_bytes)
        self.operands = [OperandTable("target", input_schema)]
        self.test = node.predicate.compile(input_schema)

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        self.pending.append(Task(self, ref))

    def compute(self, task: Task) -> List[Row]:
        """Rows of the task's page that survive the delete."""
        return [row for row in task.page.payload.rows() if not self.test(row)]


class UpdateInstruction(Instruction):
    """Update: operand 0 is the target relation; matching rows are
    transformed and every row is re-emitted (whole new content)."""

    def __init__(self, node: UpdateNode, query, input_schema: Schema, page_bytes: int):
        super().__init__(node, query, input_schema, page_bytes)
        self.operands = [OperandTable("target", input_schema)]
        self.apply = node.compile_apply(input_schema)

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        self.pending.append(Task(self, ref))

    def compute(self, task: Task) -> List[Row]:
        """Every row of the task's page, transformed where matching."""
        return [self.apply(row) for row in task.page.payload.rows()]


class JoinInstruction(Instruction):
    """Nested-loops join with broadcast inner streaming.

    Operand 0 is the outer relation (tasks), operand 1 the inner
    (streamed).  Each outer page must meet every inner page; the per-task
    ``seen_inner`` set plays the role of the paper's IRC vector.
    """

    def __init__(
        self,
        node: JoinNode,
        query,
        outer_schema: Schema,
        inner_schema: Schema,
        page_bytes: int,
    ):
        out_schema = outer_schema.concat_unique(inner_schema)
        super().__init__(node, query, out_schema, page_bytes)
        self.operands = [
            OperandTable("outer", outer_schema),
            OperandTable("inner", inner_schema),
        ]
        self.condition = node.condition
        self.outer_index = outer_schema.index_of(node.condition.outer_attr)
        self.inner_index = inner_schema.index_of(node.condition.inner_attr)
        self._inner_consumptions: Dict[str, int] = {}

    # -- input flow ---------------------------------------------------------------

    def _on_new_input(self, operand_index: int, ref: PageRef) -> None:
        if operand_index == 0:
            self.pending.append(Task(self, ref))
        else:
            # A new inner page may unblock parked outer tasks.
            self.unpark_all()

    def _on_operand_complete(self, operand_index: int) -> None:
        if operand_index == 1:
            # Inner completion lets parked tasks finish their IRC sweep.
            self.unpark_all()

    def has_dispatchable(self) -> bool:
        if self.done or not self.pending:
            return False
        inner = self.operands[1]
        # An outer task can only make progress if at least one inner page
        # exists or the inner side is known complete (possibly empty).
        return inner.page_count > 0 or inner.complete

    # -- inner streaming -------------------------------------------------------------

    def next_unseen_inner(self, task: Task, cache=None) -> Optional[PageRef]:
        """An available inner page this task has not joined yet, else None.

        When a cache is provided, pages whose delivery is already on the
        interconnect are preferred (join the broadcast for free), then
        cache-resident pages, then anything else — the opportunistic
        out-of-order consumption the paper's IRC vectors enable.
        """
        fallback: Optional[PageRef] = None
        resident: Optional[PageRef] = None
        for ref in self.operands[1].pages:
            if ref.key in task.seen_inner:
                continue
            if cache is None:
                return ref
            if cache.has_inflight(ref):
                return ref
            if resident is None and cache.is_resident(ref):
                resident = ref
            if fallback is None:
                fallback = ref
        return resident if resident is not None else fallback

    def inner_exhausted(self, task: Task) -> bool:
        """True when the task has met every inner page and none can follow."""
        return self.operands[1].complete and self.next_unseen_inner(task) is None

    def compute_pair(self, task: Task, inner_ref: PageRef) -> List[Row]:
        """Join the task's outer page with one inner page (row-exact)."""
        from repro.direct.exec_model import join_pages

        return join_pages(
            task.page.payload,
            inner_ref.payload,
            self.condition,
            self.outer_index,
            self.inner_index,
        )

    def inner_page_consumed(self, ref: PageRef) -> bool:
        """Record one outer-task pass over an inner page.

        Returns True once every outer page has met ``ref`` — only then may
        an intermediate inner page be dropped.  Before the outer operand
        completes the requirement is unknown, so the answer is False.
        """
        count = self._inner_consumptions.get(ref.key, 0) + 1
        self._inner_consumptions[ref.key] = count
        outer = self.operands[0]
        return outer.complete and count >= outer.page_count

    def input_page_consumed(self, ref: PageRef) -> bool:
        # Outer pages are consumed exactly once (their task finished).
        return True
