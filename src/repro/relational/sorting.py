"""External merge sort over paged relations.

The sorted-merge join of Blasgen & Eswaran [5] — the O(n log n) uniprocessor
algorithm the paper contrasts with nested loops — needs a sort that works a
page at a time.  This module implements the classic two-phase external merge
sort: sort each memory-load of pages into a run, then k-way merge the runs.

The sort is exercised with a bounded "memory budget" measured in pages so
tests can force genuinely multi-run merges on small data.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Row


def _key_fn(relation: Relation, by: Sequence[str]):
    indices = [relation.schema.index_of(a) for a in by]
    if not indices:
        raise SchemaError("sort needs at least one key attribute")
    return lambda row: tuple(row[i] for i in indices)


def make_runs(relation: Relation, by: Sequence[str], memory_pages: int) -> List[List[Row]]:
    """Phase one: sorted runs, each at most ``memory_pages`` pages of rows."""
    if memory_pages < 1:
        raise SchemaError("external sort needs at least one page of memory")
    key = _key_fn(relation, by)
    runs: List[List[Row]] = []
    buffer: List[Row] = []
    pages_buffered = 0
    for page in relation.pages:
        buffer.extend(page.rows())
        pages_buffered += 1
        if pages_buffered >= memory_pages:
            runs.append(sorted(buffer, key=key))
            buffer, pages_buffered = [], 0
    if buffer:
        runs.append(sorted(buffer, key=key))
    return runs


def merge_runs(runs: List[List[Row]], relation: Relation, by: Sequence[str]) -> Iterator[Row]:
    """Phase two: k-way merge of sorted runs into one sorted stream."""
    key = _key_fn(relation, by)
    return iter(heapq.merge(*runs, key=key))


def sort_relation(
    relation: Relation,
    by: Sequence[str],
    memory_pages: int = 64,
    name: Optional[str] = None,
) -> Relation:
    """A new relation with ``relation``'s rows ordered by ``by``.

    The sort is stable across equal keys (runs preserve input order and
    :func:`heapq.merge` is stable).
    """
    runs = make_runs(relation, by, memory_pages)
    out = Relation(
        name or f"sort({relation.name})",
        relation.schema,
        page_bytes=relation.page_bytes,
    )
    out.insert_many(merge_runs(runs, relation, by))
    return out


def is_sorted(relation: Relation, by: Sequence[str]) -> bool:
    """True when the relation's rows are in nondecreasing ``by`` order."""
    key = _key_fn(relation, by)
    previous = None
    for row in relation.rows():
        current = key(row)
        if previous is not None and current < previous:
            return False
        previous = current
    return True
