"""Reference relational algebra operators — the correctness oracle.

Section 2.1 names the query-tree operators: restrict, join, append, delete
(and Section 5 discusses project, i.e. "elimination of unwanted attributes
and duplicate tuples").  This module implements them — plus the usual set
operators — directly over :class:`~repro.relational.relation.Relation`
values, with three join algorithms matching the Blasgen–Eswaran study the
paper cites [5]:

* ``nested_loops_join`` — O(n*m); "appears to be the best algorithm for
  execution of the join operator on multiple processors"
* ``sort_merge_join`` — O(n log n) for equijoins
* ``hash_join`` — the modern equijoin baseline

Both machine simulators are validated against these functions.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import PredicateError, SchemaError
from repro.relational.predicate import JoinCondition, Predicate
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.sorting import sort_relation


def _result_page_bytes(*relations: Relation) -> int:
    """Result pages inherit the first operand's page size."""
    return relations[0].page_bytes


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


def restrict(relation: Relation, predicate: Predicate, name: Optional[str] = None) -> Relation:
    """Rows of ``relation`` satisfying ``predicate`` (selection).

    The paper's "restrict" operator; keeps the full schema.
    """
    predicate.validate(relation.schema)
    test = predicate.compile(relation.schema)
    out = Relation(
        name or f"restrict({relation.name})",
        relation.schema,
        page_bytes=_result_page_bytes(relation),
    )
    out.insert_many(row for row in relation.rows() if test(row))
    return out


def project(
    relation: Relation,
    attributes: Sequence[str],
    name: Optional[str] = None,
    eliminate_duplicates: bool = True,
) -> Relation:
    """Keep only ``attributes``, optionally eliminating duplicate tuples.

    Section 5 defines project as "elimination of unwanted attributes and
    duplicate tuples"; duplicate elimination can be disabled to model the
    cheap attribute-cut phase separately from the expensive dedup phase.
    """
    out_schema = relation.schema.project(attributes)
    indices = [relation.schema.index_of(a) for a in attributes]
    out = Relation(
        name or f"project({relation.name})",
        out_schema,
        page_bytes=_result_page_bytes(relation),
    )
    if eliminate_duplicates:
        seen = set()
        for row in relation.rows():
            cut = tuple(row[i] for i in indices)
            if cut not in seen:
                seen.add(cut)
                out.insert(cut)
    else:
        out.insert_many(tuple(row[i] for i in indices) for row in relation.rows())
    return out


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _join_output(outer: Relation, inner: Relation, name: Optional[str]) -> Relation:
    schema = outer.schema.concat_unique(inner.schema)
    return Relation(
        name or f"join({outer.name},{inner.name})",
        schema,
        page_bytes=_result_page_bytes(outer, inner),
    )


def nested_loops_join(
    outer: Relation,
    inner: Relation,
    condition: JoinCondition,
    name: Optional[str] = None,
) -> Relation:
    """The paper's preferred parallel join: every outer row against every
    inner row, emitting concatenated rows where the condition holds."""
    condition.validate(outer.schema, inner.schema)
    test = condition.compile(outer.schema, inner.schema)
    out = _join_output(outer, inner, name)
    inner_rows = list(inner.rows())
    for orow in outer.rows():
        for irow in inner_rows:
            if test(orow, irow):
                out.insert(orow + irow)
    return out


def sort_merge_join(
    outer: Relation,
    inner: Relation,
    condition: JoinCondition,
    name: Optional[str] = None,
) -> Relation:
    """Equijoin by sorting both inputs on the join attributes and merging.

    One of the Blasgen–Eswaran uniprocessor algorithms [5]; O(n log n) but
    "difficult to implement [in parallel] and at various points severely
    constrains the amount of parallelism" — we provide it as the baseline.
    """
    if not condition.is_equijoin:
        raise PredicateError("sort-merge join requires an equality condition")
    condition.validate(outer.schema, inner.schema)
    oi = outer.schema.index_of(condition.outer_attr)
    ii = inner.schema.index_of(condition.inner_attr)
    out = _join_output(outer, inner, name)

    orows = sorted(outer.rows(), key=lambda r: r[oi])
    irows = sorted(inner.rows(), key=lambda r: r[ii])
    i = j = 0
    while i < len(orows) and j < len(irows):
        okey, ikey = orows[i][oi], irows[j][ii]
        if okey < ikey:
            i += 1
        elif okey > ikey:
            j += 1
        else:
            # Emit the full cross product of the equal-key groups.
            j_end = j
            while j_end < len(irows) and irows[j_end][ii] == okey:
                j_end += 1
            i_end = i
            while i_end < len(orows) and orows[i_end][oi] == okey:
                i_end += 1
            for a in range(i, i_end):
                for b in range(j, j_end):
                    out.insert(orows[a] + irows[b])
            i, j = i_end, j_end
    return out


def hash_join(
    outer: Relation,
    inner: Relation,
    condition: JoinCondition,
    name: Optional[str] = None,
) -> Relation:
    """Equijoin by hashing the inner relation (the modern baseline)."""
    if not condition.is_equijoin:
        raise PredicateError("hash join requires an equality condition")
    condition.validate(outer.schema, inner.schema)
    oi = outer.schema.index_of(condition.outer_attr)
    ii = inner.schema.index_of(condition.inner_attr)
    out = _join_output(outer, inner, name)

    table: dict = {}
    for irow in inner.rows():
        table.setdefault(irow[ii], []).append(irow)
    for orow in outer.rows():
        for irow in table.get(orow[oi], ()):
            out.insert(orow + irow)
    return out


def join(
    outer: Relation,
    inner: Relation,
    condition: JoinCondition,
    name: Optional[str] = None,
    algorithm: str = "nested_loops",
) -> Relation:
    """Dispatch to a join algorithm by name.

    ``algorithm`` is one of ``nested_loops``, ``sort_merge``, ``hash``.
    """
    algorithms: dict[str, Callable] = {
        "nested_loops": nested_loops_join,
        "sort_merge": sort_merge_join,
        "hash": hash_join,
    }
    try:
        fn = algorithms[algorithm]
    except KeyError:
        raise PredicateError(
            f"unknown join algorithm {algorithm!r}; choose from {sorted(algorithms)}"
        ) from None
    return fn(outer, inner, condition, name)


def semijoin(
    outer: Relation,
    inner: Relation,
    condition: JoinCondition,
    name: Optional[str] = None,
) -> Relation:
    """Outer rows that join with at least one inner row (outer schema kept)."""
    condition.validate(outer.schema, inner.schema)
    test = condition.compile(outer.schema, inner.schema)
    inner_rows = list(inner.rows())
    out = Relation(
        name or f"semijoin({outer.name},{inner.name})",
        outer.schema,
        page_bytes=_result_page_bytes(outer),
    )
    out.insert_many(
        orow for orow in outer.rows() if any(test(orow, irow) for irow in inner_rows)
    )
    return out


# ---------------------------------------------------------------------------
# Update operators (Section 2.1 names append and delete)
# ---------------------------------------------------------------------------


def append(target: Relation, source: Relation, name: Optional[str] = None) -> Relation:
    """A new relation holding ``target`` followed by ``source`` rows.

    Schemas must be positionally compatible (same types and widths).
    """
    _check_union_compatible(target.schema, source.schema)
    out = Relation(
        name or target.name,
        target.schema,
        page_bytes=_result_page_bytes(target),
    )
    out.insert_many(target.rows())
    out.insert_many(source.rows())
    return out


def delete(target: Relation, predicate: Predicate, name: Optional[str] = None) -> Relation:
    """A new relation holding the rows of ``target`` NOT matching ``predicate``."""
    predicate.validate(target.schema)
    test = predicate.compile(target.schema)
    out = Relation(
        name or target.name,
        target.schema,
        page_bytes=_result_page_bytes(target),
    )
    out.insert_many(row for row in target.rows() if not test(row))
    return out


def update(
    target: Relation,
    predicate: Predicate,
    set_attr: str,
    delta,
    name: Optional[str] = None,
) -> Relation:
    """A new relation with ``set_attr += delta`` on rows matching ``predicate``.

    Non-matching rows pass through unchanged, so the result is the whole
    new content of the target — the same contract the machines' update
    kernels honor.
    """
    predicate.validate(target.schema)
    test = predicate.compile(target.schema)
    index = target.schema.index_of(set_attr)
    out = Relation(
        name or target.name,
        target.schema,
        page_bytes=_result_page_bytes(target),
    )
    out.insert_many(
        row[:index] + (row[index] + delta,) + row[index + 1 :] if test(row) else row
        for row in target.rows()
    )
    return out


# ---------------------------------------------------------------------------
# Set operators
# ---------------------------------------------------------------------------


def _check_union_compatible(a: Schema, b: Schema) -> None:
    if a.arity != b.arity:
        raise SchemaError(f"arity mismatch: {a.names} vs {b.names}")
    for x, y in zip(a.attributes, b.attributes):
        if x.dtype is not y.dtype or x.byte_width != y.byte_width:
            raise SchemaError(
                f"attribute type mismatch: {x.name}:{x.dtype} vs {y.name}:{y.dtype}"
            )


def union(a: Relation, b: Relation, name: Optional[str] = None) -> Relation:
    """Set union (duplicates eliminated)."""
    _check_union_compatible(a.schema, b.schema)
    out = Relation(name or f"union({a.name},{b.name})", a.schema, page_bytes=a.page_bytes)
    seen = set()
    for row in list(a.rows()) + list(b.rows()):
        if row not in seen:
            seen.add(row)
            out.insert(row)
    return out


def difference(a: Relation, b: Relation, name: Optional[str] = None) -> Relation:
    """Set difference ``a - b`` (duplicates in ``a`` eliminated)."""
    _check_union_compatible(a.schema, b.schema)
    drop = set(b.rows())
    out = Relation(name or f"diff({a.name},{b.name})", a.schema, page_bytes=a.page_bytes)
    seen = set()
    for row in a.rows():
        if row not in drop and row not in seen:
            seen.add(row)
            out.insert(row)
    return out


def intersect(a: Relation, b: Relation, name: Optional[str] = None) -> Relation:
    """Set intersection (duplicates eliminated)."""
    _check_union_compatible(a.schema, b.schema)
    keep = set(b.rows())
    out = Relation(name or f"intersect({a.name},{b.name})", a.schema, page_bytes=a.page_bytes)
    seen = set()
    for row in a.rows():
        if row in keep and row not in seen:
            seen.add(row)
            out.insert(row)
    return out


def distinct(relation: Relation, name: Optional[str] = None) -> Relation:
    """Duplicate elimination keeping the full schema."""
    return project(relation, list(relation.schema.names), name=name)


def sort(relation: Relation, by: Sequence[str], name: Optional[str] = None) -> Relation:
    """Rows ordered by the ``by`` attributes (external merge sort)."""
    return sort_relation(relation, by, name=name)
