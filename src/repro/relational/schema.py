"""Schemas with fixed-format tuples.

The paper's instruction packets carry a "Tuple Length & Format" field for
every operand (Figure 4.3), i.e. tuples are fixed-length records whose
layout is known to every instruction processor.  We model exactly that:
a :class:`Schema` is an ordered list of typed attributes that packs each row
into a fixed-width byte record with :mod:`struct`.
"""

from __future__ import annotations

import enum
import functools
import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import SchemaError

Row = tuple
"""A row is a plain Python tuple of values, positionally matching a schema."""


class DataType(enum.Enum):
    """Storable attribute types.

    ``INT`` is a 64-bit signed integer, ``FLOAT`` an IEEE double, and
    ``CHAR`` a fixed-width byte string (the width comes from the attribute).
    """

    INT = "int"
    FLOAT = "float"
    CHAR = "char"

    def struct_code(self, width: int) -> str:
        """The :mod:`struct` format code for one value of this type."""
        if self is DataType.INT:
            return "q"
        if self is DataType.FLOAT:
            return "d"
        return f"{width}s"

    def byte_width(self, declared_width: int) -> int:
        """Storage width in bytes for a value of this type."""
        if self is DataType.CHAR:
            return declared_width
        return 8


@dataclass(frozen=True)
class Attribute:
    """One typed column of a schema.

    ``width`` is only meaningful for :attr:`DataType.CHAR` attributes, where
    it is the fixed byte width of the field; values shorter than the width
    are NUL-padded on disk and stripped on read.
    """

    name: str
    dtype: DataType
    width: int = 8

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"attribute name {self.name!r} is not a valid identifier")
        if self.dtype is DataType.CHAR and self.width <= 0:
            raise SchemaError(f"CHAR attribute {self.name!r} needs a positive width")

    @property
    def byte_width(self) -> int:
        """Storage width of this attribute in bytes."""
        return self.dtype.byte_width(self.width)


@dataclass(frozen=True)
class Schema:
    """An ordered, named collection of attributes with a fixed record format.

    >>> s = Schema.build(("id", DataType.INT), ("name", DataType.CHAR, 12))
    >>> s.record_width
    20
    >>> s.unpack(s.pack((7, "alice")))
    (7, 'alice')
    """

    attributes: tuple[Attribute, ...]
    _index: dict = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        object.__setattr__(self, "_index", {a.name: i for i, a in enumerate(self.attributes)})
        fmt = "<" + "".join(a.dtype.struct_code(a.width) for a in self.attributes)
        object.__setattr__(self, "_struct", struct.Struct(fmt))

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, *specs: tuple) -> "Schema":
        """Build a schema from ``(name, dtype)`` or ``(name, dtype, width)``.

        This is the idiomatic constructor; passing :class:`Attribute`
        objects directly also works via the dataclass constructor.
        """
        attrs = []
        for spec in specs:
            if len(spec) == 2:
                name, dtype = spec
                attrs.append(Attribute(name, dtype))
            elif len(spec) == 3:
                name, dtype, width = spec
                attrs.append(Attribute(name, dtype, width))
            else:
                raise SchemaError(f"bad attribute spec: {spec!r}")
        return cls(tuple(attrs))

    # -- introspection ------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def record_width(self) -> int:
        """Width in bytes of one packed row."""
        return self._struct.size

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"no attribute {name!r} in schema {self.names}") from None

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` named ``name``."""
        return self.attributes[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema keeping only ``names``, in the given order."""
        return Schema(tuple(self.attribute(n) for n in names))

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """A new schema with attributes renamed per ``mapping``."""
        attrs = []
        for a in self.attributes:
            new = mapping.get(a.name, a.name)
            attrs.append(Attribute(new, a.dtype, a.width))
        return Schema(tuple(attrs))

    def concat(self, other: "Schema", *, prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of the cross product ``self x other``.

        Colliding names must be disambiguated with the prefixes; a collision
        that survives prefixing raises :class:`SchemaError`.
        """
        attrs = [Attribute(prefix_self + a.name, a.dtype, a.width) for a in self.attributes]
        attrs += [Attribute(prefix_other + a.name, a.dtype, a.width) for a in other.attributes]
        return Schema(tuple(attrs))

    def concat_unique(self, other: "Schema") -> "Schema":
        """Schema of ``self x other`` keeping self's names unchanged.

        Colliding names from ``other`` get the first free numeric suffix
        (``b`` -> ``b_1`` -> ``b_2`` ...), so left-deep join chains always
        retain the outer relation's attribute names — the join attribute of
        a chain stays addressable at every level.
        """
        return _concat_unique(self, other)

    # -- row packing --------------------------------------------------------

    def validate_row(self, row: Row) -> None:
        """Raise :class:`SchemaError` unless ``row`` matches this schema."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} != schema arity {self.arity} ({self.names})"
            )
        for value, attr_ in zip(row, self.attributes):
            if attr_.dtype is DataType.INT:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise SchemaError(f"attribute {attr_.name!r} expects int, got {value!r}")
            elif attr_.dtype is DataType.FLOAT:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SchemaError(f"attribute {attr_.name!r} expects float, got {value!r}")
            else:
                if not isinstance(value, str):
                    raise SchemaError(f"attribute {attr_.name!r} expects str, got {value!r}")
                if len(value.encode("utf-8")) > attr_.width:
                    raise SchemaError(
                        f"value {value!r} overflows CHAR({attr_.width}) attribute {attr_.name!r}"
                    )

    def pack(self, row: Row) -> bytes:
        """Pack ``row`` into its fixed-width byte record."""
        self.validate_row(row)
        encoded = []
        for value, attr_ in zip(row, self.attributes):
            if attr_.dtype is DataType.CHAR:
                encoded.append(value.encode("utf-8"))
            elif attr_.dtype is DataType.FLOAT:
                encoded.append(float(value))
            else:
                encoded.append(value)
        return self._struct.pack(*encoded)

    def unpack(self, record: bytes) -> Row:
        """Unpack one byte record back into a row tuple."""
        if len(record) != self.record_width:
            raise SchemaError(
                f"record is {len(record)} bytes, schema needs {self.record_width}"
            )
        values = []
        for raw, attr_ in zip(self._struct.unpack(record), self.attributes):
            if attr_.dtype is DataType.CHAR:
                values.append(raw.rstrip(b"\x00").decode("utf-8"))
            else:
                values.append(raw)
        return tuple(values)

    def pack_many(self, rows: Iterable[Row]) -> bytes:
        """Pack a run of rows into contiguous records."""
        return b"".join(self.pack(r) for r in rows)

    def unpack_many(self, data: bytes) -> list[Row]:
        """Unpack contiguous records produced by :meth:`pack_many`."""
        width = self.record_width
        if len(data) % width:
            raise SchemaError(f"{len(data)} bytes is not a multiple of record width {width}")
        return [self.unpack(data[i : i + width]) for i in range(0, len(data), width)]


@functools.lru_cache(maxsize=1024)
def _concat_unique(a: Schema, b: Schema) -> Schema:
    """Cached body of :meth:`Schema.concat_unique`.

    Schemas are frozen and hash by value, and join nodes resolve their
    output schema on every dispatch — memoizing skips re-running the
    suffixing loop and, more importantly, recompiling the result's
    :mod:`struct` format each time.
    """
    taken = set(a.names)
    attrs = list(a.attributes)
    for attr_ in b.attributes:
        name = attr_.name
        suffix = 1
        while name in taken:
            name = f"{attr_.name}_{suffix}"
            suffix += 1
        taken.add(name)
        attrs.append(Attribute(name, attr_.dtype, attr_.width))
    return Schema(tuple(attrs))
