"""Relation statistics and selectivity estimation.

The machine simulators need cardinality estimates to size result page
tables and to reason about expected operator output volume; the experiment
harness uses the same estimates to report workload characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.relational.predicate import (
    And,
    Between,
    Comparison,
    CompareOp,
    FalsePredicate,
    JoinCondition,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.relation import Relation


@dataclass(frozen=True)
class ColumnStats:
    """Min/max/distinct summary of one attribute."""

    name: str
    distinct: int
    minimum: object
    maximum: object


@dataclass(frozen=True)
class RelationStats:
    """Cardinality plus per-column summaries for one relation."""

    name: str
    cardinality: int
    pages: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> ColumnStats:
        """Stats for column ``name`` (KeyError if not collected)."""
        return self.columns[name]


def collect_stats(relation: Relation) -> RelationStats:
    """One pass over ``relation`` computing per-column summaries."""
    names = relation.schema.names
    values: Dict[str, set] = {n: set() for n in names}
    minimum: Dict[str, object] = {}
    maximum: Dict[str, object] = {}
    for row in relation.rows():
        for i, name in enumerate(names):
            v = row[i]
            values[name].add(v)
            if name not in minimum or v < minimum[name]:
                minimum[name] = v
            if name not in maximum or v > maximum[name]:
                maximum[name] = v
    columns = {
        n: ColumnStats(n, len(values[n]), minimum.get(n), maximum.get(n)) for n in names
    }
    return RelationStats(relation.name, relation.cardinality, relation.page_count, columns)


# ---------------------------------------------------------------------------
# Selectivity estimation (System R style defaults)
# ---------------------------------------------------------------------------

_DEFAULT_EQ_SELECTIVITY = 0.1
_DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


def estimate_selectivity(predicate: Predicate, stats: RelationStats) -> float:
    """Estimated fraction of rows satisfying ``predicate``.

    Uses distinct counts for equality, uniform-range interpolation for
    inequalities, and independence for conjunction/disjunction — the
    classic System R heuristics, clamped to [0, 1].
    """
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, FalsePredicate):
        return 0.0
    if isinstance(predicate, Not):
        return max(0.0, 1.0 - estimate_selectivity(predicate.inner, stats))
    if isinstance(predicate, And):
        return estimate_selectivity(predicate.left, stats) * estimate_selectivity(
            predicate.right, stats
        )
    if isinstance(predicate, Or):
        a = estimate_selectivity(predicate.left, stats)
        b = estimate_selectivity(predicate.right, stats)
        return min(1.0, a + b - a * b)
    if isinstance(predicate, Between):
        return _range_fraction(stats, predicate.attribute, predicate.low, predicate.high)
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, stats)
    return _DEFAULT_RANGE_SELECTIVITY


def _comparison_selectivity(cmp: Comparison, stats: RelationStats) -> float:
    col = stats.columns.get(cmp.attribute)
    if cmp.rhs_is_attr or col is None or col.distinct == 0:
        if cmp.op is CompareOp.EQ:
            return _DEFAULT_EQ_SELECTIVITY
        return _DEFAULT_RANGE_SELECTIVITY
    if cmp.op is CompareOp.EQ:
        return 1.0 / col.distinct
    if cmp.op is CompareOp.NE:
        return 1.0 - 1.0 / col.distinct
    if cmp.op in (CompareOp.LT, CompareOp.LE):
        return _range_fraction(stats, cmp.attribute, col.minimum, cmp.rhs)
    return _range_fraction(stats, cmp.attribute, cmp.rhs, col.maximum)


def _range_fraction(stats: RelationStats, attribute: str, low, high) -> float:
    col = stats.columns.get(attribute)
    if col is None or col.minimum is None:
        return _DEFAULT_RANGE_SELECTIVITY
    if not isinstance(col.minimum, (int, float)) or not isinstance(low, (int, float)):
        return _DEFAULT_RANGE_SELECTIVITY
    span = col.maximum - col.minimum
    if span <= 0:
        return 1.0 if low <= col.minimum <= high else 0.0
    lo = max(float(low), float(col.minimum))
    hi = min(float(high), float(col.maximum))
    if hi < lo:
        return 0.0
    return min(1.0, max(0.0, (hi - lo) / span))


def estimate_join_cardinality(
    outer: RelationStats, inner: RelationStats, condition: JoinCondition
) -> int:
    """Estimated output rows of ``outer JOIN inner`` on ``condition``."""
    cross = outer.cardinality * inner.cardinality
    if condition.op is CompareOp.EQ:
        o = outer.columns.get(condition.outer_attr)
        i = inner.columns.get(condition.inner_attr)
        distinct = max(
            o.distinct if o else _guess_distinct(outer),
            i.distinct if i else _guess_distinct(inner),
            1,
        )
        return max(0, cross // distinct)
    return int(cross * _DEFAULT_RANGE_SELECTIVITY)


def _guess_distinct(stats: RelationStats) -> int:
    return max(1, stats.cardinality // 10)
