"""Relations as schemas plus page lists, and the page tables that name them.

The paper assumes "the data is represented by page tables, pointing to pages
either in a cache or on mass storage" (Section 2.3).  :class:`PageTable`
models exactly that indirection: an ordered list of page identifiers plus a
completeness flag (an operand's table keeps growing while the producing
instruction is still running, which is what enables page-level pipelining).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import PageError
from repro.relational.page import DEFAULT_PAGE_BYTES, Page, pack_rows_into_pages
from repro.relational.schema import Row, Schema

_relation_ids = itertools.count(1)


class Relation:
    """A named relation: a schema and an ordered list of pages.

    Relations are the leaves of query trees and the values the reference
    operators produce.  Pages are dense (no tombstones); deletion produces a
    rewritten relation, matching the paper's stream-of-pages model.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        pages: Optional[Sequence[Page]] = None,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        self.name = name
        self.schema = schema
        self.page_bytes = page_bytes
        self.relation_id = next(_relation_ids)
        self._pages: List[Page] = list(pages) if pages is not None else []
        #: page_bytes -> densely packed page images (see :meth:`packed_pages`).
        self._packed_cache: Dict[int, List[Page]] = {}
        for page in self._pages:
            if page.schema.record_width != schema.record_width:
                raise PageError(
                    f"page record width {page.schema.record_width} does not match "
                    f"relation {name!r} record width {schema.record_width}"
                )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Row],
        page_bytes: int = DEFAULT_PAGE_BYTES,
        validated: bool = False,
    ) -> "Relation":
        """Build a relation by packing ``rows`` densely into pages.

        ``validated=True`` asserts the rows are already valid tuples of
        ``schema`` and skips the per-row type checks (see
        :func:`pack_rows_into_pages`); page boundaries are identical.
        """
        return cls(
            name,
            schema,
            pack_rows_into_pages(schema, rows, page_bytes, validated=validated),
            page_bytes,
        )

    def empty_like(self, name: str) -> "Relation":
        """A new empty relation with this relation's schema and page size."""
        return Relation(name, self.schema, [], self.page_bytes)

    # -- shape --------------------------------------------------------------

    @property
    def pages(self) -> List[Page]:
        """The page list (live; mutate via :meth:`append_page`/:meth:`insert`)."""
        return self._pages

    @property
    def page_count(self) -> int:
        """Number of pages."""
        return len(self._pages)

    @property
    def cardinality(self) -> int:
        """Total number of rows."""
        return sum(p.row_count for p in self._pages)

    @property
    def byte_size(self) -> int:
        """Total size as stored: page count times the page byte budget."""
        return self.page_count * self.page_bytes

    @property
    def data_bytes(self) -> int:
        """Bytes of actual record data (excluding page padding/headers)."""
        return self.cardinality * self.schema.record_width

    def __len__(self) -> int:
        return self.cardinality

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {self.cardinality} rows, "
            f"{self.page_count} pages x {self.page_bytes}B)"
        )

    def packed_pages(self, page_bytes: int) -> List[Page]:
        """Densely packed page images of this relation at ``page_bytes``.

        Cached per page size and shared between callers — the machines
        use these as read-only base-relation images, so every simulator
        built over the same catalog repacks nothing.  **Treat the result
        as immutable**; any mutator on the relation drops the cache.
        """
        cached = self._packed_cache.get(page_bytes)
        if cached is None:
            cached = pack_rows_into_pages(
                self.schema, list(self.rows()), page_bytes, validated=True
            )
            self._packed_cache[page_bytes] = cached
        return cached

    # -- mutation -----------------------------------------------------------

    def append_page(self, page: Page) -> int:
        """Append a prepared page; returns its page number."""
        if page.schema.record_width != self.schema.record_width:
            raise PageError(
                f"page record width {page.schema.record_width} does not match "
                f"relation {self.name!r}"
            )
        self._packed_cache = {}
        self._pages.append(page)
        return len(self._pages) - 1

    def insert(self, row: Row) -> None:
        """Append one row, opening a new page when the last one is full."""
        if self._packed_cache:
            self._packed_cache = {}
        if not self._pages or self._pages[-1].is_full:
            self._pages.append(Page(self.schema, self.page_bytes))
        self._pages[-1].append(row)

    def insert_many(self, rows: Iterable[Row]) -> int:
        """Append many rows; returns how many were inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def compact(self) -> None:
        """Repack all rows densely (drops partially-filled interior pages)."""
        self._packed_cache = {}
        self._pages = pack_rows_into_pages(
            self.schema, list(self.rows()), self.page_bytes, validated=True
        )

    # -- access -------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Iterate every row, page by page."""
        for page in self._pages:
            yield from page.rows()

    def page(self, number: int) -> Page:
        """Page ``number``; raises :class:`PageError` when out of range."""
        try:
            return self._pages[number]
        except IndexError:
            raise PageError(
                f"relation {self.name!r} has {self.page_count} pages, no page {number}"
            ) from None

    def row_multiset(self) -> dict:
        """Rows with multiplicities — the canonical value for equality checks."""
        counts: dict = {}
        for row in self.rows():
            counts[row] = counts.get(row, 0) + 1
        return counts

    def same_rows_as(self, other: "Relation") -> bool:
        """Bag-equality of contents (ignores page boundaries and order)."""
        return self.row_multiset() == other.row_multiset()

    def page_table(self, complete: bool = True) -> "PageTable":
        """A :class:`PageTable` naming every current page of this relation."""
        table = PageTable(relation_name=self.name, schema=self.schema)
        for number in range(self.page_count):
            table.add_page(number)
        if complete:
            table.mark_complete()
        return table


@dataclass
class PageTable:
    """An ordered list of page identifiers for one operand relation.

    The machines schedule work from page tables, not from relations: an
    operand's table is *incomplete* while its producer instruction is still
    emitting pages, and page-level granularity enables an instruction as
    soon as the table holds at least one page (Section 3.2).
    """

    relation_name: str
    schema: Schema
    page_numbers: List[int] = field(default_factory=list)
    complete: bool = False

    def add_page(self, page_number: int) -> None:
        """Record that ``page_number`` of the operand now exists."""
        if self.complete:
            raise PageError(
                f"page table for {self.relation_name!r} is complete; cannot grow"
            )
        self.page_numbers.append(page_number)

    def mark_complete(self) -> None:
        """Declare that no further pages will arrive."""
        self.complete = True

    @property
    def page_count(self) -> int:
        """Pages known so far."""
        return len(self.page_numbers)

    @property
    def has_pages(self) -> bool:
        """True when at least one page exists (page-level enabling rule)."""
        return bool(self.page_numbers)

    def __iter__(self) -> Iterator[int]:
        return iter(self.page_numbers)

    def __len__(self) -> int:
        return len(self.page_numbers)
