"""A catalog of named relations — the "relational database" of Section 3.2.

The benchmark database is "a relational database containing 15 relations
with a combined size of 5.5 megabytes"; the catalog is where that database
lives and where query trees resolve their leaf operands.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import CatalogError
from repro.relational.relation import Relation


class Catalog:
    """Mutable mapping from relation name to :class:`Relation`.

    Supports registration, replacement (the ``append``/``delete`` update
    operators rewrite base relations), and aggregate size introspection.
    """

    def __init__(self):
        self._relations: Dict[str, Relation] = {}

    # -- registration -------------------------------------------------------

    def register(self, relation: Relation) -> Relation:
        """Add ``relation`` under its own name; duplicate names are an error."""
        if relation.name in self._relations:
            raise CatalogError(f"relation {relation.name!r} is already registered")
        self._relations[relation.name] = relation
        return relation

    def replace(self, relation: Relation) -> Relation:
        """Install ``relation`` under its name, replacing any previous one."""
        self._relations[relation.name] = relation
        return relation

    def drop(self, name: str) -> Relation:
        """Remove and return the relation called ``name``."""
        try:
            return self._relations.pop(name)
        except KeyError:
            raise CatalogError(f"no relation {name!r} to drop") from None

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> Relation:
        """The relation called ``name``; raises :class:`CatalogError` if absent."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(
                f"no relation {name!r}; catalog has {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        return self.get(name)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> List[str]:
        """Registered relation names, sorted."""
        return sorted(self._relations)

    # -- aggregates ---------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Combined stored size of every relation (page-granular)."""
        return sum(r.byte_size for r in self._relations.values())

    @property
    def total_rows(self) -> int:
        """Combined cardinality of every relation."""
        return sum(r.cardinality for r in self._relations.values())

    def summary(self) -> str:
        """A human-readable table of the catalog contents."""
        lines = [f"{'relation':<16}{'rows':>10}{'pages':>8}{'bytes':>12}"]
        for name in self.names:
            rel = self._relations[name]
            lines.append(
                f"{name:<16}{rel.cardinality:>10}{rel.page_count:>8}{rel.byte_size:>12}"
            )
        lines.append(
            f"{'TOTAL':<16}{self.total_rows:>10}"
            f"{sum(r.page_count for r in self):>8}{self.total_bytes:>12}"
        )
        return "\n".join(lines)
