"""Predicate language for restricts and join conditions.

Restrict nodes carry a :class:`Predicate` over one schema; join nodes carry
a :class:`JoinCondition` relating an attribute of the outer relation to an
attribute of the inner relation (the nested-loops join of Section 2.1 is a
"conditional cross product").

A small DSL keeps query construction readable::

    from repro.relational.predicate import attr

    p = (attr("salary") > 50_000) & (attr("dept") == "db")
    j = attr("emp_dept").equals_attr("dept_id")
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Callable, FrozenSet, Union

from repro.errors import PredicateError
from repro.relational.schema import Row, Schema

Scalar = Union[int, float, str]


class CompareOp(enum.Enum):
    """The six comparison operators."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    @property
    def fn(self) -> Callable[[Scalar, Scalar], bool]:
        """The Python comparison implementing this operator."""
        return _OP_FN[self]

    def flipped(self) -> "CompareOp":
        """The operator with its operand order reversed (a<b ↔ b>a)."""
        return _OP_FLIP[self]


_OP_FN = {
    CompareOp.EQ: operator.eq,
    CompareOp.NE: operator.ne,
    CompareOp.LT: operator.lt,
    CompareOp.LE: operator.le,
    CompareOp.GT: operator.gt,
    CompareOp.GE: operator.ge,
}

_OP_FLIP = {
    CompareOp.EQ: CompareOp.EQ,
    CompareOp.NE: CompareOp.NE,
    CompareOp.LT: CompareOp.GT,
    CompareOp.LE: CompareOp.GE,
    CompareOp.GT: CompareOp.LT,
    CompareOp.GE: CompareOp.LE,
}


class Predicate:
    """Base class for boolean predicates over one schema's rows."""

    def evaluate(self, row: Row, schema: Schema) -> bool:
        """Truth of this predicate on ``row`` (interpreted path)."""
        raise NotImplementedError

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        """A fast row->bool closure bound to ``schema`` attribute positions."""
        raise NotImplementedError

    def references(self) -> FrozenSet[str]:
        """Attribute names this predicate reads."""
        raise NotImplementedError

    def validate(self, schema: Schema) -> None:
        """Raise :class:`PredicateError` if any referenced attribute is absent."""
        missing = [n for n in sorted(self.references()) if n not in schema]
        if missing:
            raise PredicateError(
                f"predicate references missing attributes {missing}; schema has {schema.names}"
            )

    # -- combinators ---------------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Always true — a restrict with this predicate is a full scan."""

    def evaluate(self, row: Row, schema: Schema) -> bool:
        return True

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        return lambda row: True

    def references(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class FalsePredicate(Predicate):
    """Always false — selects the empty relation."""

    def evaluate(self, row: Row, schema: Schema) -> bool:
        return False

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        return lambda row: False

    def references(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attribute <op> constant`` or ``attribute <op> attribute``.

    When ``rhs_is_attr`` is true the right-hand side names a second
    attribute of the same schema (useful on concatenated join schemas).
    """

    attribute: str
    op: CompareOp
    rhs: Scalar
    rhs_is_attr: bool = False

    def evaluate(self, row: Row, schema: Schema) -> bool:
        left = row[schema.index_of(self.attribute)]
        right = row[schema.index_of(self.rhs)] if self.rhs_is_attr else self.rhs
        return self.op.fn(left, right)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.attribute)
        fn = self.op.fn
        if self.rhs_is_attr:
            ridx = schema.index_of(self.rhs)
            return lambda row: fn(row[idx], row[ridx])
        rhs = self.rhs
        return lambda row: fn(row[idx], rhs)

    def references(self) -> FrozenSet[str]:
        if self.rhs_is_attr:
            return frozenset({self.attribute, self.rhs})
        return frozenset({self.attribute})

    def __repr__(self) -> str:
        rhs = self.rhs if self.rhs_is_attr else repr(self.rhs)
        return f"({self.attribute} {self.op.value} {rhs})"


@dataclass(frozen=True)
class Between(Predicate):
    """``low <= attribute <= high`` (inclusive range restrict)."""

    attribute: str
    low: Scalar
    high: Scalar

    def evaluate(self, row: Row, schema: Schema) -> bool:
        value = row[schema.index_of(self.attribute)]
        return self.low <= value <= self.high

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        idx = schema.index_of(self.attribute)
        low, high = self.low, self.high
        return lambda row: low <= row[idx] <= high

    def references(self) -> FrozenSet[str]:
        return frozenset({self.attribute})

    def __repr__(self) -> str:
        return f"({self.low!r} <= {self.attribute} <= {self.high!r})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Row, schema: Schema) -> bool:
        return self.left.evaluate(row, schema) and self.right.evaluate(row, schema)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        lf, rf = self.left.compile(schema), self.right.compile(schema)
        return lambda row: lf(row) and rf(row)

    def references(self) -> FrozenSet[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Row, schema: Schema) -> bool:
        return self.left.evaluate(row, schema) or self.right.evaluate(row, schema)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        lf, rf = self.left.compile(schema), self.right.compile(schema)
        return lambda row: lf(row) or rf(row)

    def references(self) -> FrozenSet[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    inner: Predicate

    def evaluate(self, row: Row, schema: Schema) -> bool:
        return not self.inner.evaluate(row, schema)

    def compile(self, schema: Schema) -> Callable[[Row], bool]:
        f = self.inner.compile(schema)
        return lambda row: not f(row)

    def references(self) -> FrozenSet[str]:
        return self.inner.references()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


# ---------------------------------------------------------------------------
# Join conditions (binary: outer row vs inner row)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinCondition:
    """``outer.attribute <op> inner.attribute`` — the join's theta condition."""

    outer_attr: str
    op: CompareOp
    inner_attr: str

    def evaluate(self, outer_row: Row, outer_schema: Schema, inner_row: Row, inner_schema: Schema) -> bool:
        """Truth of the condition on one (outer, inner) row pair."""
        return self.op.fn(
            outer_row[outer_schema.index_of(self.outer_attr)],
            inner_row[inner_schema.index_of(self.inner_attr)],
        )

    def compile(self, outer_schema: Schema, inner_schema: Schema) -> Callable[[Row, Row], bool]:
        """A fast (outer_row, inner_row)->bool closure."""
        oi = outer_schema.index_of(self.outer_attr)
        ii = inner_schema.index_of(self.inner_attr)
        fn = self.op.fn
        return lambda orow, irow: fn(orow[oi], irow[ii])

    def validate(self, outer_schema: Schema, inner_schema: Schema) -> None:
        """Raise unless both sides name real attributes."""
        if self.outer_attr not in outer_schema:
            raise PredicateError(
                f"join condition references {self.outer_attr!r}, absent from outer "
                f"schema {outer_schema.names}"
            )
        if self.inner_attr not in inner_schema:
            raise PredicateError(
                f"join condition references {self.inner_attr!r}, absent from inner "
                f"schema {inner_schema.names}"
            )

    @property
    def is_equijoin(self) -> bool:
        """True for equality conditions (hash/sort-merge joins apply)."""
        return self.op is CompareOp.EQ

    def __repr__(self) -> str:
        return f"(outer.{self.outer_attr} {self.op.value} inner.{self.inner_attr})"


# ---------------------------------------------------------------------------
# DSL
# ---------------------------------------------------------------------------


class _AttrRef:
    """Fluent builder so ``attr('x') > 3`` yields a :class:`Comparison`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _cmp(self, op: CompareOp, other) -> Predicate:
        if isinstance(other, _AttrRef):
            return Comparison(self.name, op, other.name, rhs_is_attr=True)
        return Comparison(self.name, op, other)

    def __eq__(self, other):  # type: ignore[override]
        return self._cmp(CompareOp.EQ, other)

    def __ne__(self, other):  # type: ignore[override]
        return self._cmp(CompareOp.NE, other)

    def __lt__(self, other):
        return self._cmp(CompareOp.LT, other)

    def __le__(self, other):
        return self._cmp(CompareOp.LE, other)

    def __gt__(self, other):
        return self._cmp(CompareOp.GT, other)

    def __ge__(self, other):
        return self._cmp(CompareOp.GE, other)

    def between(self, low: Scalar, high: Scalar) -> Between:
        """Inclusive range predicate on this attribute."""
        return Between(self.name, low, high)

    def equals_attr(self, inner_attr: str) -> JoinCondition:
        """Equijoin condition ``outer.self == inner.inner_attr``."""
        return JoinCondition(self.name, CompareOp.EQ, inner_attr)

    def joins(self, op: CompareOp, inner_attr: str) -> JoinCondition:
        """Theta-join condition ``outer.self <op> inner.inner_attr``."""
        return JoinCondition(self.name, op, inner_attr)

    __hash__ = None  # not hashable: == is overloaded to build predicates


def attr(name: str) -> _AttrRef:
    """Entry point of the predicate DSL: a reference to attribute ``name``."""
    return _AttrRef(name)
