"""Byte-accurate fixed-size pages of fixed-width records.

A page is the unit of scheduling for the paper's preferred *page-level
granularity* (Section 3.2), the unit the disk cache and mass storage move
(Section 3.3: "any such mechanism relies on block transfers of data"), and
the operand carried in instruction packets (Figure 4.3).

Layout of a serialized page::

    +----------------+---------------+----------------------+---------+
    | record_count:4 | record_width:4| records (packed rows)| padding |
    +----------------+---------------+----------------------+---------+

Records are stored densely; deletion is handled a level up (heap files
rewrite pages), which matches the paper's append-only page streams where
partial pages are *compressed* into full pages by the receiving IC.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Sequence

from repro.errors import PageError
from repro.relational.schema import Row, Schema

_HEADER = struct.Struct("<II")

#: Default page size used by the relational substrate (the Section 3.3
#: analysis uses 1,000-byte pages; the ring machine uses 16K pages — both
#: are passed explicitly by the machines).
DEFAULT_PAGE_BYTES = 4096


class Page:
    """A fixed-capacity page holding packed rows of a single schema.

    Pages know their byte budget and refuse to overflow it, so the "5.5
    megabyte database" of the benchmark is literally 5.5 MB of page bytes.
    """

    __slots__ = ("schema", "page_bytes", "_rows", "_capacity", "dirty")

    def __init__(self, schema: Schema, page_bytes: int = DEFAULT_PAGE_BYTES):
        if page_bytes < _HEADER.size + schema.record_width:
            raise PageError(
                f"page of {page_bytes} bytes cannot hold even one "
                f"{schema.record_width}-byte record"
            )
        self.schema = schema
        self.page_bytes = page_bytes
        self._rows: List[Row] = []
        # Both fields are set once and never change, so the division is
        # hoisted out of the append/is_full hot path.
        self._capacity = (page_bytes - _HEADER.size) // schema.record_width
        #: True when the in-memory image has diverged from the last
        #: serialized/durable copy; cleared by :meth:`mark_clean`.
        self.dirty = False

    # -- capacity -----------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of records this page can hold."""
        return self._capacity

    @property
    def row_count(self) -> int:
        """Number of records currently on the page."""
        return len(self._rows)

    @property
    def used_bytes(self) -> int:
        """Bytes occupied by the header plus current records."""
        return _HEADER.size + self.row_count * self.schema.record_width

    @property
    def free_slots(self) -> int:
        """Records that can still be appended."""
        return self.capacity - self.row_count

    @property
    def is_full(self) -> bool:
        """True when no more records fit."""
        return self.row_count >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when the page holds no records."""
        return not self._rows

    # -- mutation -----------------------------------------------------------

    def append(self, row: Row) -> None:
        """Append one row; raises :class:`PageError` when the page is full."""
        if self.is_full:
            raise PageError(f"page is full ({self.capacity} records)")
        self.schema.validate_row(row)
        self._rows.append(tuple(row))
        self.dirty = True

    def mutate_row(self, slot: int, row: Row) -> Row:
        """Overwrite the record in ``slot`` in place; returns the old row.

        This is the page-granularity write the WAL logs (DESIGN.md §14):
        machine code must only reach it through a logged transaction —
        the R011 lint rule enforces that — but the page itself just
        mutates and marks the frame dirty.
        """
        self.schema.validate_row(row)
        if not 0 <= slot < len(self._rows):
            raise PageError(
                f"no slot {slot} on page with {self.row_count} records"
            )
        old = self._rows[slot]
        self._rows[slot] = tuple(row)
        self.dirty = True
        return old

    def mark_clean(self) -> None:
        """Record that the current image has been made durable."""
        self.dirty = False

    def try_append(self, row: Row) -> bool:
        """Append ``row`` if there is room; return whether it was stored."""
        if self.is_full:
            return False
        self.append(row)
        return True

    def extend(self, rows: Iterable[Row]) -> int:
        """Append rows until the page fills; return how many were taken."""
        taken = 0
        for row in rows:
            if not self.try_append(row):
                break
            taken += 1
        return taken

    def extend_unchecked(self, rows: Sequence[Row]) -> None:
        """Bulk-append rows that are already valid tuples of this schema.

        The machines' result shipping moves rows that came off existing
        pages or out of the page kernels — valid by construction — so
        re-running :meth:`Schema.validate_row` per row is pure overhead.
        Overflow is still checked; callers sizing by :attr:`capacity` can
        never trip it.
        """
        if self.row_count + len(rows) > self._capacity:
            raise PageError(
                f"bulk append of {len(rows)} rows overflows page "
                f"({self.row_count}/{self._capacity} records)"
            )
        self._rows.extend(rows)
        self.dirty = True

    def clear(self) -> None:
        """Drop every record from the page."""
        self._rows.clear()
        self.dirty = True

    # -- access -------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Iterate the records on the page in insertion order."""
        return iter(self._rows)

    def row(self, slot: int) -> Row:
        """The record in ``slot``; raises :class:`PageError` on a bad slot."""
        try:
            return self._rows[slot]
        except IndexError:
            raise PageError(f"no slot {slot} on page with {self.row_count} records") from None

    def __iter__(self) -> Iterator[Row]:
        return self.rows()

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:
        return f"Page({self.row_count}/{self.capacity} records, {self.page_bytes}B)"

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to exactly :attr:`page_bytes` bytes (zero-padded)."""
        body = self.schema.pack_many(self._rows)
        header = _HEADER.pack(self.row_count, self.schema.record_width)
        payload = header + body
        return payload + b"\x00" * (self.page_bytes - len(payload))

    @classmethod
    def from_bytes(cls, schema: Schema, data: bytes) -> "Page":
        """Rebuild a page from :meth:`to_bytes` output."""
        if len(data) < _HEADER.size:
            raise PageError("page bytes shorter than header")
        count, width = _HEADER.unpack_from(data)
        if width != schema.record_width:
            raise PageError(
                f"page records are {width} bytes but schema needs {schema.record_width}"
            )
        end = _HEADER.size + count * width
        if end > len(data):
            raise PageError(f"page header claims {count} records but bytes are short")
        page = cls(schema, page_bytes=len(data))
        if count > page.capacity:
            raise PageError(f"page header claims {count} records over capacity {page.capacity}")
        for row in schema.unpack_many(data[_HEADER.size : end]):
            page.append(row)
        # A page rebuilt from serialized bytes *is* the durable image.
        page.dirty = False
        return page

    def copy(self) -> "Page":
        """An independent copy of this page (dirty state included)."""
        dup = Page(self.schema, self.page_bytes)
        dup._rows = list(self._rows)
        dup.dirty = self.dirty
        return dup


def page_capacity(schema: Schema, page_bytes: int) -> int:
    """Records a page of ``page_bytes`` holds, without building one."""
    return (page_bytes - _HEADER.size) // schema.record_width


def pack_rows_into_pages(
    schema: Schema,
    rows: Iterable[Row],
    page_bytes: int = DEFAULT_PAGE_BYTES,
    validated: bool = False,
) -> List[Page]:
    """Pack ``rows`` densely into a list of pages.

    This is the "compression" step the paper's ICs perform on arriving
    partial pages (Section 4.2: "as pages (which may not be full) arrive,
    they are compressed to form full pages").

    ``validated=True`` asserts every row is already a valid tuple of
    ``schema`` (e.g. rows read back off existing pages) and packs by
    capacity-sized slices instead of per-row checked appends; the page
    boundaries are identical either way.
    """
    pages: List[Page] = []
    if validated:
        row_list = rows if isinstance(rows, list) else list(rows)
        capacity = page_capacity(schema, page_bytes)
        for start in range(0, len(row_list), capacity):
            page = Page(schema, page_bytes)
            page.extend_unchecked(row_list[start : start + capacity])
            pages.append(page)
        return pages
    current = Page(schema, page_bytes)
    for row in rows:
        if not current.try_append(row):
            pages.append(current)
            current = Page(schema, page_bytes)
            current.append(row)
    if not current.is_empty:
        pages.append(current)
    return pages
