"""Relational storage and algebra substrate.

This package is the "database" underneath both machine simulators: schemas
with fixed-format tuples, byte-accurate slotted pages, heap files, a catalog
of named relations, a predicate/expression language, and a reference
implementation of the relational algebra operators the paper's query trees
use (restrict, project, join, append, delete, and the set operators).

The reference operators in :mod:`repro.relational.operators` are the
correctness oracle for the machine simulators: integration tests check that
queries executed page-by-page on the simulated hardware produce exactly the
rows the oracle produces.
"""

from repro.relational.schema import Attribute, DataType, Schema
from repro.relational.page import Page
from repro.relational.relation import PageTable, Relation
from repro.relational.heapfile import HeapFile, RowId
from repro.relational.catalog import Catalog
from repro.relational.predicate import (
    And,
    Between,
    Comparison,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    attr,
)
from repro.relational import operators

__all__ = [
    "Attribute",
    "DataType",
    "Schema",
    "Page",
    "PageTable",
    "Relation",
    "HeapFile",
    "RowId",
    "Catalog",
    "Predicate",
    "Comparison",
    "Between",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "attr",
    "operators",
]
