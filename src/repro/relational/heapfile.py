"""Heap files: page-based storage with row identifiers and free-space reuse.

The benchmark database lives in heap files on the simulated mass-storage
devices.  Unlike :class:`~repro.relational.relation.Relation` (a dense,
append-only page stream, matching intermediate results), a heap file
supports in-place delete and update via row identifiers, which the paper's
``append``/``delete`` query-tree operators need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.errors import PageError
from repro.relational.page import DEFAULT_PAGE_BYTES, Page
from repro.relational.relation import Relation
from repro.relational.schema import Row, Schema


@dataclass(frozen=True, order=True)
class RowId:
    """Stable address of a row: ``(page_number, slot)``."""

    page_number: int
    slot: int


class _HeapPage:
    """A page with tombstones so deletes leave stable slots behind."""

    __slots__ = ("schema", "page_bytes", "slots", "dirty")

    def __init__(self, schema: Schema, page_bytes: int):
        self.schema = schema
        self.page_bytes = page_bytes
        self.slots: List[Optional[Row]] = []
        #: Diverged from the durable copy since the last flush.
        self.dirty = False

    @property
    def capacity(self) -> int:
        # One status byte per slot on top of the record, mirroring a real
        # slotted-page layout with a validity map.
        return (self.page_bytes - 8) // (self.schema.record_width + 1)

    @property
    def live_count(self) -> int:
        return sum(1 for s in self.slots if s is not None)

    def free_slot(self) -> Optional[int]:
        for i, s in enumerate(self.slots):
            if s is None:
                return i
        if len(self.slots) < self.capacity:
            self.slots.append(None)
            return len(self.slots) - 1
        return None


class HeapFile:
    """Mutable paged storage for one relation's base data.

    Provides insert/delete/update by :class:`RowId`, full scans, and export
    to a dense :class:`Relation` (the form query execution consumes).
    """

    def __init__(self, name: str, schema: Schema, page_bytes: int = DEFAULT_PAGE_BYTES):
        self.name = name
        self.schema = schema
        self.page_bytes = page_bytes
        self._pages: List[_HeapPage] = []

    # -- shape --------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of pages allocated so far."""
        return len(self._pages)

    @property
    def cardinality(self) -> int:
        """Number of live rows."""
        return sum(p.live_count for p in self._pages)

    def __len__(self) -> int:
        return self.cardinality

    # -- mutation -----------------------------------------------------------

    def insert(self, row: Row) -> RowId:
        """Store ``row`` in the first free slot; returns its address."""
        self.schema.validate_row(row)
        for number, page in enumerate(self._pages):
            slot = page.free_slot()
            if slot is not None:
                page.slots[slot] = tuple(row)
                page.dirty = True
                return RowId(number, slot)
        page = _HeapPage(self.schema, self.page_bytes)
        self._pages.append(page)
        slot = page.free_slot()
        if slot is None:
            raise PageError(f"page of {self.page_bytes} bytes holds no records")
        page.slots[slot] = tuple(row)
        page.dirty = True
        return RowId(len(self._pages) - 1, slot)

    def insert_many(self, rows) -> List[RowId]:
        """Insert each row; returns the addresses in order."""
        return [self.insert(r) for r in rows]

    def delete(self, rid: RowId) -> Row:
        """Remove and return the row at ``rid``; raises on a dead slot."""
        row = self.fetch(rid)
        page = self._pages[rid.page_number]
        page.slots[rid.slot] = None
        page.dirty = True
        return row

    def delete_where(self, keep_if_false: Callable[[Row], bool]) -> int:
        """Delete every live row for which the callable returns True."""
        deleted = 0
        for page in self._pages:
            for i, row in enumerate(page.slots):
                if row is not None and keep_if_false(row):
                    page.slots[i] = None
                    page.dirty = True
                    deleted += 1
        return deleted

    def update(self, rid: RowId, row: Row) -> None:
        """Overwrite the row at ``rid`` in place."""
        self.schema.validate_row(row)
        self.fetch(rid)
        page = self._pages[rid.page_number]
        page.slots[rid.slot] = tuple(row)
        page.dirty = True

    def vacuum(self) -> None:
        """Compact live rows to the front, dropping empty pages.

        Row identifiers are invalidated, as in a real heap reorganization.
        """
        rows = list(self.scan())
        self._pages = []
        for row in rows:
            self.insert(row)

    # -- access -------------------------------------------------------------

    def fetch(self, rid: RowId) -> Row:
        """The row at ``rid``; raises :class:`PageError` on a bad address."""
        if not 0 <= rid.page_number < len(self._pages):
            raise PageError(f"{self.name!r}: no page {rid.page_number}")
        page = self._pages[rid.page_number]
        if not 0 <= rid.slot < len(page.slots):
            raise PageError(f"{self.name!r}: no slot {rid.slot} on page {rid.page_number}")
        row = page.slots[rid.slot]
        if row is None:
            raise PageError(f"{self.name!r}: slot {rid} is empty")
        return row

    def scan(self) -> Iterator[Row]:
        """Iterate live rows in storage order."""
        for page in self._pages:
            for row in page.slots:
                if row is not None:
                    yield row

    def scan_with_rids(self) -> Iterator[tuple[RowId, Row]]:
        """Iterate ``(rid, row)`` pairs for live rows."""
        for number, page in enumerate(self._pages):
            for slot, row in enumerate(page.slots):
                if row is not None:
                    yield RowId(number, slot), row

    def to_relation(self, name: Optional[str] = None) -> Relation:
        """Export live rows as a dense :class:`Relation` for query execution."""
        out = Relation(name or self.name, self.schema, page_bytes=self.page_bytes)
        out.insert_many(self.scan())
        return out

    # -- durability ---------------------------------------------------------

    def dirty_page_numbers(self) -> List[int]:
        """Pages whose in-memory image has diverged since the last flush."""
        return [n for n, page in enumerate(self._pages) if page.dirty]

    def flush_dirty(self, cache=None, disk_id: int = 0) -> int:
        """Write every dirty page out; returns how many were flushed.

        With ``cache`` (a :class:`repro.direct.cache.DiskCache`), each
        dirty page's dense image is pushed through the cache's write
        port as a ``<name>:heap:<n>`` frame with a disk copy, charging
        the same port/interconnect costs as any machine-produced page.
        Without a cache the flush is pure bookkeeping (the durable copy
        is assumed current — e.g. after a WAL-driven commit already
        forced the images).
        """
        flushed = 0
        for number, heap_page in enumerate(self._pages):
            if not heap_page.dirty:
                continue
            if cache is not None:
                from repro.direct.cache import PageRef

                image = Page(self.schema, self.page_bytes)
                image.extend(row for row in heap_page.slots if row is not None)
                image.mark_clean()
                ref = PageRef(
                    key=f"{self.name}:heap:{number}",
                    nbytes=self.page_bytes,
                    payload=image,
                    on_disk=True,
                    disk_id=disk_id,
                    row_count=image.row_count,
                )
                # The frame lands clean: a heap flush *creates* the disk
                # copy, unlike an intermediate page that still owes one.
                cache.write_page(ref, lambda: None, dirty=False)
            heap_page.dirty = False
            flushed += 1
        return flushed
