"""The master controller (MC) — Section 4.1.

The MC "serves a number of functions": host communication (the query
queue), admission with concurrency checks, distribution of instructions to
ICs over the inner ring, arbitration of the IP pool ("the ICs compete with
each other for the processors in the IP pool"), and disk-cache allocation.

IP arbitration policy: grants go one at a time to the requesting IC
holding the fewest IPs ("in a manner which maximizes system performance by
insuring that processors are distributed across all nodes in the query
tree").  One pool slot is reserved for instructions whose operands are all
complete — such an instruction always runs to completion with a single IP,
which guarantees machine-wide progress (no allocation deadlock through
producer/consumer chains).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, TYPE_CHECKING

from repro.errors import MachineError
from repro.ring.concurrency import LockManager, LockRequest
from repro.query.tree import QueryTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.ring.controller import InstructionController
    from repro.ring.machine import RingMachine
    from repro.ring.processor import InstructionProcessor


class MasterController:
    """The MC: query queue, admission, and IP-pool arbitration."""

    def __init__(self, machine: "RingMachine"):
        self.machine = machine
        self.locks = LockManager()
        self.query_queue: Deque[QueryTree] = deque()
        self.free_ips: List["InstructionProcessor"] = []
        #: Outstanding IP wants per IC id.
        self.wants: Dict[int, int] = {}
        self.queries_admitted = 0
        self.queries_completed = 0

    # ------------------------------------------------------------------ admission

    def enqueue(self, tree: QueryTree) -> None:
        """A query arrived from the host."""
        self.query_queue.append(tree)

    def try_admit(self) -> None:
        """Admit queued queries in FIFO order while resources allow.

        A query needs (a) its whole lock set and (b) one free IC per
        operator node.  FIFO admission: the head blocks the tail, so a
        heavy writer cannot be starved.
        """
        while self.query_queue:
            tree = self.query_queue[0]
            request = self.machine.lock_request_for(tree)
            needed_ics = len(tree.operators())
            if needed_ics > self.machine.total_ics:
                raise MachineError(
                    f"query {tree.name} needs {needed_ics} ICs, machine has "
                    f"{self.machine.total_ics}"
                )
            if needed_ics > self.machine.free_ic_count():
                return
            if not self.locks.try_acquire(request):
                return
            self.query_queue.popleft()
            self.queries_admitted += 1
            self.machine.activate_query(tree)

    def query_finished(self, tree: QueryTree) -> None:
        """Root instruction done: release locks and retry admission."""
        self.locks.release(tree.name)
        self.queries_completed += 1
        self.try_admit()

    # ------------------------------------------------------------------ IP pool

    def add_free_ip(self, ip: "InstructionProcessor") -> None:
        """An IP returned to the pool (startup or RELEASE_IP)."""
        self.free_ips.append(ip)
        self.grant_loop()

    def request_ips(self, ic: "InstructionController", count: int) -> None:
        """REQUEST_IPS control packet from an IC."""
        self.wants[ic.ic_id] = self.wants.get(ic.ic_id, 0) + count
        self.grant_loop()
        if not self.free_ips:
            # Pool exhausted: ask hoarding ICs to return surplus idle IPs.
            for other in self.machine.active_ics():
                if other is not ic and not other.done and not other.dead:
                    other.release_surplus_ips()

    def grant_loop(self) -> None:
        """Hand out free IPs one at a time, least-loaded IC first.

        The last free IP is reserved for "ready" instructions (operands
        all complete), which guarantees progress; see the module docstring.
        """
        while self.free_ips:
            candidates = [
                self.machine.ic_by_id(ic_id)
                for ic_id, want in self.wants.items()
                if want > 0
            ]
            candidates = [
                ic for ic in candidates if ic is not None and not ic.done and not ic.dead
            ]
            if not candidates:
                return
            if len(self.free_ips) == 1:
                ready = [
                    ic for ic in candidates if all(op.complete for op in ic.operands)
                ]
                if not ready:
                    return
                candidates = ready
            chosen = min(candidates, key=lambda ic: (len(ic.my_ips), ic.ic_id))
            self.wants[chosen.ic_id] -= 1
            if self.wants[chosen.ic_id] <= 0:
                del self.wants[chosen.ic_id]
            ip = self.free_ips.pop(0)
            self.machine.mc_grant_ip(chosen, ip)

    def cancel_wants(self, ic: "InstructionController") -> None:
        """Drop an IC's outstanding requests (its instruction finished)."""
        self.wants.pop(ic.ic_id, None)

    def has_starving_requests(self, other_than: "InstructionController") -> bool:
        """True when some other IC wants IPs and the pool is empty.

        ICs consult this to decide whether to return surplus idle IPs
        early instead of hoarding them against possible future input.
        """
        if self.free_ips:
            return False
        return any(
            want > 0 and ic_id != other_than.ic_id for ic_id, want in self.wants.items()
        )

    @property
    def free_ip_count(self) -> int:
        """IPs currently in the pool."""
        return len(self.free_ips)
