"""DLCN-style communication rings (Section 4.1).

The paper adopts the Distributed Loop Computer Network [13]: a
shift-register-insertion ring carrying variable-length messages.  For
simulation we model each ring as a bandwidth-limited medium: a message of
``n`` bytes occupies the loop for ``insertion_delay + n/rate`` — multiple
small messages interleave in FIFO order, which is how insertion rings
behave under load.  Broadcast costs one traversal (requirement 4 of
Section 4.0: "a page from the inner relation can be distributed to some or
all of the participating processors simultaneously").

The ring keeps byte counters so experiments can compare offered load
against the technology options the paper prices (40 Mbps TTL shift
registers, 1 Gbps ECL, 400 Mbps fiber).
"""

from __future__ import annotations

from typing import Callable, List

from repro import hw
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


class Ring:
    """One communications ring with bandwidth accounting."""

    def __init__(self, sim: Simulator, model: hw.RingModel, name: str):
        self.sim = sim
        self.model = model
        self.name = name
        self._medium = Resource(sim, name, capacity=1)
        self.bytes_carried = 0
        self.messages_carried = 0
        self.broadcasts = 0
        # Pre-bound observability (the session never flips after the
        # simulator is built): a disabled run pays one ``is not None``
        # check per message, and an enabled run skips the per-message
        # registry re-keying by holding its instruments directly.
        self._trace = sim.tracer if sim.tracer.enabled else None
        # Packet conservation (Section 4's shift-register insertion
        # protocol: every message inserted into the loop is also removed).
        # Tracked only under sanitize mode — the removal count needs a
        # wrapper around every delivery callback.
        self._sanitizer = sim.sanitizer
        self.packets_injected = 0
        self.packets_removed = 0
        if self._sanitizer is not None:
            self._sanitizer.register_finish_check(
                f"ring[{name}]", self._sanitize_finish
            )
        if sim.metrics.enabled:
            metrics = sim.metrics
            self._bytes_counter = metrics.counter("ring.bytes", ring=name)
            self._messages_counter = metrics.counter("ring.messages", ring=name)
            self._broadcasts_counter = metrics.counter("ring.broadcasts", ring=name)
            self._message_bytes_tally = metrics.tally("ring.message_bytes", ring=name)
        else:
            self._bytes_counter = None

    def send(self, nbytes: int, deliver: Callable[[], None]) -> None:
        """Transmit one ``nbytes`` message; ``deliver`` fires at arrival."""
        self._accept(nbytes, deliver, broadcast=False)

    def broadcast(self, nbytes: int, deliver: Callable[[], None]) -> None:
        """Transmit one message that every tap on the loop can copy.

        Cost is identical to a point-to-point send — that is the whole
        point of the ring's broadcast facility.
        """
        self._accept(nbytes, deliver, broadcast=True)

    def _accept(self, nbytes: int, deliver: Callable[[], None], broadcast: bool) -> None:
        self.bytes_carried += nbytes
        self.messages_carried += 1
        if broadcast:
            self.broadcasts += 1
        if self._trace is not None:
            self._trace.instant(
                "ring.broadcast" if broadcast else "ring.send",
                "ring",
                self.sim.now,
                self.name,
                args={"bytes": nbytes, "queued": self._medium.queued},
            )
        if self._bytes_counter is not None:
            self._bytes_counter.add(nbytes)
            self._messages_counter.add()
            if broadcast:
                self._broadcasts_counter.add()
            self._message_bytes_tally.observe(nbytes)
        if self._sanitizer is not None:
            self.packets_injected += 1
            deliver = self._counted_removal(deliver)
        self._medium.submit(self.model.transfer_time_ms(nbytes), deliver, nbytes=nbytes)

    def _counted_removal(self, deliver: Callable[[], None]) -> Callable[[], None]:
        def removed() -> None:
            self.packets_removed += 1
            deliver()

        return removed

    def _sanitize_finish(self) -> List[str]:
        """Packet-conservation invariant for the sanitizer."""
        if self.packets_injected != self.packets_removed:
            return [
                f"packet conservation violated: {self.packets_injected} injected, "
                f"{self.packets_removed} removed"
            ]
        return []

    # -- measurement ---------------------------------------------------------

    def offered_mbps(self, elapsed_ms: float) -> float:
        """Average offered load in megabits/second over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return 0.0
        return self.bytes_carried * 8.0 / 1e6 / (elapsed_ms / 1000.0)

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of the loop's capacity in use (in-flight time included)."""
        return self._medium.utilization(elapsed_ms)

    @property
    def queue_depth(self) -> int:
        """Messages waiting to enter the loop."""
        return self._medium.queued

    @property
    def peak_queue(self) -> int:
        """Deepest insertion queue seen so far."""
        return self._medium.stats.peak_queue

    @property
    def mean_queue_wait_ms(self) -> float:
        """Mean time a message waited to enter the loop."""
        return self._medium.stats.mean_wait()

    def __repr__(self) -> str:
        return f"Ring({self.name!r}, {self.model.bit_rate_mbps} Mbps, {self.bytes_carried} B)"
