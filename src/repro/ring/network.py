"""DLCN-style communication rings (Section 4.1).

The paper adopts the Distributed Loop Computer Network [13]: a
shift-register-insertion ring carrying variable-length messages.  For
simulation we model each ring as a bandwidth-limited medium: a message of
``n`` bytes occupies the loop for ``insertion_delay + n/rate`` — multiple
small messages interleave in FIFO order, which is how insertion rings
behave under load.  Broadcast costs one traversal (requirement 4 of
Section 4.0: "a page from the inner relation can be distributed to some or
all of the participating processors simultaneously").

The ring keeps byte counters so experiments can compare offered load
against the technology options the paper prices (40 Mbps TTL shift
registers, 1 Gbps ECL, 400 Mbps fiber).

**Lossy-ring recovery** (paper requirement 5): when a fault plan arms
``ring_drop`` or ``ring_corrupt`` at this ring's site, each transfer
attempt may be lost in the insertion network or arrive with a bad
checksum (the trailing CRC-32 word of the Figure 4.3-4.5 codecs).  A
corrupted arrival is NAKed by the receiver, so the sender retransmits
after ``nak_delay_ms``; a silent drop is recovered by the sender's
retransmission timer, ``timeout_ms * backoff**attempt``.  Both paths are
deterministic (seeded per-ring streams, fixed delays) and bounded by
``max_retries`` — exhaustion raises
:class:`repro.errors.RetryExhaustedError` naming the ring.  Dropped and
corrupt-discarded packets still leave the loop at their tap, so the
sanitizer's conservation invariant counts them as removed.

The recovery layer keeps the ring's FIFO delivery order, which the
Section 4 protocol depends on (an operand-completion notice must never
overtake the result packets it covers).  Every lossy send carries a
sequence number; a successfully received message is held until all of
its predecessors have been delivered, so a retransmitted packet
head-of-line blocks later traffic instead of being overtaken — the
standard cost of a link-level go-back/NAK protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import hw
from repro.errors import RetryExhaustedError
from repro.faults.plan import FaultSpec
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


class Ring:
    """One communications ring with bandwidth accounting."""

    def __init__(self, sim: Simulator, model: hw.RingModel, name: str):
        self.sim = sim
        self.model = model
        self.name = name
        self._medium = Resource(sim, name, capacity=1)
        self.bytes_carried = 0
        self.messages_carried = 0
        self.broadcasts = 0
        # Pre-bound observability (the session never flips after the
        # simulator is built): a disabled run pays one ``is not None``
        # check per message, and an enabled run skips the per-message
        # registry re-keying by holding its instruments directly.
        self._trace = sim.tracer if sim.tracer.enabled else None
        # Pre-bound span collection (None when off).  The medium Resource
        # records on-loop transit spans; this binding adds the
        # retransmission-backoff spans of the lossy path.
        self._spans = sim.spans
        # Packet conservation (Section 4's shift-register insertion
        # protocol: every message inserted into the loop is also removed).
        # Tracked only under sanitize mode — the removal count needs a
        # wrapper around every delivery callback.
        self._sanitizer = sim.sanitizer
        self.packets_injected = 0
        self.packets_removed = 0
        if self._sanitizer is not None:
            self._sanitizer.register_finish_check(
                f"ring[{name}]", self._sanitize_finish
            )
        # Fault injection: resolve this ring's specs once.  ``None`` when
        # nothing is armed here, so the fault-free path below is taken
        # verbatim (bit-identical to a run with no plan at all).
        self._injector = sim.faults
        self._drop_spec: Optional[FaultSpec] = None
        self._corrupt_spec: Optional[FaultSpec] = None
        if self._injector is not None:
            self._drop_spec = self._injector.armed_spec("ring_drop", name)
            self._corrupt_spec = self._injector.armed_spec("ring_corrupt", name)
            if self._drop_spec is None and self._corrupt_spec is None:
                self._injector = None
        # In-order delivery state for the lossy path (see module docstring).
        self._lossy_seq = 0
        self._lossy_cursor = 0
        self._lossy_ready: Dict[int, Callable[[], None]] = {}
        if sim.metrics.enabled:
            metrics = sim.metrics
            self._bytes_counter = metrics.counter("ring.bytes", ring=name)
            self._messages_counter = metrics.counter("ring.messages", ring=name)
            self._broadcasts_counter = metrics.counter("ring.broadcasts", ring=name)
            self._message_bytes_tally = metrics.tally("ring.message_bytes", ring=name)
        else:
            self._bytes_counter = None

    def send(
        self,
        nbytes: int,
        deliver: Callable[[], None],
        query: Optional[str] = None,
    ) -> None:
        """Transmit one ``nbytes`` message; ``deliver`` fires at arrival.

        ``query`` tags the message for span collection: its on-loop time
        is attributed to that query's transit bucket (ignored when spans
        are off).
        """
        self._accept(nbytes, deliver, broadcast=False, query=query)

    def broadcast(
        self,
        nbytes: int,
        deliver: Callable[[], None],
        query: Optional[str] = None,
    ) -> None:
        """Transmit one message that every tap on the loop can copy.

        Cost is identical to a point-to-point send — that is the whole
        point of the ring's broadcast facility.
        """
        self._accept(nbytes, deliver, broadcast=True, query=query)

    def _accept(
        self,
        nbytes: int,
        deliver: Callable[[], None],
        broadcast: bool,
        query: Optional[str] = None,
    ) -> None:
        self.bytes_carried += nbytes
        self.messages_carried += 1
        if broadcast:
            self.broadcasts += 1
        if self._trace is not None:
            self._trace.instant(
                "ring.broadcast" if broadcast else "ring.send",
                "ring",
                self.sim.now,
                self.name,
                args={"bytes": nbytes, "queued": self._medium.queued},
            )
        if self._bytes_counter is not None:
            self._bytes_counter.add(nbytes)
            self._messages_counter.add()
            if broadcast:
                self._broadcasts_counter.add()
            self._message_bytes_tally.observe(nbytes)
        if self._injector is not None:
            if self._sanitizer is not None:
                self.packets_injected += 1
            seq = self._lossy_seq
            self._lossy_seq += 1
            self._transmit(nbytes, deliver, attempt=0, seq=seq, query=query)
            return
        if self._sanitizer is not None:
            self.packets_injected += 1
            deliver = self._counted_removal(deliver)
        self._medium.submit(
            self.model.transfer_time_ms(nbytes),
            deliver,
            nbytes=nbytes,
            query=query,
            span_kind="transit",
        )

    def _counted_removal(self, deliver: Callable[[], None]) -> Callable[[], None]:
        def removed() -> None:
            self.packets_removed += 1
            deliver()

        return removed

    # -- lossy-ring recovery (fault injection) -------------------------------

    def _transmit(
        self,
        nbytes: int,
        deliver: Callable[[], None],
        attempt: int,
        seq: int,
        query: Optional[str] = None,
    ) -> None:
        """One transfer attempt under an armed drop/corrupt spec.

        The attempt's fate is drawn from this ring's seeded streams at
        submit time, so strike order depends only on send order.  A
        corrupted arrival is NAKed immediately (the checksum fails at the
        receiving tap); a drop is recovered by the retransmission timer
        with exponential backoff.  Successful arrivals are released in
        sequence order to preserve the loop's FIFO semantics.
        """
        inj = self._injector
        assert inj is not None
        fate: Optional[FaultSpec] = None
        kind = ""
        if self._drop_spec is not None and inj.decide(
            "ring_drop", self.name, self._drop_spec.rate
        ):
            fate, kind = self._drop_spec, "drop"
        elif self._corrupt_spec is not None and inj.decide(
            "ring_corrupt", self.name, self._corrupt_spec.rate
        ):
            fate, kind = self._corrupt_spec, "corrupt"

        def arrived() -> None:
            # Conservation fix: an intentionally dropped or corrupt-
            # discarded packet still leaves the loop at its tap, so it
            # counts as removed — otherwise the sanitizer's conservation
            # invariant would false-positive under injection.
            if self._sanitizer is not None:
                self.packets_removed += 1
            if fate is None:
                self._lossy_ready[seq] = deliver
                self._drain_ready()
                return
            if attempt >= fate.max_retries:
                raise RetryExhaustedError(
                    f"ring[{self.name}]: {nbytes}-byte transfer still "
                    f"{'dropped' if kind == 'drop' else 'corrupted'} after "
                    f"{attempt + 1} attempts (max_retries={fate.max_retries})"
                )
            inj.count("ring." + kind, self.name)
            if kind == "corrupt":
                # Receiver NAK: the bad checksum is detected on arrival,
                # so retransmission starts after one control turnaround.
                inj.count("ring.nak", self.name)
                delay = fate.nak_delay_ms
            else:
                delay = fate.timeout_ms * fate.backoff**attempt
            inj.count("ring.retransmit", self.name)
            if self._spans is not None:
                # The recovery wait (NAK turnaround or timeout backoff) is
                # the retransmission bucket; the re-offered transfer's
                # on-loop time is charged as transit like any other.
                self._spans.record(
                    "retransmission",
                    query,
                    self.sim.now,
                    self.sim.now + delay,
                    name=self.name,
                )
            self.sim.schedule(
                delay,
                lambda: self._retransmit(nbytes, deliver, attempt + 1, seq, query),
                label=f"ring.{self.name}.retransmit",
            )

        self._medium.submit(
            self.model.transfer_time_ms(nbytes),
            arrived,
            nbytes=nbytes,
            query=query,
            span_kind="transit",
        )

    def _drain_ready(self) -> None:
        """Release consecutively received messages in send order."""
        while self._lossy_cursor in self._lossy_ready:
            deliver = self._lossy_ready.pop(self._lossy_cursor)
            self._lossy_cursor += 1
            deliver()

    def _retransmit(
        self,
        nbytes: int,
        deliver: Callable[[], None],
        attempt: int,
        seq: int,
        query: Optional[str] = None,
    ) -> None:
        """Re-offer a lost transfer to the loop (charges bytes again)."""
        self.bytes_carried += nbytes
        self.messages_carried += 1
        if self._bytes_counter is not None:
            self._bytes_counter.add(nbytes)
            self._messages_counter.add()
            self._message_bytes_tally.observe(nbytes)
        if self._trace is not None:
            self._trace.instant(
                "ring.retransmit",
                "ring",
                self.sim.now,
                self.name,
                args={"bytes": nbytes, "attempt": attempt},
            )
        if self._sanitizer is not None:
            self.packets_injected += 1
        self._transmit(nbytes, deliver, attempt, seq, query=query)

    def _sanitize_finish(self) -> List[str]:
        """Packet-conservation invariant for the sanitizer."""
        if self.packets_injected != self.packets_removed:
            return [
                f"packet conservation violated: {self.packets_injected} injected, "
                f"{self.packets_removed} removed"
            ]
        return []

    # -- measurement ---------------------------------------------------------

    def offered_mbps(self, elapsed_ms: float) -> float:
        """Average offered load in megabits/second over ``elapsed_ms``."""
        if elapsed_ms <= 0:
            return 0.0
        return self.bytes_carried * 8.0 / 1e6 / (elapsed_ms / 1000.0)

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of the loop's capacity in use (in-flight time included)."""
        return self._medium.utilization(elapsed_ms)

    @property
    def queue_depth(self) -> int:
        """Messages waiting to enter the loop."""
        return self._medium.queued

    @property
    def peak_queue(self) -> int:
        """Deepest insertion queue seen so far."""
        return self._medium.stats.peak_queue

    @property
    def mean_queue_wait_ms(self) -> float:
        """Mean time a message waited to enter the loop."""
        return self._medium.stats.mean_wait()

    def __repr__(self) -> str:
        return f"Ring({self.name!r}, {self.model.bit_rate_mbps} Mbps, {self.bytes_carried} B)"
