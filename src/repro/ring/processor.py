"""Instruction processors (IPs) — Section 4.1/4.2.

An IP executes instruction packets placed on the outer ring by ICs,
produces result packets addressed to the destination IC, and signals
"done" with control packets.  The nested-loops join protocol is the
paper's, field for field:

* the first join packet carries the outer page (and the first inner page
  when available); the IP sets up an **inner-relation control (IRC)
  vector** that grows as execution progresses;
* after joining a page it requests the next inner page it has not seen;
* broadcast pages are consumed **opportunistically and out of order** —
  an IP that is busy when a broadcast passes simply misses it and
  requests the page again later ("missed-page recovery");
* a control message indicating the last inner page triggers the IRC scan
  for holes;
* when the IRC is fully marked the IP zeroes it and asks for another
  outer page; ``flush-when-done`` ships the residual result buffer.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import MachineError
from repro.direct.exec_model import fused_chain_end, fused_chain_spans, join_pages
from repro.relational.page import Page, page_capacity
from repro.relational.schema import Row, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.ring.controller import InstructionController
    from repro.ring.machine import RingMachine


class InstructionProcessor:
    """One IP: a small processor with local memory on the outer ring."""

    def __init__(self, machine: "RingMachine", ip_id: int):
        self.machine = machine
        self.ip_id = ip_id
        self.owner: Optional["InstructionController"] = None
        self.busy = False
        self.busy_ms = 0.0
        self.packets_executed = 0
        #: Fail-stop flag (requirement 5, Section 4.0): a failed IP stops
        #: responding — it sends nothing and ignores everything.
        self.failed = False
        #: Assignment epoch: bumped whenever this IP leaves an IC (normal
        #: release or failover abort), so in-flight work charges from an
        #: earlier assignment can never act on a later one.
        self._epoch = 0
        #: In-flight work: charge id -> (start time, service time).  busy_ms
        #: is credited when a charge completes (or is settled pro-rata on
        #: abort/fail), never at schedule time — crediting up front would
        #: double-count the interval when a failover evaporates the work and
        #: the re-granted IP charges again over the same simulated span.
        self._inflight_charges: Dict[int, Tuple[float, float]] = {}
        self._charge_ids = itertools.count()

        # Result buffer (persists across packets of one assignment).
        self._result_rows: List[Row] = []
        self._result_schema: Optional[Schema] = None

        # Join state: the paper's IRC vector and the held outer page.
        self._outer_page: Optional[Page] = None
        self._outer_index: Optional[int] = None
        # IRC vector: insertion-ordered dict-as-set so any iteration is
        # independent of PYTHONHASHSEED.
        self._irc_seen: Dict[int, None] = {}
        self._inner_last: Optional[int] = None  # count of inner pages, if known
        self._awaiting_inner: Optional[int] = None  # page number requested
        self._flush_on_outer_done = False

    # ------------------------------------------------------------------ pool

    @property
    def is_free(self) -> bool:
        """True when the IP sits in the MC pool."""
        return self.owner is None

    def assign(self, ic: "InstructionController", result_schema: Schema) -> None:
        """The MC granted this IP to ``ic``."""
        if self.owner is not None:
            raise MachineError(f"IP{self.ip_id} is already owned by IC{self.owner.ic_id}")
        self.owner = ic
        self._result_schema = result_schema
        self._result_rows = []
        self._reset_join_state()

    def release(self) -> None:
        """Return to the MC pool (the IC has sent RELEASE_IP)."""
        if self._result_rows:
            raise MachineError(f"IP{self.ip_id} released with unflushed result rows")
        self._settle_inflight_charges()
        self._epoch += 1
        self.owner = None
        self._result_schema = None
        self._reset_join_state()

    def abort_assignment(self) -> None:
        """The owning IC was torn down by an MC failover (requirement 5).

        Unlike :meth:`fail`, the processor itself is healthy: it drops
        all buffered results and join state, fences any in-flight work
        charge behind the epoch bump, and returns to pool eligibility so
        the MC can grant it to the restarted query's new ICs.
        """
        self._settle_inflight_charges()
        self._epoch += 1
        self.busy = False
        self.owner = None
        self._result_schema = None
        self._result_rows = []
        self._reset_join_state()

    def _reset_join_state(self) -> None:
        self._outer_page = None
        self._outer_index = None
        self._irc_seen = {}
        self._inner_last = None
        self._awaiting_inner = None
        self._flush_on_outer_done = False

    # ------------------------------------------------------------------ unary packets

    def receive_unary_packet(self, page: Page, flush_when_done: bool) -> None:
        """Execute a restrict/project/union/append/delete packet."""
        if self.failed:
            return
        ic = self._require_owner()
        self.busy = True
        fill = self.machine.model.proc_read_ms(ic.page_bytes)
        cpu = ic.unary_cpu_ms(page.row_count)
        self._charge(fill + cpu, lambda: self._unary_done(page, flush_when_done), "unary")

    def _unary_done(self, page: Page, flush_when_done: bool) -> None:
        ic = self._require_owner()
        rows = ic.unary_kernel(self.ip_id, page)
        self._result_rows.extend(rows)
        self.packets_executed += 1
        if self.machine.fault_tolerant:
            # Unit-atomic shipping: everything leaves with this packet, so
            # a re-executed packet can never duplicate shipped rows.
            self._flush_results(lambda: self._finish_packet(flush_when_done=False))
            return
        self._ship_full_pages(
            lambda: self._finish_packet(flush_when_done)
        )

    # ------------------------------------------------------------------ join packets

    def receive_join_packet(
        self,
        outer_page: Page,
        outer_index: int,
        inner_page: Optional[Page],
        inner_index: Optional[int],
        flush_when_done: bool,
    ) -> None:
        """A new outer page (optionally with the first inner page).

        "When an IP first receives an instruction packet for a [join]
        operation, it sets up an IRC vector with one entry for each page
        of the inner relation."
        """
        if self.failed:
            return
        ic = self._require_owner()
        self.busy = True
        self._outer_page = outer_page
        self._outer_index = outer_index
        self._irc_seen = {}
        self._flush_on_outer_done = flush_when_done
        fill = self.machine.model.proc_read_ms(ic.page_bytes)
        if inner_page is not None:
            fill += self.machine.model.proc_read_ms(ic.page_bytes)
            if self.machine.fuse_ops:
                cpu = self.machine.model.join_cpu_ms(
                    outer_page.row_count, inner_page.row_count
                )
                self._charge_fused(
                    (fill, cpu),
                    lambda: self._join_done(inner_page, inner_index),
                    ("fill", "join"),
                )
            else:
                self._charge(fill, lambda: self._join_inner(inner_page, inner_index), "fill")
        else:
            self._charge(fill, self._advance_join, "fill")

    def receive_inner_broadcast(self, inner_index: int, page: Page, is_last_known: Optional[int]) -> None:
        """An inner page passes on the ring (broadcast by the IC).

        Busy IPs ignore it (they will request it later — missed-page
        recovery); idle IPs consume it even out of order (IRC vector).
        """
        if self.failed or self.owner is None or self._outer_page is None:
            return
        if is_last_known is not None:
            self._inner_last = is_last_known
        if self.busy or inner_index in self._irc_seen:
            return
        self.busy = True
        self._awaiting_inner = None
        fill = self.machine.model.proc_read_ms(self._require_owner().page_bytes)
        if self.machine.fuse_ops:
            cpu = self.machine.model.join_cpu_ms(
                self._outer_page.row_count, page.row_count
            )
            self._charge_fused(
                (fill, cpu),
                lambda: self._join_done(page, inner_index),
                ("fill", "join"),
            )
        else:
            self._charge(fill, lambda: self._join_inner(page, inner_index), "fill")

    def receive_inner_last(self, inner_count: int) -> None:
        """IC reply: no inner page numbered >= ``inner_count`` exists."""
        if self.failed:
            return
        self._inner_last = inner_count
        if not self.busy and self._outer_page is not None:
            self._advance_join()

    def _join_inner(self, inner_page: Page, inner_index: int) -> None:
        cpu = self.machine.model.join_cpu_ms(self._outer_page.row_count, inner_page.row_count)
        self._charge(cpu, lambda: self._join_done(inner_page, inner_index), "join")

    def _join_done(self, inner_page: Page, inner_index: int) -> None:
        ic = self._require_owner()
        rows = join_pages(
            self._outer_page,
            inner_page,
            ic.join_condition,
            ic.join_outer_index,
            ic.join_inner_index,
        )
        self._result_rows.extend(rows)
        self._irc_seen[inner_index] = None
        self.packets_executed += 1
        if self.machine.fault_tolerant:
            # Hold everything until the outer page's IRC completes.
            self._advance_join()
        else:
            self._ship_full_pages(self._advance_join)

    def _advance_join(self) -> None:
        """Examine the IRC vector; request the next hole or finish the outer."""
        self.busy = False
        if self._inner_last is not None:
            missing = [i for i in range(self._inner_last) if i not in self._irc_seen]
            if not missing:
                # "Zero its IRC vector and signal the IC that it is ready
                # for another page of the outer relation."
                outer_done_flush = self._flush_on_outer_done
                self._outer_page = None
                self._irc_seen = {}
                self._inner_last = None
                if outer_done_flush or self.machine.fault_tolerant:
                    self._flush_results(lambda: self._send_ready())
                else:
                    self._send_ready()
                return
            want = missing[0]
        else:
            known = max(self._irc_seen) + 1 if self._irc_seen else 0
            holes = [i for i in range(known) if i not in self._irc_seen]
            want = holes[0] if holes else known
        self._awaiting_inner = want
        self.machine.ip_to_ic_request_inner(self, self._require_owner(), want)

    def _send_ready(self) -> None:
        self.machine.ip_to_ic_ready_for_outer(self, self._require_owner())

    # ------------------------------------------------------------------ results

    def flush_and_done(self) -> None:
        """IC asked for a flush outside the normal packet flow."""
        if self.failed:
            return
        self._flush_results(
            lambda: self.machine.ip_to_ic_flush_done(self, self._require_owner())
        )

    def _finish_packet(self, flush_when_done: bool) -> None:
        ic = self._require_owner()
        self.busy = False
        if flush_when_done:
            self._flush_results(lambda: self.machine.ip_to_ic_done(self, ic))
        else:
            self.machine.ip_to_ic_done(self, ic)

    def _ship_full_pages(self, then: Callable[[], None]) -> None:
        """Send any full result pages toward the destination IC."""
        ic = self._require_owner()
        capacity = page_capacity(self._result_schema, ic.page_bytes)
        pages: List[Page] = []
        while len(self._result_rows) >= capacity:
            page = Page(self._result_schema, ic.page_bytes)
            page.extend_unchecked(self._result_rows[:capacity])
            del self._result_rows[:capacity]
            pages.append(page)
        self._send_pages(pages, then)

    def _flush_results(self, then: Callable[[], None]) -> None:
        """Ship everything, including a final partial page."""
        ic = self._require_owner()
        pages: List[Page] = []
        capacity = page_capacity(self._result_schema, ic.page_bytes)
        while self._result_rows:
            take = min(capacity, len(self._result_rows))
            page = Page(self._result_schema, ic.page_bytes)
            page.extend_unchecked(self._result_rows[:take])
            del self._result_rows[:take]
            pages.append(page)
        self._send_pages(pages, then)

    def _send_pages(self, pages: List[Page], then: Callable[[], None]) -> None:
        if not pages:
            then()
            return
        ic = self._require_owner()
        write_ms = len(pages) * self.machine.model.proc_write_ms(ic.page_bytes)

        def shipped() -> None:
            for page in pages:
                self.machine.ip_send_result(self, ic, page)
            then()

        self._charge(write_ms, shipped, "ship")

    # ------------------------------------------------------------------ plumbing

    def _require_owner(self) -> "InstructionController":
        if self.owner is None:
            raise MachineError(f"IP{self.ip_id} has no owning IC")
        return self.owner

    def _charge(self, delay: float, then: Callable[[], None], what: str = "work") -> None:
        sim = self.machine.sim
        charge_id = next(self._charge_ids)
        self._inflight_charges[charge_id] = (sim.now, delay)
        if sim.tracer.enabled:
            owner = f"IC{self.owner.ic_id}" if self.owner else "pool"
            sim.tracer.span(
                what, "ip", sim.now, delay, f"IP{self.ip_id}", args={"owner": owner}
            )
        if sim.metrics.enabled:
            sim.metrics.tally("ip.charge_ms", kind=what).observe(delay)
        if sim.spans is not None and self.owner is not None:
            sim.spans.record(
                "service",
                self.owner.tree.name,
                sim.now,
                sim.now + delay,
                name=f"ip.{what}",
            )
            sim.spans.resource_busy("ips", sim.now, delay)

        epoch = self._epoch

        def guarded() -> None:
            # Pop before the epoch check: a settled charge (abort/fail)
            # already credited its elapsed portion and must not re-credit.
            charge = self._inflight_charges.pop(charge_id, None)
            if self.failed or self._epoch != epoch:
                return  # fail-stop or aborted assignment: work evaporates
            if charge is not None:
                self.busy_ms += charge[1]
            then()

        self.machine.sim.schedule(delay, guarded, label=f"ip{self.ip_id}")

    def _charge_fused(
        self,
        parts: Tuple[float, ...],
        then: Callable[[], None],
        whats: Tuple[str, ...],
    ) -> None:
        """Charge a whole deterministic chain as one scheduled event.

        The event lands on the bit-identical end time the per-link cascade
        would reach (left-to-right accumulation), busy time is credited
        per link in the original order, and ``count_fused`` keeps the
        engine's event tally equal to the unfused run — see
        :mod:`repro.sim.fusion` for the full exactness contract.
        """
        sim = self.machine.sim
        charge_id = next(self._charge_ids)
        if sim.tracer.enabled or sim.metrics.enabled:
            owner = f"IC{self.owner.ic_id}" if self.owner else "pool"
            start = sim.now
            for delay, what in zip(parts, whats):
                if sim.tracer.enabled:
                    sim.tracer.span(
                        what, "ip", start, delay, f"IP{self.ip_id}", args={"owner": owner}
                    )
                if sim.metrics.enabled:
                    sim.metrics.tally("ip.charge_ms", kind=what).observe(delay)
                start = start + delay
        if sim.spans is not None and self.owner is not None:
            # Fusion composes with span collection analytically: each link
            # of the chain reports the sub-span the unfused cascade would
            # have produced (same left-to-right accumulation).
            query = self.owner.tree.name
            for (span_start, delay), what in zip(
                fused_chain_spans(sim.now, parts), whats
            ):
                sim.spans.record(
                    "service", query, span_start, span_start + delay,
                    name=f"ip.{what}",
                )
                sim.spans.resource_busy("ips", span_start, delay)
        end = fused_chain_end(sim.now, parts)
        self._inflight_charges[charge_id] = (sim.now, end - sim.now)

        epoch = self._epoch

        def guarded() -> None:
            charge = self._inflight_charges.pop(charge_id, None)
            if self.failed or self._epoch != epoch:
                return  # fail-stop or aborted assignment: work evaporates
            if charge is not None:
                for delay in parts:
                    self.busy_ms += delay
            sim.count_fused(len(parts) - 1)
            then()

        sim.schedule_abs(end, guarded, label=f"ip{self.ip_id}")

    def _settle_inflight_charges(self) -> None:
        """Credit the elapsed portion of every in-flight charge and drop it.

        Called when the assignment ends abnormally (fail-stop or failover
        abort): the IP really was busy from each charge's start until now,
        but the remainder of the service time never happens — crediting the
        full delay would make ``sum(busy_ms) > elapsed * n_ips`` once the
        IP is re-granted and charged again over the same interval.
        """
        now = self.machine.sim.now
        for start, delay in self._inflight_charges.values():
            self.busy_ms += min(max(0.0, now - start), delay)
        self._inflight_charges = {}

    def fail(self) -> None:
        """Disable this IP (fail-stop).  Anything buffered is lost; the
        owning IC's watchdog will detect the silence and re-dispatch."""
        self._settle_inflight_charges()
        self.failed = True
        self.busy = False
        self._result_rows = []
        self._reset_join_state()

    def __repr__(self) -> str:
        owner = f"IC{self.owner.ic_id}" if self.owner else "pool"
        return f"IP{self.ip_id}({owner}, busy={self.busy})"
