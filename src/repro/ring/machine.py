"""The assembled ring machine (Figure 4.1) and its run report.

The machine wires the six components together and mediates every message
through the two rings so timing and byte accounting are centralized:

* **inner ring** (1-2 Mbps): MC <-> IC control traffic — instruction
  distribution, IP requests/grants/releases, completion notices;
* **outer ring** (40 Mbps TTL default): IC <-> IP instruction packets,
  result packets, join broadcasts, and IP control packets; also carries
  producer-IC -> consumer-IC operand-completion notices so completion
  cannot overtake result data (the ring is FIFO);
* **multiport disk cache + mass storage**: reused from
  :mod:`repro.direct.cache` — ICs fetch base pages and spill local-memory
  overflow through it.

Wire sizes follow the Figure 4.3-4.5 formats via the analytic helpers in
:mod:`repro.ring.packets` (equal to ``len(packet.encode())``, tested).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import hw
from repro.errors import CrashError, FaultError, MachineError
from repro.direct.cache import DiskCache, PageRef
from repro.direct.exec_model import ExecModel
from repro.direct.traffic import TrafficMeter
from repro.recovery.apply import apply_write
from repro.recovery.txn import Transaction, TransactionManager
from repro.relational.catalog import Catalog
from repro.relational.page import Page
from repro.relational.relation import Relation
from repro.relational.schema import Row, Schema
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    QueryNode,
    QueryTree,
    ScanNode,
    UpdateNode,
)
from repro.ring.concurrency import LockRequest
from repro.ring.controller import InstructionController
from repro.ring.master import MasterController
from repro.ring.network import Ring
from repro.ring.packets import (
    CONTROL_PACKET_BYTES,
    instruction_packet_bytes,
    result_packet_bytes,
)
from repro.ring.processor import InstructionProcessor
from repro.sim.engine import Simulator
from repro.sim.fusion import resolve_fusion
from repro.sim.resources import Resource, checked_utilization

#: Destination id of the master controller / host.
MC_ID = 0


@dataclass
class RingQueryRun:
    """Per-query record."""

    tree: QueryTree
    submitted_at: float
    completed_at: Optional[float] = None
    result_rows: int = 0

    @property
    def elapsed_ms(self) -> Optional[float]:
        """Response time, None while running."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


@dataclass
class RingReport:
    """Outcome of one ring-machine run."""

    processors: int
    controllers: int
    elapsed_ms: float
    query_times: Dict[str, float]
    results: Dict[str, Relation]
    outer_ring_bytes: int
    inner_ring_bytes: int
    outer_ring_mbps: float
    inner_ring_mbps: float
    outer_ring_utilization: float
    broadcasts: int
    traffic: Dict[str, int]
    ip_utilization: float
    events_processed: int
    queries_admitted: int


class RingMachine:
    """The Section 4 data-flow database machine, ready to run query trees."""

    def __init__(
        self,
        catalog: Catalog,
        processors: int = 16,
        controllers: int = 16,
        page_bytes: int = hw.RING_PAGE_BYTES,
        model: Optional[ExecModel] = None,
        outer_ring: hw.RingModel = hw.OUTER_RING_TTL,
        inner_ring: hw.RingModel = hw.INNER_RING,
        cache_bytes: int = hw.DEFAULT_CACHE_BYTES,
        ic_memory_pages: int = 32,
        max_ips_per_instruction: int = 1_000_000,
        direct_ip_routing: bool = False,
        fault_tolerant: bool = False,
        watchdog_interval_ms: float = 500.0,
        max_events: int = 5_000_000,
        fuse_ops: Optional[bool] = None,
    ):
        if processors < 1 or controllers < 1:
            raise MachineError("need at least one IP and one IC")
        self.catalog = catalog
        self.page_bytes = page_bytes
        self.model = model or ExecModel(page_bytes=page_bytes)
        self.ic_memory_pages = ic_memory_pages
        self.max_ips_per_instruction = max_ips_per_instruction
        self.direct_ip_routing = direct_ip_routing
        self.fault_tolerant = fault_tolerant
        self.watchdog_interval_ms = watchdog_interval_ms
        self.max_events = max_events
        self.total_ics = controllers
        self.failed_ips: List[int] = []

        self.sim = Simulator()
        # Operator-loop fusion (repro.sim.fusion): besides the armed-plan
        # and fusion-safety gates inside resolve_fusion, fail-stop mode
        # keeps chains unfused — watchdog abort settles in-flight charges
        # pro rata, and a fused chain's settlement would differ from the
        # cascade's.
        self.fuse_ops = (
            resolve_fusion(fuse_ops, self.sim, component="ring") and not fault_tolerant
        )
        self.meter = TrafficMeter()
        self.outer_ring = Ring(self.sim, outer_ring, "outer-ring")
        self.inner_ring = Ring(self.sim, inner_ring, "inner-ring")
        self.ports = Resource(self.sim, "cache-ports", capacity=min(8, controllers))
        self.disks = [
            Resource(self.sim, f"disk{i}", capacity=1)
            for i in range(hw.NUM_MASS_STORAGE_DRIVES)
        ]
        self.cache = DiskCache(
            sim=self.sim,
            meter=self.meter,
            model=self.model,
            capacity_frames=max(16, cache_bytes // page_bytes),
            ports=self.ports,
            disks=self.disks,
        )

        self.mc = MasterController(self)
        self.ips = [InstructionProcessor(self, i + 1) for i in range(processors)]
        self.mc.free_ips.extend(self.ips)
        if self.sim.spans is not None:
            # IPs are not a Resource; declare their pooled capacity so the
            # time-series can normalize their busy integral.
            self.sim.spans.register_capacity("ips", processors)

        self._free_ic_ids: List[int] = list(range(1, controllers + 1))
        self._ics: Dict[int, InstructionController] = {}
        self._runs: List[RingQueryRun] = []
        self._query_rows: Dict[str, List[Row]] = {}
        self._base_pages: Dict[str, List[PageRef]] = {}
        #: IC failovers taken so far, per query name (bounded by the
        #: plan's ``max_failovers``).
        self._failovers: Dict[str, int] = {}
        #: Serving hook: called as ``(query_name, completed_at_ms,
        #: result_rows)`` the moment a query's root finalizes —
        #: :mod:`repro.serve` uses it to drive admission and latency capture.
        self.on_query_complete: Optional[Callable[[str, float, int], None]] = None
        #: Serving runs complete thousands of queries; per-query gauges
        #: would bloat the metrics registry, so serve mode turns them off.
        self.publish_per_query_metrics = True
        #: Durable-transaction support (None = pre-WAL behavior, byte-identical).
        self.txn: Optional[TransactionManager] = None
        self._write_txns: Dict[str, Transaction] = {}
        #: Aborted attempts per write query (upgrade refusals), for the
        #: serve layer's abort/retry percentiles.
        self.write_aborts: Dict[str, int] = {}
        #: Write queries that must demand X at admission (their optimistic
        #: S-then-upgrade attempt was refused once).
        self._force_exclusive: Dict[str, None] = {}

    def attach_recovery(self, tm: TransactionManager) -> None:
        """Arm durable write transactions through ``tm``.

        Seeds the stable store from the catalog's current images if the
        caller has not already, and registers the WAL invariants with
        this run's sanitizer.
        """
        if not tm.store.pages:
            tm.seed_from_catalog(self.catalog)
        self.txn = tm
        tm.register_sanitizer(self.sim)

    # ------------------------------------------------------------------ host API

    def submit(self, tree: QueryTree) -> RingQueryRun:
        """Hand a query to the MC's queue (validated against the catalog)."""
        tree.validate(self.catalog)
        run = RingQueryRun(tree=tree, submitted_at=self.sim.now)
        self._runs.append(run)
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                f"submit.{tree.name}", "query", self.sim.now, "queries"
            )
        if self.sim.spans is not None:
            # Idempotent: the serve layer opens the record at offer time,
            # so an admitted-from-queue query keeps its earlier start.
            self.sim.spans.query_begin(tree.name, self.sim.now)
        self.mc.enqueue(tree)
        self.sim.schedule(0.0, self.mc.try_admit, label="mc.admit")
        return run

    def lock_request_for(self, tree: QueryTree) -> LockRequest:
        """The lock set the MC demands for ``tree`` at admission.

        With durable transactions armed, single-operator delete/update
        queries admit *optimistically* with S on their target (readers
        keep flowing) and upgrade to X at commit; a refused upgrade
        aborts the attempt and re-queues the query with X demanded here.
        Without a transaction manager this is exactly
        :meth:`LockRequest.for_tree` — the pre-WAL behavior.
        """
        root = tree.root
        if (
            self.txn is not None
            and isinstance(root, (DeleteNode, UpdateNode))
            and tree.name not in self._force_exclusive
        ):
            return LockRequest(
                query_name=tree.name,
                shared=frozenset([root.target_relation]),
                exclusive=frozenset(),
            )
        return LockRequest.for_tree(tree)

    def schedule_ip_failure(self, ip_id: int, at_ms: float) -> None:
        """Disable IP ``ip_id`` at simulated time ``at_ms`` (fail-stop).

        Requires ``fault_tolerant=True`` — without watchdogs a failure
        would simply hang the run.
        """
        if not self.fault_tolerant:
            raise MachineError("schedule_ip_failure needs fault_tolerant=True")
        target = next((ip for ip in self.ips if ip.ip_id == ip_id), None)
        if target is None:
            raise MachineError(f"no IP {ip_id}")

        def fail_now() -> None:
            if target.failed:
                return
            target.fail()
            self.failed_ips.append(target.ip_id)
            inj = self.sim.faults
            if inj is not None:
                inj.count("ip.kill", f"ip{target.ip_id}")
            # A pool-resident or idle-held casualty is culled immediately;
            # a busy one is discovered by its IC's watchdog.
            if target in self.mc.free_ips:
                self.mc.free_ips.remove(target)

        self.sim.schedule_at(at_ms, fail_now, label=f"fail-ip{ip_id}")

    def report_ip_failure(self, ic, ip: InstructionProcessor) -> None:
        """An IC's watchdog confirmed a dead IP; tell the MC (inner ring)."""

        def mc_notified() -> None:
            if ip in self.mc.free_ips:
                self.mc.free_ips.remove(ip)
            self.mc.grant_loop()

        self.inner_ring.send(CONTROL_PACKET_BYTES, mc_notified, query=ic.tree.name)

    # ------------------------------------------------------------------ fault arming

    def _arm_faults(self) -> None:
        """Resolve the bound fault plan into scheduled machine faults.

        Called once at the top of :meth:`run`.  IP kills come from the
        plan's explicit ``kills`` schedule plus per-IP seeded draws at
        ``rate`` (always leaving at least one survivor so the run can
        finish).  Both kill classes require ``fault_tolerant=True``:
        without watchdog recovery (IPs) or MC failover (ICs) an armed
        kill could only hang the simulation, which is a plan
        misconfiguration, not a survivable fault.
        """
        inj = self.sim.faults
        if inj is None:
            return
        needs_ft = [
            spec.kind
            for spec in inj.plan.specs
            if spec.armed and spec.kind in ("ip_kill", "ic_failure")
        ]
        if needs_ft and not self.fault_tolerant:
            raise FaultError(
                f"fault plan arms {sorted(set(needs_ft))} but the ring machine "
                "was built with fault_tolerant=False"
            )
        self._arm_machine_crash(inj)
        kill_spec = inj.armed_spec("ip_kill")
        if kill_spec is None:
            return
        planned: Dict[int, None] = {}
        for ip_id, at_ms in kill_spec.kills:
            self.schedule_ip_failure(ip_id, at_ms)
            planned[ip_id] = None
        if kill_spec.rate > 0:
            for ip in self.ips:
                if len(self.ips) - len(planned) <= 1:
                    break  # someone has to survive to finish the queries
                if ip.ip_id in planned:
                    continue
                site = f"ip{ip.ip_id}"
                if inj.decide("ip_kill", site, kill_spec.rate):
                    at_ms = inj.uniform("ip_kill", site, 0.0, kill_spec.window_ms)
                    self.schedule_ip_failure(ip.ip_id, at_ms)
                    planned[ip.ip_id] = None

    def _arm_machine_crash(self, inj) -> None:
        """Schedule a whole-machine power cut if the plan draws one.

        The strike raises :class:`repro.errors.CrashError` straight out
        of the event loop — volatile state is unwound with the Python
        stack, and the crash harness picks recovery up from the stable
        store.  Requires an attached transaction manager: without
        durable state there is nothing for a crash to be *survived by*.
        """
        spec = inj.armed_spec("machine_crash")
        if spec is None or spec.rate <= 0:
            return
        if self.txn is None:
            raise FaultError(
                "fault plan arms machine_crash but no transaction manager "
                "is attached (attach_recovery); a crash without durable "
                "state cannot be recovered"
            )
        if not inj.decide("machine_crash", "machine", spec.rate):
            return
        at_ms = spec.at_ms + inj.uniform("machine_crash", "machine", 0.0, spec.window_ms)

        def crash_now() -> None:
            inj.count("machine.crash", "machine")
            raise CrashError(
                f"machine crash fault at t={self.sim.now:.3f}ms "
                f"({len(self.txn.active)} transaction(s) in flight)"
            )

        self.sim.schedule_at(at_ms, crash_now, label="fault.machine_crash")

    def _maybe_arm_ic_failure(self, tree: QueryTree, first_ic: InstructionController) -> None:
        """Draw (per activation) whether this query attempt loses an IC."""
        inj = self.sim.faults
        if inj is None:
            return
        spec = inj.armed_spec("ic_failure", tree.name)
        if spec is None or spec.rate <= 0:
            return
        if self._failovers.get(tree.name, 0) >= spec.max_failovers:
            return
        if not inj.decide("ic_failure", tree.name, spec.rate):
            return
        self.sim.schedule(
            spec.at_ms,
            lambda: self._fail_ic(first_ic.ic_id, first_ic, tree),
            label=f"fault.ic{first_ic.ic_id}",
        )

    def _fail_ic(self, ic_id: int, victim: InstructionController, tree: QueryTree) -> None:
        """An IC fail-stops: MC-driven failover (requirement 5).

        The MC still holds the query's locks and its tree, so recovery is
        a teardown of the whole instruction queue — every sibling IC is
        aborted, their IPs reclaimed, partial results discarded — followed
        by a fresh :meth:`activate_query`.  Identity is checked first: if
        the victim already finished (or a previous failover replaced it),
        the scheduled strike misses.
        """
        inj = self.sim.faults
        if self._ics.get(ic_id) is not victim or victim.done or victim.dead:
            if inj is not None:
                inj.count("ic.kill_missed", tree.name)
            return
        if inj is not None:
            inj.count("ic.failure", f"ic{ic_id}")
        self._failovers[tree.name] = self._failovers.get(tree.name, 0) + 1
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                f"ic{ic_id}.failover", "fault", self.sim.now, "faults",
                args={"query": tree.name},
            )
        orphans: List[InstructionProcessor] = []
        for other in [x for x in self._ics.values() if x.tree is tree]:
            orphans.extend(other.abort())
            self.mc.cancel_wants(other)
            del self._ics[other.ic_id]
            self._free_ic_ids.append(other.ic_id)
        self._query_rows.pop(tree.name, None)
        txn = self._write_txns.pop(tree.name, None)
        if txn is not None:
            # Partial staged pages are real logged writes; roll them back
            # (CLR chain) before the fresh attempt begins a new txn.
            self.txn.abort(txn)
        if inj is not None:
            inj.count("ic.failover", tree.name)
        # Locks are still held and the admission slot is still consumed:
        # rebuild the tree's ICs and reseed its base operands.
        self.activate_query(tree)
        for ip in orphans:
            if not ip.failed:
                self.mc.add_free_ip(ip)

    def run(self) -> RingReport:
        """Execute all submitted queries to completion."""
        if not self._runs:
            raise MachineError("no queries submitted")
        return self.run_service()

    def run_service(self) -> RingReport:
        """Drive the machine until the event heap drains, then report.

        Unlike :meth:`run` this does not require queries up front: a
        serving layer schedules arrival events that call :meth:`submit`
        mid-run.  Every submitted query must still finish before the heap
        drains (the serve layer guarantees quiescence by draining its
        admission queue before the horizon closes).
        """
        self._arm_faults()
        self.sim.run(max_events=self.max_events)
        unfinished = [r.tree.name for r in self._runs if r.completed_at is None]
        if unfinished:
            raise MachineError(f"ring machine drained with unfinished queries: {unfinished}")
        if self.txn is not None:
            # Clean shutdown: force the log, flush every dirty page, and
            # checkpoint — the sanitizer's dirty-page leak check runs next.
            self.txn.shutdown()
        self.sim.finalize_sanitizer()
        self.sim.finalize_faults()
        elapsed = self.sim.now
        busy = sum(ip.busy_ms for ip in self.ips)
        util = checked_utilization(self.sim, busy, elapsed, len(self.ips), "ring.ips")
        self._publish_metrics(elapsed, util)
        return RingReport(
            processors=len(self.ips),
            controllers=self.total_ics,
            elapsed_ms=elapsed,
            query_times={r.tree.name: r.elapsed_ms for r in self._runs},
            results={r.tree.name: self._result_relation(r) for r in self._runs},
            outer_ring_bytes=self.outer_ring.bytes_carried,
            inner_ring_bytes=self.inner_ring.bytes_carried,
            outer_ring_mbps=self.outer_ring.offered_mbps(elapsed),
            inner_ring_mbps=self.inner_ring.offered_mbps(elapsed),
            outer_ring_utilization=self.outer_ring.utilization(elapsed),
            broadcasts=self.outer_ring.broadcasts,
            traffic=self.meter.snapshot(),
            ip_utilization=util,
            events_processed=self.sim.events_processed,
            queries_admitted=self.mc.queries_admitted,
        )

    def _publish_metrics(self, elapsed: float, ip_utilization: float) -> None:
        """Summarize the run into the metrics registry (stable names)."""
        metrics = self.sim.metrics
        if not metrics.enabled:
            return
        rid = self.sim.run_id
        for ring in (self.outer_ring, self.inner_ring):
            metrics.set_gauge(
                "ring.offered_mbps", ring.offered_mbps(elapsed), ring=ring.name, run=rid
            )
            metrics.set_gauge(
                "ring.utilization", ring.utilization(elapsed), ring=ring.name, run=rid
            )
            metrics.set_gauge("ring.peak_queue", ring.peak_queue, ring=ring.name, run=rid)
            metrics.set_gauge(
                "ring.mean_queue_wait_ms", ring.mean_queue_wait_ms, ring=ring.name, run=rid
            )
        metrics.set_gauge("machine.elapsed_ms", elapsed, machine="ring", run=rid)
        metrics.set_gauge("machine.ip_utilization", ip_utilization, machine="ring", run=rid)
        for resource in [self.ports] + self.disks:
            metrics.set_gauge(
                "resource.utilization",
                resource.utilization(elapsed),
                resource=resource.name,
                run=rid,
            )
            metrics.set_gauge(
                "resource.peak_queue",
                resource.stats.peak_queue,
                resource=resource.name,
                run=rid,
            )
        for level, nbytes in self.meter.snapshot().items():
            metrics.set_gauge("traffic.bytes", nbytes, machine="ring", level=level, run=rid)
        if not self.publish_per_query_metrics:
            return
        for run in self._runs:
            if run.elapsed_ms is not None:
                metrics.set_gauge(
                    "query.elapsed_ms", run.elapsed_ms, query=run.tree.name, run=rid
                )
                metrics.set_gauge(
                    "query.result_rows", run.result_rows, query=run.tree.name, run=rid
                )

    def _result_relation(self, run: RingQueryRun) -> Relation:
        root = run.tree.root
        schema = root.output_schema(self.catalog)
        out = Relation(f"{run.tree.name}.result", schema, page_bytes=self.page_bytes)
        # Result shipping, not base data: this relation is born and dies
        # with the answer, so there is nothing for the WAL to recover.
        out.insert_many(self._query_rows.get(run.tree.name, []))  # repro: allow[R011]
        return out

    # ------------------------------------------------------------------ activation

    def free_ic_count(self) -> int:
        """ICs currently unassigned."""
        return len(self._free_ic_ids)

    def ic_by_id(self, ic_id: int) -> Optional[InstructionController]:
        """Resolve an IC id (None once freed)."""
        return self._ics.get(ic_id)

    def active_ics(self) -> List[InstructionController]:
        """ICs currently controlling instructions."""
        return list(self._ics.values())

    def activate_query(self, tree: QueryTree) -> None:
        """MC admission: build one IC per operator node and seed leaves."""
        root = tree.root
        if (
            self.txn is not None
            and isinstance(root, (AppendNode, DeleteNode, UpdateNode))
            and tree.name not in self._write_txns
        ):
            self._write_txns[tree.name] = self.txn.begin(
                tree.name,
                root.target_relation,
                root.output_schema(self.catalog),
                append=isinstance(root, AppendNode),
            )
        by_node: Dict[int, InstructionController] = {}
        for node in tree.nodes():
            if isinstance(node, ScanNode):
                continue
            ic = self._make_ic(node, tree)
            by_node[node.node_id] = ic
        # Wire destinations (producer -> consumer operand index).
        for node_id, ic in by_node.items():
            parent = tree.parent_of(ic.node)
            if parent is None:
                ic.destination = (MC_ID, 0)
            else:
                operand_index = parent.children.index(ic.node)
                ic.destination = (by_node[parent.node_id].ic_id, operand_index)
        # Seed operands.
        for node_id, ic in by_node.items():
            for idx, child in enumerate(self._operand_children(ic.node)):
                if isinstance(child, ScanNode):
                    self.sim.schedule(
                        0.0,
                        lambda i=ic, x=idx, n=child.relation_name: i.seed_base_operand(
                            x, self._base_page_refs(n)
                        ),
                        label=f"seed.{ic.ic_id}",
                    )
                elif isinstance(ic.node, (DeleteNode, UpdateNode)):
                    raise MachineError("delete/update nodes have no child operands")
        # Delete/update nodes scan their target relation as operand 0.
        for node_id, ic in by_node.items():
            if isinstance(ic.node, (DeleteNode, UpdateNode)):
                self.sim.schedule(
                    0.0,
                    lambda i=ic, n=ic.node.target_relation: i.seed_base_operand(
                        0, self._base_page_refs(n)
                    ),
                    label=f"seed.{ic.ic_id}",
                )
        if by_node:
            self._maybe_arm_ic_failure(tree, next(iter(by_node.values())))

    def _make_ic(self, node: QueryNode, tree: QueryTree) -> InstructionController:
        if not self._free_ic_ids:
            raise MachineError("no free IC for instruction (admission bug)")
        ic_id = self._free_ic_ids.pop(0)
        operand_specs = self._operand_specs(node)
        ic = InstructionController(
            machine=self,
            ic_id=ic_id,
            node=node,
            tree=tree,
            operand_specs=operand_specs,
            result_schema=node.output_schema(self.catalog),
        )
        self._ics[ic_id] = ic
        return ic

    def _operand_children(self, node: QueryNode) -> Sequence[QueryNode]:
        return node.children

    def _operand_specs(self, node: QueryNode) -> List[Tuple[str, Schema, bool]]:
        if isinstance(node, (DeleteNode, UpdateNode)):
            relation = self.catalog.get(node.target_relation)
            return [(node.target_relation, relation.schema, True)]
        specs: List[Tuple[str, Schema, bool]] = []
        for child in node.children:
            schema = child.output_schema(self.catalog)
            if isinstance(child, ScanNode):
                specs.append((child.relation_name, schema, True))
            else:
                specs.append((f"node{child.node_id}", schema, False))
        return specs

    def _base_page_refs(self, relation_name: str) -> List[PageRef]:
        if relation_name not in self._base_pages:
            relation = self.catalog.get(relation_name)
            # Shared read-only images, memoized on the relation: machines
            # built over the same catalog repack nothing.
            pages = relation.packed_pages(self.page_bytes)
            salt = zlib.crc32(relation_name.encode("utf-8"))
            self._base_pages[relation_name] = [
                PageRef(
                    key=f"base:{relation_name}:{i}",
                    nbytes=self.page_bytes,
                    payload=page,
                    on_disk=True,
                    disk_id=(salt + i) % max(1, len(self.disks)),
                    row_count=page.row_count,
                )
                for i, page in enumerate(pages)
            ]
        return self._base_pages[relation_name]

    # ------------------------------------------------------------------ inner-ring control (MC <-> IC)

    def ic_request_ips(self, ic: InstructionController, count: int) -> None:
        """IC -> MC: REQUEST_IPS(count)."""

        def deliver() -> None:
            if not ic.dead:
                self.mc.request_ips(ic, count)

        self.inner_ring.send(CONTROL_PACKET_BYTES, deliver, query=ic.tree.name)

    def mc_grant_ip(self, ic: InstructionController, ip: InstructionProcessor) -> None:
        """MC -> IC: GRANT_IP."""
        self.inner_ring.send(
            CONTROL_PACKET_BYTES, lambda: ic.grant_ip(ip), query=ic.tree.name
        )

    def ic_release_ip(self, ic: InstructionController, ip: InstructionProcessor) -> None:
        """IC -> MC: RELEASE_IP."""
        self.inner_ring.send(
            CONTROL_PACKET_BYTES, lambda: self.mc.add_free_ip(ip), query=ic.tree.name
        )

    def ic_instruction_done(self, ic: InstructionController) -> None:
        """IC finished: notify consumer (outer ring) and the MC (inner)."""
        dest_ic, operand_index = ic.destination
        if dest_ic == MC_ID:
            self.outer_ring.send(
                CONTROL_PACKET_BYTES, lambda: self._finalize_query(ic),
                query=ic.tree.name,
            )
        else:
            consumer = self._ics.get(dest_ic)
            if consumer is None:
                raise MachineError(f"IC{dest_ic} vanished before operand completion")
            self.outer_ring.send(
                CONTROL_PACKET_BYTES,
                lambda: consumer.receive_operand_complete(operand_index),
                query=ic.tree.name,
            )

        def mc_notified() -> None:
            if ic.dead:
                # A failover tore this IC down while the notice was on the
                # ring; the teardown already freed its id.
                return
            self.mc.cancel_wants(ic)
            self._free_ic(ic)
            self.mc.try_admit()

        self.inner_ring.send(CONTROL_PACKET_BYTES, mc_notified, query=ic.tree.name)

    def _free_ic(self, ic: InstructionController) -> None:
        # Identity check: after a failover the freed id may already belong
        # to a replacement IC, which must not be evicted by a stale notice.
        if self._ics.get(ic.ic_id) is ic:
            del self._ics[ic.ic_id]
            self._free_ic_ids.append(ic.ic_id)

    # ------------------------------------------------------------------ outer-ring traffic (IC <-> IP)

    def _to_ip(
        self,
        ic: InstructionController,
        ip: InstructionProcessor,
        fn: Callable[[], None],
    ) -> Callable[[], None]:
        """Guard an IC->IP delivery against a failover mid-flight.

        If the sending IC was torn down (or the IP reassigned) while the
        packet circled the ring, the tap ignores it — exactly the fate of
        a packet addressed to a fail-stopped component.
        """

        def deliver() -> None:
            if ic.dead or ip.owner is not ic:
                return
            fn()

        return deliver

    def ic_send_unary_packet(
        self,
        ic: InstructionController,
        ip: InstructionProcessor,
        page: Page,
        flush: bool,
        header_only: bool = False,
    ) -> None:
        """IC -> IP: a one-operand instruction packet (Figure 4.3).

        ``header_only`` means the data page was pre-positioned at an IP by
        direct routing, so only the control header crosses the ring.
        """
        page_len = 0 if header_only else page.used_bytes
        nbytes = instruction_packet_bytes(ic.result_schema, [(page.schema, page_len)])
        self.outer_ring.send(
            nbytes,
            self._to_ip(ic, ip, lambda: ip.receive_unary_packet(page, flush)),
            query=ic.tree.name,
        )

    def ic_send_join_packet(
        self,
        ic: InstructionController,
        ip: InstructionProcessor,
        outer_page: Page,
        outer_index: int,
        inner_page: Optional[Page],
        inner_index: Optional[int],
        flush: bool,
        outer_header_only: bool = False,
    ) -> None:
        """IC -> IP: a join packet with outer (and maybe first inner) page."""
        outer_len = 0 if outer_header_only else outer_page.used_bytes
        operands = [(outer_page.schema, outer_len)]
        if inner_page is not None:
            operands.append((inner_page.schema, inner_page.used_bytes))
        nbytes = instruction_packet_bytes(ic.result_schema, operands)
        self.outer_ring.send(
            nbytes,
            self._to_ip(
                ic,
                ip,
                lambda: ip.receive_join_packet(
                    outer_page, outer_index, inner_page, inner_index, flush
                ),
            ),
            query=ic.tree.name,
        )

    def ic_broadcast_inner(
        self,
        ic: InstructionController,
        index: int,
        page: Page,
        last_known: Optional[int],
        delivered: Callable[[], None],
    ) -> None:
        """IC -> all its IPs: broadcast one inner page (one ring traversal)."""
        nbytes = instruction_packet_bytes(ic.result_schema, [(page.schema, page.used_bytes)])

        def deliver() -> None:
            if ic.dead:
                return
            for ip in list(ic.my_ips):
                ip.receive_inner_broadcast(index, page, last_known)
            delivered()

        self.outer_ring.broadcast(nbytes, deliver, query=ic.tree.name)

    def ic_send_inner_last(
        self, ic: InstructionController, ip: InstructionProcessor, count: int
    ) -> None:
        """IC -> IP: INNER_LAST(count)."""
        self.outer_ring.send(
            CONTROL_PACKET_BYTES,
            self._to_ip(ic, ip, lambda: ip.receive_inner_last(count)),
            query=ic.tree.name,
        )

    def ic_flush_ip(self, ic: InstructionController, ip: InstructionProcessor) -> None:
        """IC -> IP: flush your result buffer, then report done."""
        self.outer_ring.send(
            CONTROL_PACKET_BYTES,
            self._to_ip(ic, ip, ip.flush_and_done),
            query=ic.tree.name,
        )

    def ip_to_ic_done(self, ip: InstructionProcessor, ic: InstructionController) -> None:
        """IP -> IC: DONE control packet."""
        self.outer_ring.send(
            CONTROL_PACKET_BYTES, lambda: ic.ip_done(ip), query=ic.tree.name
        )

    def ip_to_ic_flush_done(self, ip: InstructionProcessor, ic: InstructionController) -> None:
        """IP -> IC: DONE answering a FLUSH."""
        self.outer_ring.send(
            CONTROL_PACKET_BYTES, lambda: ic.ip_flush_done(ip), query=ic.tree.name
        )

    def ip_to_ic_request_inner(
        self, ip: InstructionProcessor, ic: InstructionController, index: int
    ) -> None:
        """IP -> IC: REQUEST_INNER(index)."""
        self.outer_ring.send(
            CONTROL_PACKET_BYTES,
            lambda: ic.ip_request_inner(ip, index),
            query=ic.tree.name,
        )

    def ip_to_ic_ready_for_outer(
        self, ip: InstructionProcessor, ic: InstructionController
    ) -> None:
        """IP -> IC: READY_FOR_OUTER."""
        self.outer_ring.send(
            CONTROL_PACKET_BYTES,
            lambda: ic.ip_ready_for_outer(ip),
            query=ic.tree.name,
        )

    def ip_send_result(
        self, ip: InstructionProcessor, ic: InstructionController, page: Page
    ) -> None:
        """IP -> destination IC (or MC): a result packet (Figure 4.4)."""
        dest_ic, operand_index = ic.destination
        nbytes = result_packet_bytes(page.used_bytes)
        rows = list(page.rows())
        ic.rows_emitted_to_consumer += len(rows)
        if dest_ic == MC_ID:

            def to_host() -> None:
                if ic.dead:
                    return  # the query attempt was failed over; rows discarded
                self._query_rows.setdefault(ic.tree.name, []).extend(rows)
                txn = self._write_txns.get(ic.tree.name)
                if txn is not None:
                    # Arrival-order partial writes: each filled page is
                    # WAL-logged immediately (undo must erase it on abort).
                    self.txn.stage_rows(txn, rows)

            self.outer_ring.send(nbytes, to_host, query=ic.tree.name)
            return
        consumer = self._ics.get(dest_ic)
        if consumer is None:
            raise MachineError(f"result for vanished IC{dest_ic}")
        if self.direct_ip_routing and not (consumer.is_join and operand_index == 1):
            # Section 5 future work: route the page "directly from one IP
            # to another without first sending the page to an IC".  Join
            # inner operands still need IC mediation (broadcast), so they
            # keep the normal path.
            self.outer_ring.send(
                nbytes,
                lambda: consumer.receive_direct_page(operand_index, page),
                query=ic.tree.name,
            )
            return
        self.outer_ring.send(
            nbytes,
            lambda: consumer.receive_result_rows(operand_index, rows),
            query=ic.tree.name,
        )

    # ------------------------------------------------------------------ storage hierarchy (IC <-> cache/disk)

    def ic_fetch_page(
        self, ic: InstructionController, ref: PageRef, done: Callable[[], None]
    ) -> None:
        """Bring a page from the cache (or disk) into IC local memory."""
        self.cache.read_shared(ref, self._disk_span(ic, "cache.read", done))

    def ic_overflow_page(
        self, ic: InstructionController, ref: PageRef, done: Callable[[], None]
    ) -> None:
        """IC local memory overflow: write the page to the cache segment."""
        self.cache.write_page(ref, self._disk_span(ic, "cache.write", done), dirty=True)

    def _disk_span(
        self, ic: InstructionController, what: str, done: Callable[[], None]
    ) -> Callable[[], None]:
        """Wrap a cache completion to record the fetch as a disk span.

        The span covers the whole storage-hierarchy round trip — port
        queueing, disk service, cache fill — which is exactly the interval
        the query's timeline spends waiting on the disk cache.
        """
        spans = self.sim.spans
        if spans is None:
            return done
        query = ic.tree.name
        started = self.sim.now

        def finished() -> None:
            spans.record("disk", query, started, self.sim.now, name=what)
            done()

        return finished

    # ------------------------------------------------------------------ completion

    def _abort_write_attempt(self, tree: QueryTree) -> None:
        """A refused lock upgrade: undo, release, and re-queue with X.

        The attempt's staged pages are rolled back through the WAL (CLR
        chain), its locks drop, and the query re-enters the MC queue
        demanding X at admission — so the retry cannot be refused again,
        and FIFO admission bounds the delay (no starvation).
        """
        txn = self._write_txns.pop(tree.name, None)
        if txn is not None:
            self.txn.abort(txn)
        self._query_rows.pop(tree.name, None)
        self.write_aborts[tree.name] = self.write_aborts.get(tree.name, 0) + 1
        self._force_exclusive[tree.name] = None
        inj = self.sim.faults
        if inj is not None:
            inj.count("txn.upgrade_abort", tree.name)
        if self.sim.tracer.enabled:
            self.sim.tracer.instant(
                f"abort.{tree.name}", "txn", self.sim.now, "queries"
            )
        self.mc.locks.release(tree.name)
        self.mc.enqueue(tree)
        self.sim.schedule(0.0, self.mc.try_admit, label="mc.admit")

    def _finalize_query(self, root_ic: InstructionController) -> None:
        if root_ic.dead:
            return  # a failover superseded this completion notice
        tree = root_ic.tree
        rows = self._query_rows.get(tree.name, [])
        node = tree.root
        txn = self._write_txns.get(tree.name)
        if txn is not None:
            if (
                isinstance(node, (DeleteNode, UpdateNode))
                and tree.name not in self._force_exclusive
                and not self.mc.locks.try_upgrade(tree.name, node.target_relation)
            ):
                self._abort_write_attempt(tree)
                return
            del self._write_txns[tree.name]
            self._force_exclusive.pop(tree.name, None)
            _, all_rows = apply_write(
                self.catalog, node, rows, self.page_bytes, tm=self.txn, txn=txn
            )
            self._query_rows[tree.name] = all_rows
            self._base_pages.pop(node.target_relation, None)
        elif isinstance(node, (DeleteNode, UpdateNode)):
            updated = Relation(node.target_relation, root_ic.result_schema, page_bytes=4096)
            updated.insert_many(rows)
            self.catalog.replace(updated)
            # Later queries must re-page the relation from the new state.
            self._base_pages.pop(node.target_relation, None)
        elif isinstance(node, AppendNode):
            target = self.catalog.get(node.target_relation)
            updated = Relation(
                node.target_relation, target.schema, page_bytes=target.page_bytes
            )
            updated.insert_many(target.rows())
            updated.insert_many(rows)
            self.catalog.replace(updated)
            self._query_rows[tree.name] = list(updated.rows())
            self._base_pages.pop(node.target_relation, None)
        for run in self._runs:
            if run.tree is tree and run.completed_at is None:
                run.completed_at = self.sim.now
                run.result_rows = len(rows)
                if self.sim.tracer.enabled:
                    self.sim.tracer.span(
                        tree.name,
                        "query",
                        run.submitted_at,
                        run.completed_at - run.submitted_at,
                        "queries",
                        args={"result_rows": run.result_rows},
                    )
                break
        if self.sim.spans is not None:
            self.sim.spans.query_end(tree.name, self.sim.now, len(rows))
        self.mc.query_finished(tree)
        if self.on_query_complete is not None:
            self.on_query_complete(tree.name, self.sim.now, len(rows))


def run_ring_benchmark(
    catalog: Catalog,
    queries: Sequence[QueryTree],
    processors: int = 16,
    **machine_kwargs,
) -> RingReport:
    """Build a ring machine, submit ``queries``, run, and report."""
    machine = RingMachine(catalog, processors=processors, **machine_kwargs)
    for tree in queries:
        machine.submit(tree)
    return machine.run()
