"""Concurrency control at the master controller (requirement 1, Section 4.0).

"When a user's query is received by the MC it is placed in a queue of
queries awaiting execution.  When system resources become available, the
MC removes the next query from the queue, checks it for concurrency
conflicts with other executing queries, and then distributes ... the
instructions."

The paper defers the mechanism's design to future work; we implement the
conservative interpretation: relation-granularity shared/exclusive locks
acquired all-at-once at admission (queries that only read a relation take
S; append/delete targets take X).  All-at-once acquisition plus FIFO
admission means no deadlock and no starvation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.check.sanitizer import active_witness
from repro.errors import ConcurrencyError
from repro.query.tree import QueryTree


class LockMode(enum.Enum):
    """Shared (readers) or exclusive (writers)."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        """S/S is the only compatible pair at relation granularity."""
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass(frozen=True)
class LockRequest:
    """The full lock set one query needs."""

    query_name: str
    shared: frozenset
    exclusive: frozenset

    @classmethod
    def for_tree(cls, tree: QueryTree) -> "LockRequest":
        """Derive the lock set from a query tree's read/write relations."""
        writes = frozenset(tree.updated_relations())
        reads = frozenset(tree.leaf_relations()) - writes
        return cls(query_name=tree.name, shared=reads, exclusive=writes)

    @property
    def relations(self) -> frozenset:
        """Every relation the query touches."""
        return self.shared | self.exclusive


@dataclass
class _Held:
    mode: LockMode
    holders: Set[str] = field(default_factory=set)


class LockManager:
    """All-at-once relation locks with FIFO admission.

    ``try_acquire`` either grants the entire lock set or nothing; the MC
    retries the queue head whenever a query releases.
    """

    def __init__(self):
        self._held: Dict[str, _Held] = {}
        self._owners: Dict[str, LockRequest] = {}

    # -- admission -------------------------------------------------------------

    def can_acquire(self, request: LockRequest) -> bool:
        """Would the whole lock set be grantable right now?"""
        for relation in sorted(request.exclusive):
            if relation in self._held:
                return False
        for relation in sorted(request.shared):
            held = self._held.get(relation)
            if held is not None and held.mode is LockMode.EXCLUSIVE:
                return False
        return True

    def try_acquire(self, request: LockRequest) -> bool:
        """Grant the whole lock set, or nothing."""
        if request.query_name in self._owners:
            raise ConcurrencyError(f"query {request.query_name!r} already holds locks")
        if not self.can_acquire(request):
            return False
        # sorted(): lock tables are built in a PYTHONHASHSEED-independent
        # order, so two runs always agree on the _held dict's layout.
        for relation in sorted(request.shared):
            held = self._held.setdefault(relation, _Held(LockMode.SHARED))
            held.holders.add(request.query_name)
        for relation in sorted(request.exclusive):
            self._held[relation] = _Held(LockMode.EXCLUSIVE, {request.query_name})
        witness = active_witness()
        if witness is not None:
            # The whole set is granted or nothing is, so the witness sees
            # one atomic grant: no hold-and-wait inside it, no ordering
            # edges between its own members.
            witness.record_grant(
                request.query_name,
                [
                    (
                        relation,
                        f"try_acquire({request.query_name!r}) "
                        f"{'X' if relation in request.exclusive else 'S'}-lock "
                        f"{relation!r}",
                    )
                    for relation in sorted(request.relations)
                ],
            )
        self._owners[request.query_name] = request
        return True

    def try_upgrade(self, query_name: str, relation: str) -> bool:
        """Upgrade ``query_name``'s S lock on ``relation`` to X, or refuse.

        Sole-holder only, and strictly non-blocking: an upgrade that
        cannot be granted immediately returns False instead of waiting,
        so the classic upgrade deadlock (two S holders each waiting to
        upgrade) cannot arise — the refused writer aborts, releases, and
        retries with X demanded at admission.
        """
        request = self._owners.get(query_name)
        if request is None:
            raise ConcurrencyError(
                f"query {query_name!r} holds no locks to upgrade"
            )
        if relation in request.exclusive:
            return True  # already exclusive; nothing to do
        if relation not in request.shared:
            raise ConcurrencyError(
                f"query {query_name!r} holds no S lock on {relation!r}"
            )
        held = self._held.get(relation)
        if held is None or query_name not in held.holders:
            raise ConcurrencyError(
                f"lock table corrupt: {query_name!r} owns {relation!r} "
                f"but the relation's holder entry is missing"
            )
        if held.holders != {query_name}:
            return False
        held.mode = LockMode.EXCLUSIVE
        self._owners[query_name] = LockRequest(
            query_name=query_name,
            shared=request.shared - {relation},
            exclusive=request.exclusive | {relation},
        )
        witness = active_witness()
        if witness is not None:
            # The lock is already held, so no new edge can form; recording
            # keeps the upgrade visible in the witness's acquisition trail.
            witness.record(
                query_name,
                relation,
                f"try_upgrade({query_name!r}) S->X {relation!r}",
            )
        return True

    def release(self, query_name: str) -> None:
        """Drop every lock the query holds.

        Releasing a query that holds nothing raises — double-release is
        how an admission/retry bug would corrupt the lock table silently
        (the serving mode's retry path makes this a live hazard).  An
        owner whose per-relation entries have gone missing means the
        table itself is corrupt, which also raises.
        """
        request = self._owners.pop(query_name, None)
        if request is None:
            raise ConcurrencyError(
                f"query {query_name!r} holds no locks (double release?)"
            )
        witness = active_witness()
        if witness is not None:
            witness.release(query_name)
        for relation in sorted(request.relations):
            held = self._held.get(relation)
            if held is None or query_name not in held.holders:
                raise ConcurrencyError(
                    f"lock table corrupt: {query_name!r} owns {relation!r} "
                    f"but the relation's holder entry is missing"
                )
            held.holders.discard(query_name)
            if not held.holders:
                del self._held[relation]

    # -- introspection ------------------------------------------------------------

    def holders_of(self, relation: str) -> List[str]:
        """Names of queries currently locking ``relation``."""
        held = self._held.get(relation)
        return sorted(held.holders) if held else []

    def mode_of(self, relation: str) -> LockMode:
        """Current lock mode of ``relation``; raises if unlocked."""
        try:
            return self._held[relation].mode
        except KeyError:
            raise ConcurrencyError(f"{relation!r} is not locked") from None

    @property
    def active_queries(self) -> List[str]:
        """Queries currently holding locks."""
        return sorted(self._owners)

    def __len__(self) -> int:
        return len(self._held)
