"""The preliminary data-flow database machine of Section 4 (Figure 4.1).

Six components, as the paper lists them:

1. The master controller (MC) — :mod:`repro.ring.master`
2. A set of instruction controllers (IC) — :mod:`repro.ring.controller`
3. The inner communications ring (MC <-> ICs) — :mod:`repro.ring.network`
4. A mass storage system with a multiport disk cache (reused from
   :mod:`repro.direct.cache`)
5. A set of instruction processors (IP) — :mod:`repro.ring.processor`
6. The outer communications ring (ICs <-> IPs) — :mod:`repro.ring.network`

Packets travel the rings in the exact formats of Figures 4.3-4.5
(:mod:`repro.ring.packets`), and the join protocol of Section 4.2 —
broadcast inner pages, IRC vectors, missed-page recovery, flush-when-done
— is implemented literally.  The machine executes real query trees over
real pages; its answers are validated against the reference interpreter.
"""

from repro.ring.packets import (
    ControlMessage,
    ControlPacket,
    InstructionPacket,
    ResultPacket,
    SourceOperand,
)
from repro.ring.machine import RingMachine, RingReport
from repro.ring.concurrency import LockManager, LockMode

__all__ = [
    "InstructionPacket",
    "ResultPacket",
    "ControlPacket",
    "ControlMessage",
    "SourceOperand",
    "RingMachine",
    "RingReport",
    "LockManager",
    "LockMode",
]
