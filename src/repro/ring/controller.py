"""Instruction controllers (ICs) — the distributed arbitration network.

Each IC controls the execution of one instruction from a query tree
(Section 4.1).  It:

* keeps a **page table per source operand**, growing as result packets
  arrive from the IPs of producer instructions ("as pages (which may not
  be full) arrive, they are compressed to form full pages");
* holds operand pages in **local memory**, overflowing to its segment of
  the multiport disk cache, which overflows to mass storage — the
  three-level storage hierarchy;
* acquires IPs from the MC, feeds them instruction packets, and releases
  them when the work drains;
* runs the broadcast side of the join protocol: it answers
  ``REQUEST_INNER`` control packets by broadcasting the page to *all* its
  IPs, ignoring duplicate requests for a page whose broadcast is already
  in flight ("subsequent requests for the same page which are received by
  the IC 'soon' afterwards can be ignored").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import MachineError
from repro.direct.cache import PageRef
from repro.relational.page import Page
from repro.relational.schema import Row, Schema
from repro.query.tree import (
    AppendNode,
    DeleteNode,
    JoinNode,
    ProjectNode,
    QueryNode,
    QueryTree,
    RestrictNode,
    UnionNode,
    UpdateNode,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.ring.machine import RingMachine
    from repro.ring.processor import InstructionProcessor


class OperandState:
    """Consumer-side page table plus the arriving-row compressor."""

    def __init__(self, name: str, schema: Schema, page_bytes: int, is_base: bool):
        self.name = name
        self.schema = schema
        self.page_bytes = page_bytes
        self.is_base = is_base
        self.pages: List[PageRef] = []
        self.complete = False
        self.rows_received = 0
        self._buffer: List[Row] = []
        self._capacity = Page(schema, page_bytes).capacity

    def add_rows(self, rows: List[Row]) -> List[Page]:
        """Compress arriving result rows; return any pages completed."""
        if self.complete:
            raise MachineError(f"operand {self.name!r} received rows after completion")
        self._buffer.extend(rows)
        self.rows_received += len(rows)
        completed: List[Page] = []
        while len(self._buffer) >= self._capacity:
            completed.append(self._make_page(self._buffer[: self._capacity]))
            del self._buffer[: self._capacity]
        return completed

    def finish(self) -> Optional[Page]:
        """Producer done: flush the final partial page, mark complete."""
        self.complete = True
        if not self._buffer:
            return None
        page = self._make_page(self._buffer)
        self._buffer = []
        return page

    def _make_page(self, rows: List[Row]) -> Page:
        page = Page(self.schema, self.page_bytes)
        page.extend_unchecked(rows)  # arriving rows came off shipped pages
        return page

    @property
    def page_count(self) -> int:
        """Pages in the table so far."""
        return len(self.pages)


class InstructionController:
    """One IC and the instruction it controls."""

    def __init__(
        self,
        machine: "RingMachine",
        ic_id: int,
        node: QueryNode,
        tree: QueryTree,
        operand_specs: List[Tuple[str, Schema, bool]],
        result_schema: Schema,
    ):
        self.machine = machine
        self.ic_id = ic_id
        self.node = node
        self.tree = tree
        self.page_bytes = machine.page_bytes
        self.result_schema = result_schema
        #: (consumer ic_id, operand index there); MC sentinel 0 for the root.
        self.destination: Tuple[int, int] = (0, 0)
        self.operands = [
            OperandState(name, schema, machine.page_bytes, is_base)
            for name, schema, is_base in operand_specs
        ]

        # Work queues.
        self.unary_pending: Deque[Tuple[int, int]] = deque()
        self.outer_pending: Deque[int] = deque()
        self.inflight_packets = 0

        # IPs.
        self.my_ips: List["InstructionProcessor"] = []
        self.idle_ips: List["InstructionProcessor"] = []
        self.want_outstanding = 0

        # Join broadcast state.  Insertion-ordered dict-as-set: iteration
        # order (should any appear later) never depends on PYTHONHASHSEED.
        self.broadcast_inflight: Dict[int, None] = {}
        self.pending_inner_requests: Dict[int, List["InstructionProcessor"]] = {}

        # Fault tolerance (requirement 5): a watchdog per dispatched unit.
        # Maps ip_id -> (watchdog event, requeue closure).
        self._watchdogs: Dict[int, tuple] = {}

        # Local memory (three-level hierarchy, level 1).
        self._refs_by_key: Dict[str, PageRef] = {}
        self._local: Dict[str, Page] = {}
        self._local_fifo: List[str] = []
        self._overflowing: Dict[str, None] = {}
        #: Pages that arrived by IP->IP direct routing (Section 5 future
        #: work): already positioned at a processor, so their first
        #: dispatch ships a header-only packet.
        self._prepositioned: Dict[str, None] = {}

        # Lifecycle.
        self.done = False
        #: Fail-stop flag (requirement 5): set by an MC-driven failover
        #: teardown.  A dead IC ignores every arriving ring delivery and
        #: storage callback — packets addressed to it fall off the loop.
        self.dead = False
        self._finishing = False
        self._flushes_outstanding = 0
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.rows_emitted_to_consumer = 0

        self._setup_kernel()

    # ------------------------------------------------------------------ kernels

    def _setup_kernel(self) -> None:
        node = self.node
        model = self.machine.model
        if isinstance(node, RestrictNode):
            test = node.predicate.compile(self.operands[0].schema)
            self.unary_kernel = lambda ip_id, page: [r for r in page.rows() if test(r)]
            self.unary_cpu_ms = lambda rows: model.restrict_cpu_ms(rows)
        elif isinstance(node, DeleteNode):
            test = node.predicate.compile(self.operands[0].schema)
            self.unary_kernel = lambda ip_id, page: [r for r in page.rows() if not test(r)]
            self.unary_cpu_ms = lambda rows: model.restrict_cpu_ms(rows)
        elif isinstance(node, UpdateNode):
            apply = node.compile_apply(self.operands[0].schema)
            self.unary_kernel = lambda ip_id, page: [apply(r) for r in page.rows()]
            self.unary_cpu_ms = lambda rows: model.restrict_cpu_ms(rows)
        elif isinstance(node, AppendNode):
            self.unary_kernel = lambda ip_id, page: list(page.rows())
            self.unary_cpu_ms = lambda rows: model.restrict_cpu_ms(rows)
        elif isinstance(node, ProjectNode):
            indices = [self.operands[0].schema.index_of(a) for a in node.attributes]
            seen: Set[Row] = set()
            dedup = node.eliminate_duplicates

            def project_kernel(ip_id: int, page: Page) -> List[Row]:
                out: List[Row] = []
                for row in page.rows():
                    cut = tuple(row[i] for i in indices)
                    if dedup:
                        if cut in seen:
                            continue
                        seen.add(cut)
                    out.append(cut)
                return out

            self.unary_kernel = project_kernel
            self.unary_cpu_ms = lambda rows: model.project_cpu_ms(rows)
        elif isinstance(node, UnionNode):
            seen_union: Set[Row] = set()

            def union_kernel(ip_id: int, page: Page) -> List[Row]:
                out: List[Row] = []
                for row in page.rows():
                    if row not in seen_union:
                        seen_union.add(row)
                        out.append(row)
                return out

            self.unary_kernel = union_kernel
            self.unary_cpu_ms = lambda rows: model.project_cpu_ms(rows)
        elif isinstance(node, JoinNode):
            self.join_condition = node.condition
            self.join_outer_index = self.operands[0].schema.index_of(node.condition.outer_attr)
            self.join_inner_index = self.operands[1].schema.index_of(node.condition.inner_attr)
        else:
            raise MachineError(f"ring machine cannot control {node.opcode!r} nodes")

    @property
    def is_join(self) -> bool:
        """True for join instructions (broadcast protocol applies)."""
        return isinstance(self.node, JoinNode)

    @property
    def max_ips(self) -> int:
        """IP cap: the paper has no parallel duplicate-elimination
        algorithm, so project/union run on a single IP."""
        if isinstance(self.node, (ProjectNode, UnionNode)):
            return 1
        return self.machine.max_ips_per_instruction

    # ------------------------------------------------------------------ operand input

    def seed_base_operand(self, operand_index: int, refs: List[PageRef]) -> None:
        """A base-relation operand: its full page table exists at start."""
        if self.dead:
            return
        operand = self.operands[operand_index]
        operand.pages.extend(refs)
        for ref in refs:
            self._refs_by_key[ref.key] = ref
        operand.complete = True
        for i in range(len(refs)):
            self._queue_work(operand_index, i)
        self._after_input_change(operand_index)

    def receive_result_rows(self, operand_index: int, rows: List[Row]) -> None:
        """Rows from a producer's result packet landed here."""
        if self.dead:
            return
        operand = self.operands[operand_index]
        for page in operand.add_rows(rows):
            self._install_intermediate_page(operand_index, page)
        self._after_input_change(operand_index)

    def receive_direct_page(self, operand_index: int, page: Page) -> None:
        """A result page arrived by direct IP->IP routing.

        The page is installed as-is — the compression step of Section 4.2
        is forfeited (partial pages stay partial), which is exactly the
        cost side of the paper's Section 5 tradeoff.
        """
        if self.dead:
            return
        operand = self.operands[operand_index]
        if operand.complete:
            raise MachineError(f"operand {operand.name!r} received a page after completion")
        operand.rows_received += page.row_count
        index = operand.page_count
        ref = PageRef(
            key=f"ic{self.ic_id}.op{operand_index}:{index}",
            nbytes=self.page_bytes,
            payload=page,
            on_disk=False,
            disk_id=(self.ic_id + index) % 2,
            row_count=page.row_count,
        )
        operand.pages.append(ref)
        self._refs_by_key[ref.key] = ref
        self._prepositioned[ref.key] = None
        self._local_store(ref)
        self._queue_work(operand_index, index)
        self._after_input_change(operand_index)

    def take_preposition(self, ref: PageRef) -> bool:
        """Consume the page's pre-positioned status (first dispatch only)."""
        if ref.key in self._prepositioned:
            self._prepositioned.pop(ref.key, None)
            return True
        return False

    def receive_operand_complete(self, operand_index: int) -> None:
        """The producer instruction has finished this operand."""
        if self.dead:
            return
        operand = self.operands[operand_index]
        final = operand.finish()
        if final is not None:
            self._install_intermediate_page(operand_index, final)
        # Join inner completion: answer every request beyond the end.
        if self.is_join and operand_index == 1:
            count = operand.page_count
            for index, ips in list(self.pending_inner_requests.items()):
                if index >= count:
                    del self.pending_inner_requests[index]
                    for ip in ips:
                        self.machine.ic_send_inner_last(self, ip, count)
        self._after_input_change(operand_index)
        self.maybe_complete()

    def _install_intermediate_page(self, operand_index: int, page: Page) -> None:
        operand = self.operands[operand_index]
        index = operand.page_count
        ref = PageRef(
            key=f"ic{self.ic_id}.op{operand_index}:{index}",
            nbytes=self.page_bytes,
            payload=page,
            on_disk=False,
            disk_id=(self.ic_id + index) % 2,
            row_count=page.row_count,
        )
        operand.pages.append(ref)
        self._refs_by_key[ref.key] = ref
        self._local_store(ref)
        self._queue_work(operand_index, index)
        # A fresh inner page satisfies any IPs that asked for it early.
        if self.is_join and operand_index == 1 and index in self.pending_inner_requests:
            del self.pending_inner_requests[index]
            self._broadcast_inner(index)

    def _queue_work(self, operand_index: int, page_index: int) -> None:
        if self.is_join:
            if operand_index == 0:
                self.outer_pending.append(page_index)
        else:
            self.unary_pending.append((operand_index, page_index))

    def _after_input_change(self, operand_index: int) -> None:
        self.request_ips_if_needed()
        self.dispatch_idle_ips()

    # ------------------------------------------------------------------ enablement & IP pool

    def enabled(self) -> bool:
        """Page-level rule: at least one page of each operand (or complete)."""
        return all(op.page_count > 0 or op.complete for op in self.operands)

    def _work_available(self) -> int:
        if self.is_join:
            inner = self.operands[1]
            if inner.page_count == 0 and not inner.complete:
                return 0
            return len(self.outer_pending)
        return len(self.unary_pending)

    def request_ips_if_needed(self) -> None:
        """Ask the MC for processors matching the outstanding work."""
        if self.done or self._finishing or self.dead or not self.enabled():
            return
        desired = min(self.max_ips, self._work_available())
        shortfall = desired - len(self.my_ips) - self.want_outstanding
        if shortfall > 0:
            self.want_outstanding += shortfall
            if self.machine.sim.metrics.enabled:
                self.machine.sim.metrics.counter("ic.ip_requests").add(shortfall)
            self.machine.ic_request_ips(self, shortfall)

    def grant_ip(self, ip: "InstructionProcessor") -> None:
        """The MC granted one IP (GRANT_IP)."""
        self.want_outstanding = max(0, self.want_outstanding - 1)
        if self.done or self._finishing or self.dead:
            # The instruction wound down while the grant was in flight;
            # bounce the processor straight back to the pool.
            self.machine.ic_release_ip(self, ip)
            return
        ip.assign(self, self.result_schema)
        self.my_ips.append(ip)
        self.idle_ips.append(ip)
        if self.started_at is None:
            self.started_at = self.machine.sim.now
        if self.machine.sim.metrics.enabled:
            self.machine.sim.metrics.counter("ic.ip_grants").add()
        self.dispatch_idle_ips()

    def _release_ip(self, ip: "InstructionProcessor") -> None:
        self.my_ips.remove(ip)
        if ip in self.idle_ips:
            self.idle_ips.remove(ip)
        ip.release()
        self.machine.ic_release_ip(self, ip)

    # ------------------------------------------------------------------ dispatch

    def dispatch_idle_ips(self) -> None:
        """Feed every idle IP with the next packet of work."""
        if self.dead:
            return
        sim = self.machine.sim
        while self.idle_ips and self._work_available() > 0:
            ip = self.idle_ips.pop(0)
            kind = "join" if self.is_join else "unary"
            if sim.tracer.enabled:
                sim.tracer.instant(
                    f"dispatch.{kind}",
                    "ic",
                    sim.now,
                    f"IC{self.ic_id}",
                    args={"ip": ip.ip_id, "backlog": self._work_available()},
                )
            if sim.metrics.enabled:
                sim.metrics.counter("ic.dispatch", kind=kind).add()
                sim.metrics.series(
                    "ic.backlog", ic=self.ic_id, run=sim.run_id
                ).record(sim.now, self._work_available())
            if self.is_join:
                self._dispatch_join(ip)
            else:
                self._dispatch_unary(ip)
        # Idle IPs with no work left: release when no more can ever come.
        if not self._finishing:
            self.release_surplus_ips()
        self.maybe_complete()

    def _is_last_work_item(self) -> bool:
        if self.is_join:
            return not self.outer_pending and self.operands[0].complete
        return not self.unary_pending and all(op.complete for op in self.operands)

    def _dispatch_unary(self, ip: "InstructionProcessor") -> None:
        operand_index, page_index = self.unary_pending.popleft()
        operand = self.operands[operand_index]
        ref = operand.pages[page_index]
        flush = self._is_last_work_item()
        self.inflight_packets += 1
        self._arm_watchdog(
            ip,
            self._unit_failure(
                lambda: self.unary_pending.append((operand_index, page_index))
            ),
        )

        header_only = self.take_preposition(ref)

        def have_page(page: Page) -> None:
            self.machine.ic_send_unary_packet(self, ip, page, flush, header_only=header_only)

        self._with_payload(ref, have_page)

    def _dispatch_join(self, ip: "InstructionProcessor") -> None:
        outer_index = self.outer_pending.popleft()
        outer_ref = self.operands[0].pages[outer_index]
        inner = self.operands[1]
        flush = self._is_last_work_item()
        self.inflight_packets += 1
        self._arm_watchdog(
            ip, self._unit_failure(lambda: self.outer_pending.append(outer_index))
        )
        include_inner = 0 if inner.page_count > 0 else None

        header_only = self.take_preposition(outer_ref)

        def have_outer(outer_page: Page) -> None:
            if include_inner is None:
                self.machine.ic_send_join_packet(
                    self, ip, outer_page, outer_index, None, None, flush,
                    outer_header_only=header_only,
                )
                return

            def have_inner(inner_page: Page) -> None:
                self.machine.ic_send_join_packet(
                    self, ip, outer_page, outer_index, inner_page, include_inner, flush,
                    outer_header_only=header_only,
                )

            self._with_payload(inner.pages[include_inner], have_inner)

        self._with_payload(outer_ref, have_outer)

    def release_surplus_ips(self) -> None:
        """Idle IPs whose work supply has permanently dried up go home.

        Also invoked by the MC when other ICs are starving for IPs.
        """
        if self.dead:
            return
        if self._work_available() > 0:
            return
        can_ever_grow = not self._inputs_exhausted()
        if can_ever_grow and not self.machine.mc.has_starving_requests(self):
            return
        while self.idle_ips:
            ip = self.idle_ips.pop(0)
            self.machine.ic_flush_ip(self, ip)
            self._flushes_outstanding += 1
            self._arm_watchdog(ip, self._flush_failure())

    def _inputs_exhausted(self) -> bool:
        if self.is_join:
            return self.operands[0].complete
        return all(op.complete for op in self.operands)

    # ------------------------------------------------------------------ control packets from IPs

    def ip_done(self, ip: "InstructionProcessor") -> None:
        """DONE control packet: the IP finished its current packet."""
        if self.dead:
            return
        self._disarm_watchdog(ip)
        self.inflight_packets = max(0, self.inflight_packets - 1)
        self.idle_ips.append(ip)
        self.dispatch_idle_ips()

    def ip_flush_done(self, ip: "InstructionProcessor") -> None:
        """DONE answering a FLUSH: the IP's buffer is empty; release it."""
        if self.dead:
            return
        self._disarm_watchdog(ip)
        self._flushes_outstanding -= 1
        self._release_ip(ip)
        self.maybe_complete()

    def ip_ready_for_outer(self, ip: "InstructionProcessor") -> None:
        """READY_FOR_OUTER: the IP's IRC vector is complete."""
        if self.dead:
            return
        self._disarm_watchdog(ip)
        self.inflight_packets = max(0, self.inflight_packets - 1)
        self.idle_ips.append(ip)
        self.dispatch_idle_ips()

    def ip_request_inner(self, ip: "InstructionProcessor", index: int) -> None:
        """REQUEST_INNER(i): broadcast page i, or queue, or signal the end."""
        if self.dead:
            return
        inner = self.operands[1]
        if index < inner.page_count:
            decision = "ignored" if index in self.broadcast_inflight else "broadcast"
        elif inner.complete:
            decision = "last"
        else:
            decision = "queued"
        sim = self.machine.sim
        if sim.tracer.enabled:
            sim.tracer.instant(
                "request_inner",
                "ic",
                sim.now,
                f"IC{self.ic_id}",
                args={"ip": ip.ip_id, "index": index, "decision": decision},
            )
        if sim.metrics.enabled:
            sim.metrics.counter("ic.inner_requests", decision=decision).add()
        if decision == "ignored":
            # "Subsequent requests ... received 'soon' afterwards can
            # be ignored" — the in-flight broadcast will serve it.
            return
        if decision == "broadcast":
            self._broadcast_inner(index)
        elif decision == "last":
            self.machine.ic_send_inner_last(self, ip, inner.page_count)
        else:
            self.pending_inner_requests.setdefault(index, []).append(ip)

    def _broadcast_inner(self, index: int) -> None:
        inner = self.operands[1]
        ref = inner.pages[index]
        self.broadcast_inflight[index] = None
        if self.machine.sim.metrics.enabled:
            self.machine.sim.metrics.counter("ic.inner_broadcasts").add()
        last_known = inner.page_count if inner.complete else None

        def have_page(page: Page) -> None:
            def delivered() -> None:
                self.broadcast_inflight.pop(index, None)

            self.machine.ic_broadcast_inner(self, index, page, last_known, delivered)

        self._with_payload(ref, have_page)

    # ------------------------------------------------------------------ fault tolerance

    def _arm_watchdog(self, ip: "InstructionProcessor", on_failure: Callable[[], None]) -> None:
        """Watch a dispatched unit (or flush); on a *confirmed* IP failure,
        run the unit's recovery bookkeeping and report the casualty.

        Detection is modeled as reliable fail-stop: the watchdog declares
        death only when the IP really is failed, re-arming otherwise, so a
        merely slow IP can never cause duplicate execution.
        """
        if not self.machine.fault_tolerant:
            return

        def check() -> None:
            current = self._watchdogs.get(ip.ip_id)
            if current is None:
                return
            if ip.failed:
                del self._watchdogs[ip.ip_id]
                if ip in self.my_ips:
                    self.my_ips.remove(ip)
                if ip in self.idle_ips:
                    self.idle_ips.remove(ip)
                on_failure()
                self.machine.report_ip_failure(self, ip)
                self.request_ips_if_needed()
                self.dispatch_idle_ips()
            else:
                event = self.machine.sim.schedule(
                    self.machine.watchdog_interval_ms, check, label=f"ic{self.ic_id}.watchdog"
                )
                self._watchdogs[ip.ip_id] = (event, on_failure)

        event = self.machine.sim.schedule(
            self.machine.watchdog_interval_ms, check, label=f"ic{self.ic_id}.watchdog"
        )
        self._watchdogs[ip.ip_id] = (event, on_failure)

    def _unit_failure(self, requeue: Callable[[], None]) -> Callable[[], None]:
        """Recovery for a lost work unit: un-count it and requeue."""

        def recover() -> None:
            self.inflight_packets = max(0, self.inflight_packets - 1)
            requeue()

        return recover

    def _flush_failure(self) -> Callable[[], None]:
        """Recovery for a lost flush: the buffer died with the IP."""

        def recover() -> None:
            self._flushes_outstanding = max(0, self._flushes_outstanding - 1)
            self.maybe_complete()

        return recover

    def _disarm_watchdog(self, ip: "InstructionProcessor") -> None:
        entry = self._watchdogs.pop(ip.ip_id, None)
        if entry is not None:
            entry[0].cancel()

    def abort(self) -> List["InstructionProcessor"]:
        """MC-driven failover teardown: fail-stop this IC.

        Cancels every watchdog, clears the work queues, aborts each held
        IP's assignment (their buffered results die with the query
        attempt), and marks the IC dead so in-flight ring deliveries and
        storage callbacks addressed to it are dropped on arrival.
        Returns the orphaned, still-healthy IPs for the MC to reclaim.
        """
        self.dead = True
        for entry in self._watchdogs.values():
            entry[0].cancel()
        self._watchdogs.clear()
        orphans = list(self.my_ips)
        for ip in orphans:
            ip.abort_assignment()
        self.my_ips = []
        self.idle_ips = []
        self.unary_pending.clear()
        self.outer_pending.clear()
        self.inflight_packets = 0
        self.want_outstanding = 0
        self.broadcast_inflight = {}
        self.pending_inner_requests = {}
        self._flushes_outstanding = 0
        return orphans

    # ------------------------------------------------------------------ completion

    def maybe_complete(self) -> None:
        """Drive the finishing protocol once all work has drained."""
        if self.done or self.dead:
            return
        if not all(op.complete for op in self.operands):
            return
        if self.unary_pending or self.outer_pending or self.inflight_packets:
            return
        self._finishing = True
        # Flush every held IP's result buffer — including IPs that became
        # idle (or were granted) after the finishing phase began.
        for ip in list(self.idle_ips):
            self.idle_ips.remove(ip)
            self.machine.ic_flush_ip(self, ip)
            self._flushes_outstanding += 1
            self._arm_watchdog(ip, self._flush_failure())
        if self._flushes_outstanding or self.my_ips:
            return
        self.done = True
        self.completed_at = self.machine.sim.now
        sim = self.machine.sim
        if sim.tracer.enabled:
            start = self.started_at if self.started_at is not None else self.completed_at
            sim.tracer.span(
                f"{self.tree.name}.{self.node.opcode}{self.node.node_id}",
                "instruction",
                start,
                self.completed_at - start,
                f"IC{self.ic_id}",
                args={"rows_out": self.rows_emitted_to_consumer},
            )
        if sim.metrics.enabled:
            sim.metrics.counter("ic.instructions_done", op=self.node.opcode).add()
        self.machine.ic_instruction_done(self)

    # ------------------------------------------------------------------ local memory (level 1)

    def _local_store(self, ref: PageRef) -> None:
        if ref.key not in self._local:
            self._local[ref.key] = ref.payload
            self._local_fifo.append(ref.key)
        self._overflow_local()

    def _overflow_local(self) -> None:
        """Write the oldest local pages to the disk-cache segment when the
        IC's memory fills (Section 4.1: "the IC will write the least
        desirable pages to its segment of the multiport disk cache").

        Pages stay readable during the write-out; pages that already have
        a disk or cache copy are simply dropped.
        """
        while len(self._local) - len(self._overflowing) > self.machine.ic_memory_pages:
            key = next(
                (
                    k
                    for k in self._local_fifo
                    if k in self._local and k not in self._overflowing
                ),
                None,
            )
            if key is None:
                return
            self._local_fifo.remove(key)
            ref = self._find_ref(key)
            if ref is None or ref.on_disk or self.machine.cache.is_resident(ref):
                self._local.pop(key, None)
                continue
            self._overflowing[key] = None

            def spilled(k: str = key) -> None:
                self._overflowing.pop(k, None)
                self._local.pop(k, None)

            self.machine.ic_overflow_page(self, ref, spilled)

    def _find_ref(self, key: str) -> Optional[PageRef]:
        return self._refs_by_key.get(key)

    def _with_payload(self, ref: PageRef, use: Callable[[Page], None]) -> None:
        """Run ``use`` with the page's rows, fetching through the storage
        hierarchy (and charging its time/traffic) when not in local memory."""
        payload = self._local.get(ref.key)
        if payload is not None:
            use(payload)
            return
        if ref.payload is None:
            raise MachineError(f"page {ref.key!r} has no payload anywhere")

        def fetched() -> None:
            if self.dead:
                return  # failover tore this IC down while the read ran
            # Bring it (back) into local memory.
            self._local_store(ref)
            use(ref.payload)

        self.machine.ic_fetch_page(self, ref, fetched)

    def __repr__(self) -> str:
        return f"IC{self.ic_id}({self.tree.name}.{self.node.opcode}{self.node.node_id})"
