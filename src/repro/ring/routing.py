"""IP->IP direct routing (the paper's Section 5 future work).

"We feel that it should be possible to route some of the data pages which
are produced by IPs directly from one IP to another without first sending
the page to an IC. ... There appears, however, to be a tradeoff between
decreased message traffic and increased IP complexity."

The mechanism itself lives in :class:`repro.ring.machine.RingMachine`
(``direct_ip_routing=True``) and
:meth:`repro.ring.controller.InstructionController.receive_direct_page`:

* intermediate result pages bound for a *non-broadcast* operand (unary
  inputs and join outers) cross the outer ring once, landing
  pre-positioned at a consumer IP; the consuming instruction's first
  dispatch of such a page ships a header-only packet;
* the cost: the IC's compression step is forfeited, so partial pages stay
  partial — more packets, more per-packet work at the IPs ("increased IP
  complexity"), and worse page utilization;
* join inner operands keep the IC path: the broadcast protocol requires a
  mediator that holds the full inner page table.

This module provides the closed-form side of the tradeoff so experiments
can compare prediction with measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ring.packets import instruction_packet_bytes, result_packet_bytes
from repro.relational.schema import Schema


@dataclass(frozen=True)
class RoutingSavings:
    """Predicted outer-ring bytes for one intermediate page, both ways."""

    via_ic_bytes: int
    direct_bytes: int

    @property
    def saved_bytes(self) -> int:
        """Positive when direct routing reduces ring traffic."""
        return self.via_ic_bytes - self.direct_bytes

    @property
    def saved_fraction(self) -> float:
        """Fraction of the via-IC traffic eliminated."""
        if self.via_ic_bytes == 0:
            return 0.0
        return self.saved_bytes / self.via_ic_bytes


def page_routing_savings(
    result_schema: Schema, operand_schema: Schema, page_data_bytes: int
) -> RoutingSavings:
    """Ring bytes for one intermediate page: via IC vs direct.

    Via IC, the page crosses the ring twice: once as a result packet
    (IP -> IC) and once inside an instruction packet (IC -> IP).  Direct,
    it crosses once (IP -> IP) and the later dispatch is header-only.
    """
    via_ic = result_packet_bytes(page_data_bytes) + instruction_packet_bytes(
        result_schema, [(operand_schema, page_data_bytes)]
    )
    direct = result_packet_bytes(page_data_bytes) + instruction_packet_bytes(
        result_schema, [(operand_schema, 0)]
    )
    return RoutingSavings(via_ic_bytes=via_ic, direct_bytes=direct)


def break_even_fill_fraction(
    result_schema: Schema, operand_schema: Schema, full_page_bytes: int
) -> float:
    """Page fill level below which direct routing stops paying.

    Direct routing ships pages uncompressed.  If the producer's packets
    average a fill fraction f, the direct path ships 1/f times as many
    pages (each f-full); it still wins while the per-page dispatch saving
    exceeds the extra per-page headers.  Returns the f* where the two
    paths' byte counts are equal (0 < f* <= 1); measurements in experiment
    E10 bracket this prediction.
    """
    header = instruction_packet_bytes(result_schema, [(operand_schema, 0)])
    result_header = result_packet_bytes(0)
    # Per full page of data, via IC the page crosses the ring twice:
    #   bytes_via_ic = (result_header + full) + (header + full)
    # Direct, the data crosses once, but at fill fraction f it is spread
    # over 1/f packets, each paying both headers:
    #   bytes_direct(f) = full + (1/f) * (result_header + header)
    # Setting bytes_direct(f*) = bytes_via_ic and solving for f*:
    #   f* = (result_header + header) / (bytes_via_ic - full)
    via_full = result_header + full_page_bytes + header + full_page_bytes
    denom = via_full - full_page_bytes
    if denom <= 0:
        return 1.0
    f_star = (result_header + header) / denom
    return max(0.0, min(1.0, f_star))
