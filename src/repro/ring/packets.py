"""Ring packets, byte-exact to Figures 4.3, 4.4, and 4.5.

Figure 4.3 — instruction packet::

    IPid | Packet Length | Query Id | ICid of sender | ICid of destination
    | "Flush-When-Done" flag | Instruction Opcode
    | result operand: Relation Name, Tuple Length & Format
    | # of Source Operands
    | per source operand: Relation Name, Tuple Length & Format,
      Page Length, Data Page
    | Checksum

Figure 4.4 — result packet::

    ICid | Packet Length | Relation Name | Page Length | Data Page | Checksum

Figure 4.5 — control packet::

    ICid | Packet Length | IPid of sender | Message | Checksum

All integers are little-endian uint32; relation names are 16-byte
NUL-padded ASCII; the "Tuple Length & Format" field serializes the
operand's schema (so any IP can decode the rows, as the paper requires);
data pages are the page's literal bytes.  Every packet ends with a CRC-32
checksum of everything before it — the error-detection word Section 4's
lossy-ring protocol needs: a receiver that sees a checksum mismatch NAKs
the transfer and the sender retransmits (see :mod:`repro.ring.network`).
The Packet Length field covers the complete packet including the
checksum.  ``encode``/``decode`` round-trip exactly, and the simulated
rings charge transfer time on ``len(encode())``.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import PacketError
from repro.relational.schema import Attribute, DataType, Schema

_U32 = struct.Struct("<I")
_NAME_BYTES = 16
#: Trailing CRC-32 word appended to every packet.
CHECKSUM_BYTES = 4

#: Fixed header sizes (bytes) used for analytic packet-size formulas.
INSTRUCTION_HEADER_BYTES = 7 * 4  # IPid..opcode fields
CONTROL_PACKET_BYTES = 4 * 4 + 4 + CHECKSUM_BYTES  # fixed control packet + argument + crc


def _seal(packet: bytes) -> bytes:
    """Append the CRC-32 checksum word to a fully built packet."""
    return packet + _U32.pack(zlib.crc32(packet) & 0xFFFFFFFF)


def _verify_checksum(data: bytes, what: str) -> None:
    """Check the trailing CRC-32 word; raise :class:`PacketError` on mismatch."""
    if len(data) < 8 + CHECKSUM_BYTES:
        raise PacketError(f"{what} shorter than its header")
    carried = _U32.unpack_from(data, len(data) - CHECKSUM_BYTES)[0]
    computed = zlib.crc32(data[:-CHECKSUM_BYTES]) & 0xFFFFFFFF
    if carried != computed:
        raise PacketError(
            f"{what} checksum mismatch: carried {carried:#010x}, "
            f"computed {computed:#010x}"
        )


def flip_byte(data: bytes, offset: int) -> bytes:
    """``data`` with the byte at ``offset`` inverted (corruption helper)."""
    offset %= len(data)  # support negative offsets
    return data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]


def _pack_u32(value: int) -> bytes:
    if not 0 <= value < 2**32:
        raise PacketError(f"field value {value} out of uint32 range")
    return _U32.pack(value)


def _pack_name(name: str) -> bytes:
    raw = name.encode("ascii", errors="replace")
    if len(raw) > _NAME_BYTES:
        raw = raw[:_NAME_BYTES]
    return raw.ljust(_NAME_BYTES, b"\x00")


def _unpack_name(data: bytes, offset: int) -> Tuple[str, int]:
    raw = data[offset : offset + _NAME_BYTES]
    return raw.rstrip(b"\x00").decode("ascii"), offset + _NAME_BYTES


def _pack_schema(schema: Schema) -> bytes:
    """Serialize the "Tuple Length & Format" field: arity, then per
    attribute a 1-byte type code, 2-byte width, and 16-byte name."""
    parts = [_pack_u32(schema.record_width), _pack_u32(schema.arity)]
    codes = {DataType.INT: 0, DataType.FLOAT: 1, DataType.CHAR: 2}
    for attr in schema:
        parts.append(struct.pack("<BH", codes[attr.dtype], attr.width))
        parts.append(_pack_name(attr.name))
    return b"".join(parts)


def _unpack_schema(data: bytes, offset: int) -> Tuple[Schema, int]:
    record_width = _U32.unpack_from(data, offset)[0]
    arity = _U32.unpack_from(data, offset + 4)[0]
    offset += 8
    kinds = {0: DataType.INT, 1: DataType.FLOAT, 2: DataType.CHAR}
    attrs = []
    for _ in range(arity):
        code, width = struct.unpack_from("<BH", data, offset)
        offset += 3
        name, offset = _unpack_name(data, offset)
        attrs.append(Attribute(name, kinds[code], width))
    schema = Schema(tuple(attrs))
    if schema.record_width != record_width:
        raise PacketError(
            f"tuple format decodes to width {schema.record_width}, header says {record_width}"
        )
    return schema, offset


@dataclass
class SourceOperand:
    """One source operand of an instruction packet: a named page of rows."""

    relation_name: str
    schema: Schema
    page_bytes: bytes

    def encode(self) -> bytes:
        """Relation Name | Tuple Length & Format | Page Length | Data Page."""
        return (
            _pack_name(self.relation_name)
            + _pack_schema(self.schema)
            + _pack_u32(len(self.page_bytes))
            + self.page_bytes
        )

    @classmethod
    def decode(cls, data: bytes, offset: int) -> Tuple["SourceOperand", int]:
        """Inverse of :meth:`encode`; returns the operand and next offset."""
        name, offset = _unpack_name(data, offset)
        schema, offset = _unpack_schema(data, offset)
        page_len = _U32.unpack_from(data, offset)[0]
        offset += 4
        page = data[offset : offset + page_len]
        if len(page) != page_len:
            raise PacketError("source operand page truncated")
        return cls(name, schema, page), offset + page_len


@dataclass
class InstructionPacket:
    """Figure 4.3: everything an IP needs to execute one operation."""

    ip_id: int
    query_id: int
    sender_ic: int
    destination_ic: int
    flush_when_done: bool
    opcode: str
    result_relation: str
    result_schema: Schema
    operands: List[SourceOperand] = field(default_factory=list)
    #: Free-form extra control payload (e.g. serialized predicate id);
    #: carried in the opcode field region, length-prefixed.
    tag: int = 0

    _OPCODES = ["restrict", "join", "project", "union", "append", "delete"]

    def encode(self) -> bytes:
        """Serialize in the Figure 4.3 field order.

        The Packet Length field is the length of the complete packet,
        written after the body is known (as real ring hardware does).
        """
        try:
            opcode_num = self._OPCODES.index(self.opcode)
        except ValueError:
            raise PacketError(f"unknown opcode {self.opcode!r}") from None
        body = (
            _pack_u32(self.query_id)
            + _pack_u32(self.sender_ic)
            + _pack_u32(self.destination_ic)
            + _pack_u32(1 if self.flush_when_done else 0)
            + _pack_u32(opcode_num)
            + _pack_u32(self.tag)
            + _pack_name(self.result_relation)
            + _pack_schema(self.result_schema)
            + _pack_u32(len(self.operands))
            + b"".join(op.encode() for op in self.operands)
        )
        return _seal(
            _pack_u32(self.ip_id) + _pack_u32(len(body) + 8 + CHECKSUM_BYTES) + body
        )

    @classmethod
    def decode(cls, data: bytes) -> "InstructionPacket":
        """Inverse of :meth:`encode`."""
        _verify_checksum(data, "instruction packet")
        ip_id = _U32.unpack_from(data, 0)[0]
        length = _U32.unpack_from(data, 4)[0]
        if length != len(data):
            raise PacketError(f"packet length field {length} != actual {len(data)}")
        offset = 8
        query_id = _U32.unpack_from(data, offset)[0]
        sender = _U32.unpack_from(data, offset + 4)[0]
        dest = _U32.unpack_from(data, offset + 8)[0]
        flush = bool(_U32.unpack_from(data, offset + 12)[0])
        opcode_num = _U32.unpack_from(data, offset + 16)[0]
        tag = _U32.unpack_from(data, offset + 20)[0]
        offset += 24
        if opcode_num >= len(cls._OPCODES):
            raise PacketError(f"unknown opcode number {opcode_num}")
        result_relation, offset = _unpack_name(data, offset)
        result_schema, offset = _unpack_schema(data, offset)
        count = _U32.unpack_from(data, offset)[0]
        offset += 4
        operands = []
        for _ in range(count):
            operand, offset = SourceOperand.decode(data, offset)
            operands.append(operand)
        return cls(
            ip_id=ip_id,
            query_id=query_id,
            sender_ic=sender,
            destination_ic=dest,
            flush_when_done=flush,
            opcode=cls._OPCODES[opcode_num],
            result_relation=result_relation,
            result_schema=result_schema,
            operands=operands,
            tag=tag,
        )

    @property
    def wire_bytes(self) -> int:
        """Size on the ring."""
        return len(self.encode())


@dataclass
class ResultPacket:
    """Figure 4.4: one page of result tuples bound for an IC."""

    ic_id: int
    relation_name: str
    page_bytes: bytes

    def encode(self) -> bytes:
        """ICid | Packet Length | Relation Name | Page Length | Data Page | Checksum."""
        body = (
            _pack_name(self.relation_name)
            + _pack_u32(len(self.page_bytes))
            + self.page_bytes
        )
        return _seal(
            _pack_u32(self.ic_id) + _pack_u32(len(body) + 8 + CHECKSUM_BYTES) + body
        )

    @classmethod
    def decode(cls, data: bytes) -> "ResultPacket":
        """Inverse of :meth:`encode`."""
        _verify_checksum(data, "result packet")
        ic_id = _U32.unpack_from(data, 0)[0]
        length = _U32.unpack_from(data, 4)[0]
        if length != len(data):
            raise PacketError(f"packet length field {length} != actual {len(data)}")
        name, offset = _unpack_name(data, 8)
        page_len = _U32.unpack_from(data, offset)[0]
        offset += 4
        page = data[offset : offset + page_len]
        if len(page) != page_len:
            raise PacketError("result packet page truncated")
        return cls(ic_id=ic_id, relation_name=name, page_bytes=page)

    @property
    def wire_bytes(self) -> int:
        """Size on the ring."""
        return len(self.encode())


def schema_field_bytes(schema: Schema) -> int:
    """Wire size of one "Tuple Length & Format" field."""
    return 8 + schema.arity * (3 + _NAME_BYTES)


def instruction_packet_bytes(result_schema: Schema, operands: List[Tuple[Schema, int]]) -> int:
    """Wire size of an instruction packet without encoding it.

    ``operands`` is a list of ``(schema, page_byte_length)`` pairs.  The
    value equals ``len(packet.encode())`` exactly (verified by tests), so
    the simulator can charge ring time without packing page bytes.
    """
    size = 8 + 24 + _NAME_BYTES + schema_field_bytes(result_schema) + 4 + CHECKSUM_BYTES
    for schema, page_len in operands:
        size += _NAME_BYTES + schema_field_bytes(schema) + 4 + page_len
    return size


def result_packet_bytes(page_len: int) -> int:
    """Wire size of a result packet carrying ``page_len`` page bytes."""
    return 8 + _NAME_BYTES + 4 + page_len + CHECKSUM_BYTES


def query_flow_id(query_name: str) -> int:
    """Deterministic Chrome-trace flow id for ``query_name``.

    Flow events linking a query's packet-hop slices back to its query
    span need one stable ``id`` per query.  Reuse the same CRC-32 the
    packets carry as their checksum word: stable across runs and
    machines, independent of PYTHONHASHSEED, and cheap to recompute at
    export time.
    """
    return zlib.crc32(query_name.encode("utf-8", errors="replace")) & 0xFFFFFFFF


class ControlMessage(enum.Enum):
    """Messages carried by Figure 4.5 control packets."""

    #: IP -> IC: finished the current packet, ready for more work.
    DONE = 1
    #: IP -> IC: request inner page <argument> of the join.
    REQUEST_INNER = 2
    #: IP -> IC: current outer page fully joined, ready for a new outer.
    READY_FOR_OUTER = 3
    #: IC -> MC: request <argument> instruction processors.
    REQUEST_IPS = 4
    #: IC -> MC: release IP <argument> back to the pool.
    RELEASE_IP = 5
    #: MC -> IC: grant of IP <argument>.
    GRANT_IP = 6
    #: IC -> MC: instruction complete.
    INSTRUCTION_DONE = 7
    #: IC -> IP: no inner page numbered <argument> or higher will exist
    #: ("this is the last page of the inner relation").
    INNER_LAST = 8
    #: MC -> IC: source operand <argument> of your instruction is complete
    #: (its producer instruction finished).
    OPERAND_COMPLETE = 9


@dataclass
class ControlPacket:
    """Figure 4.5: ICid | Packet Length | IPid of sender | Message."""

    ic_id: int
    sender_ip: int
    message: ControlMessage
    argument: int = 0

    def encode(self) -> bytes:
        """Serialize; the message field carries the enum and one argument."""
        body = _pack_u32(self.sender_ip) + _pack_u32(self.message.value) + _pack_u32(self.argument)
        return _seal(
            _pack_u32(self.ic_id) + _pack_u32(len(body) + 8 + CHECKSUM_BYTES) + body
        )

    @classmethod
    def decode(cls, data: bytes) -> "ControlPacket":
        """Inverse of :meth:`encode`."""
        if len(data) != CONTROL_PACKET_BYTES:
            raise PacketError(
                f"control packet must be {CONTROL_PACKET_BYTES} bytes, got {len(data)}"
            )
        _verify_checksum(data, "control packet")
        ic_id = _U32.unpack_from(data, 0)[0]
        length = _U32.unpack_from(data, 4)[0]
        if length != len(data):
            raise PacketError(f"packet length field {length} != actual {len(data)}")
        sender = _U32.unpack_from(data, 8)[0]
        message = ControlMessage(_U32.unpack_from(data, 12)[0])
        argument = _U32.unpack_from(data, 16)[0]
        return cls(ic_id=ic_id, sender_ip=sender, message=message, argument=argument)

    @property
    def wire_bytes(self) -> int:
        """Size on the ring (fixed)."""
        return CONTROL_PACKET_BYTES
