"""Future-event-list structures behind :class:`repro.sim.engine.Simulator`.

Both structures key on *distinct* timestamps and keep a FIFO bucket of
events per timestamp, so the engine dequeues whole same-time **batches**:
one priority-queue operation per distinct timestamp instead of one per
event.  Within a bucket, events sit in scheduling order (the engine's
sequence numbers are monotone and a bucket only ever grows by append),
which preserves the engine's tie-break contract exactly.

* :class:`TieBatchedHeap` — the default.  A binary heap of distinct
  timestamps plus a ``time -> [events]`` bucket dict.  Workloads with
  heavy timestamp ties (rings full of synchronized hops, the bench
  microloop) collapse ``O(n log n)`` heap traffic into ``O(d log d)`` for
  ``d`` distinct times.
* :class:`CalendarQueue` — opt-in via ``Simulator(scheduler="calendar")``.
  R. Brown's calendar queue: a wheel of day-buckets of width ``w``; a
  timestamp lands in day ``int(t / w) % ndays``.  Amortized O(1)
  enqueue/dequeue when the width tracks the mean inter-event gap, which a
  doubling/halving resize maintains.  Dequeue scans days in calendar
  order and takes the minimum timestamp belonging to the day under the
  scan cursor, falling back to a direct minimum when a whole year passes
  without a hit (all events far in the future); day membership is always
  computed as ``int(t / w)`` — never via derived window bounds — so
  placement and search can never disagree by a rounding ulp.

Both structures yield bit-identical event order (the engine's
``(time, sequence)`` total order); the calendar queue is validated
against the heap by property tests and the experiment byte-identity gate
(``repro check --scheduler-identity``).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Event

#: A dequeued batch: the timestamp plus its events in scheduling order.
Batch = Tuple[float, List["Event"]]

SCHEDULER_NAMES = ("heap", "calendar")


class TieBatchedHeap:
    """Binary heap of distinct timestamps with per-timestamp FIFO buckets."""

    __slots__ = ("_times", "_buckets")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._buckets: Dict[float, List["Event"]] = {}

    def push(self, when: float, event: "Event") -> None:
        bucket = self._buckets.get(when)
        if bucket is not None:
            bucket.append(event)
        else:
            self._buckets[when] = [event]
            heapq.heappush(self._times, when)

    def peek_time(self) -> Optional[float]:
        """The earliest pending timestamp, or None when empty."""
        return self._times[0] if self._times else None

    def pop_batch(self) -> Batch:
        """Remove and return the earliest ``(time, events)`` batch."""
        when = heapq.heappop(self._times)
        return when, self._buckets.pop(when)

    def __len__(self) -> int:
        """Distinct pending timestamps (not event count)."""
        return len(self._times)


class CalendarQueue:
    """Brown's calendar queue over distinct timestamps.

    The wheel holds *timestamps*; the per-timestamp event FIFOs live in
    ``_ties``, so wheel occupancy tracks distinct times — the quantity the
    width heuristic needs.  Correctness does not depend on the width: a
    bad width only degrades the scan toward O(days).
    """

    __slots__ = ("_width", "_ndays", "_wheel", "_ties", "_count", "_floor", "_cached")

    #: Wheel sizes double/halve around this minimum.
    MIN_DAYS = 8

    def __init__(self, width: float = 1.0, ndays: int = MIN_DAYS) -> None:
        self._width = width
        self._ndays = ndays
        self._wheel: List[List[float]] = [[] for _ in range(ndays)]
        self._ties: Dict[float, List["Event"]] = {}
        self._count = 0  # distinct pending timestamps
        self._floor = 0.0  # lower bound on every pending timestamp
        self._cached: Optional[float] = None  # memoized minimum

    def push(self, when: float, event: "Event") -> None:
        bucket = self._ties.get(when)
        if bucket is not None:
            bucket.append(event)  # tie: no new wheel entry, minimum unchanged
            return
        self._ties[when] = [event]
        self._wheel[int(when / self._width) % self._ndays].append(when)
        self._count += 1
        if self._cached is not None and when < self._cached:
            self._cached = when
        if self._count > 2 * self._ndays:
            self._resize(2 * self._ndays)

    def peek_time(self) -> Optional[float]:
        """The earliest pending timestamp, or None when empty."""
        if not self._count:
            return None
        if self._cached is None:
            self._cached = self._find_min()
        return self._cached

    def pop_batch(self) -> Batch:
        """Remove and return the earliest ``(time, events)`` batch."""
        when = self._cached if self._cached is not None else self._find_min()
        self._wheel[int(when / self._width) % self._ndays].remove(when)
        self._count -= 1
        self._floor = when
        self._cached = None
        events = self._ties.pop(when)
        if self._ndays > self.MIN_DAYS and self._count < self._ndays // 2:
            self._resize(self._ndays // 2)
        return when, events

    def __len__(self) -> int:
        """Distinct pending timestamps (not event count)."""
        return self._count

    # -- internals -----------------------------------------------------------

    def _find_min(self) -> float:
        """The smallest pending timestamp.

        Scans days starting from the day of ``_floor`` (every pending
        timestamp is >= ``_floor``: events are only scheduled at or after
        the clock, and the clock never passes an undequeued event).  A
        day's candidates are the wheel-bucket entries whose *computed day
        index* equals the scan cursor — the same ``int(t / width)``
        arithmetic ``push`` used, so a timestamp can never fall between
        two days.  A full revolution without a hit means everything is
        over a year away: take the direct minimum.
        """
        width = self._width
        ndays = self._ndays
        day = int(self._floor / width)
        for _ in range(ndays):
            bucket = self._wheel[day % ndays]
            if bucket:
                best: Optional[float] = None
                for when in bucket:
                    if int(when / width) == day and (best is None or when < best):
                        best = when
                if best is not None:
                    return best
            day += 1
        return min(when for bucket in self._wheel for when in bucket)

    def _resize(self, ndays: int) -> None:
        """Rebuild the wheel with ``ndays`` days and a re-estimated width."""
        times = [when for bucket in self._wheel for when in bucket]
        if len(times) > 1:
            span = max(times) - min(times)
            if span > 0.0:
                # Aim for ~one distinct timestamp per day.
                self._width = span / len(times)
        self._ndays = ndays
        self._wheel = [[] for _ in range(ndays)]
        width = self._width
        for when in times:
            self._wheel[int(when / width) % ndays].append(when)
        self._cached = None


#: The engine programs against this union; both classes expose
#: push / peek_time / pop_batch / __len__.
FutureEventList = Union[TieBatchedHeap, CalendarQueue]


def make_scheduler(name: str) -> FutureEventList:
    """Build the named future-event list; raises on unknown names."""
    if name == "heap":
        return TieBatchedHeap()
    if name == "calendar":
        return CalendarQueue()
    raise SimulationError(
        f"unknown scheduler {name!r} (choose from {', '.join(SCHEDULER_NAMES)})"
    )
