"""Seeded, named RNG streams for the simulators.

Each subsystem draws from its own stream so adding randomness to one
component never perturbs another — the property that keeps A/B comparisons
(page- vs relation-level granularity on the *same* workload) honest.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RandomStreams:
    """A family of independent :class:`random.Random` streams under one seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream called ``name`` (created on first use, stable per seed)."""
        if name not in self._streams:
            mix = zlib.crc32(name.encode("utf-8")) ^ (self.seed * 0x9E3779B1 & 0xFFFFFFFF)
            self._streams[name] = random.Random(mix)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams
