"""Discrete-event simulation kernel.

Both machine simulators (:mod:`repro.direct` and :mod:`repro.ring`) run on
this kernel: an event heap with a simulated millisecond clock, FIFO server
resources for devices (disks, cache ports, processors, rings), and
measurement monitors.  Everything is deterministic — there is no wall-clock
dependence and ties are broken by insertion order.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource, ResourceStats
from repro.sim.monitor import Counter, TimeSeries, Tally

__all__ = [
    "Simulator",
    "Event",
    "Resource",
    "ResourceStats",
    "Counter",
    "TimeSeries",
    "Tally",
]
