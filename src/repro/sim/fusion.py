"""Operator-loop fusion: the ambient flag and its safety gate.

Fusion collapses a machine's deterministic per-page charge chains — e.g.
the ring IP's join protocol, which fills the inner page into processor
memory (one event) and then runs the join CPU loop (a second event) —
into **one** scheduled event whose duration is computed analytically up
front (the Dong & Kjolstad bag-semantics compiler idea applied to the
simulator: the inner loop's cost is a closed form of the operand row
counts, so nothing needs to happen at the intermediate boundary).

Exactness contract (enforced by ``repro check --fusion-identity``):

* **timestamps** — the fused event lands on the bit-identical end time
  the unfused cascade would have produced: each link schedules relative
  to its own fire time, so the end time is the *left-to-right* float sum
  ``(t0 + a) + b``, which :func:`repro.direct.exec_model.fused_chain_end`
  reproduces and ``Simulator.schedule_abs`` stores untouched;
* **accounting** — busy-time is credited per chain link in the original
  order (float addition is not associative), and the engine's
  ``count_fused`` credit keeps ``events_processed`` / ``sim.events``
  equal to the unfused run;
* **scope** — fusion silently disables itself when a fault plan is armed
  (fault recovery settles and fences work at chain boundaries that no
  longer exist when fused) and in serving mode (an ``until`` horizon can
  cut a chain mid-flight, making the collapsed boundary observable in
  ``events_processed``).  Batch experiments run to drain, where the
  equivalence is exact.

Enable per-machine (``RingMachine(..., fuse_ops=True)`` /
``DirectMachine(..., fuse_ops=True)``), ambiently for a block
(:func:`fusing`), or via ``REPRO_SIM_FUSE=1`` in the environment.  The
flag defaults to **off**: the byte-identity oracle runs both ways in CI,
and perf numbers in the bench trajectory are recorded unfused.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.check.flow.effects import FusionSafetyReport
    from repro.sim.engine import Simulator

__all__ = ["fusing", "fusion_default", "fusion_safety_report", "resolve_fusion"]

#: Ambient fusion flag; read once by each machine at construction.  Seeded
#: from the environment so sweep worker processes inherit the selection.
_ambient_fuse: bool = os.environ.get("REPRO_SIM_FUSE", "") not in ("", "0")


def fusion_default() -> bool:
    """True when machines built right now should fuse operator loops."""
    return _ambient_fuse


@contextmanager
def fusing(enabled: bool = True) -> Iterator[None]:
    """Set the ambient fusion flag for machines constructed inside.

    Exported through ``REPRO_SIM_FUSE`` so sweep worker processes build
    their machines the same way.
    """
    global _ambient_fuse
    previous = _ambient_fuse
    previous_env = os.environ.get("REPRO_SIM_FUSE")
    _ambient_fuse = enabled
    os.environ["REPRO_SIM_FUSE"] = "1" if enabled else "0"
    try:
        yield
    finally:
        _ambient_fuse = previous
        if previous_env is None:
            os.environ.pop("REPRO_SIM_FUSE", None)
        else:
            os.environ["REPRO_SIM_FUSE"] = previous_env


# -- fusion-safety gate --------------------------------------------------------

#: Machine component -> the module whose charge chains it fuses.  The
#: effect analysis must prove *that* module's chains safe before the
#: component is allowed to fuse.
_COMPONENT_MODULES = {
    "ring": "repro/ring/processor.py",
    "direct": "repro/direct/machine.py",
}

#: Lazily built whole-project safety report; ``False`` records that the
#: analysis itself failed, which reads as "nothing is proven" (fail
#: closed).  Process-wide cache: the sources cannot change under a
#: running simulator.
_safety_report: object = None


def fusion_safety_report() -> "Optional[FusionSafetyReport]":
    """The cached project-wide fusion-safety report (None if unbuildable)."""
    global _safety_report
    if _safety_report is None:
        try:
            import repro
            from repro.check.flow import analyze_fusion_safety, build_call_graph

            root = os.path.dirname(os.path.abspath(repro.__file__))
            _safety_report = analyze_fusion_safety(build_call_graph([root]))
        except Exception:  # pragma: no cover - analysis must not kill a run
            _safety_report = False
    return _safety_report if _safety_report is not False else None


def _component_proven_safe(component: str) -> bool:
    """True when ``component``'s fused chains are statically proven safe."""
    suffix = _COMPONENT_MODULES.get(component)
    if suffix is None:
        return False  # unknown component: nothing is proven
    report = fusion_safety_report()
    return report is not None and report.module_proven_safe(suffix)


def resolve_fusion(
    explicit: Optional[bool], sim: "Simulator", component: Optional[str] = None
) -> bool:
    """The effective fusion flag for a machine bound to ``sim``.

    Explicit constructor argument wins, else the ambient flag; either way
    an armed fault plan forces fusion off (see the module docstring).
    When ``component`` is given, fusion additionally requires the static
    effect analysis (:mod:`repro.check.flow.effects`) to have proven the
    component's charge chains effect-free — a chain the analysis cannot
    prove safe is never fused, no matter what the flag says.
    """
    enabled = _ambient_fuse if explicit is None else explicit
    if not (bool(enabled) and sim.faults is None):
        return False
    if component is not None and not _component_proven_safe(component):
        return False
    return True
