"""Measurement instruments: counters, tallies, and time series.

The experiment harness reads these to produce figure data; the simulators
only ever *record* into them, never read back (measurements cannot affect
behaviour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Counter:
    """A monotone event/byte counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}={self.value})"


@dataclass
class Tally:
    """Streaming mean/variance/extrema of observed samples (Welford)."""

    name: str
    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: When not None, every observed sample is also kept raw, so another
    #: tally can *replay* them (bit-identical to having observed them
    #: itself) instead of merging summary state.  Sweep worker registries
    #: turn this on; it is what makes parallel metrics byte-identical to
    #: serial.
    samples: Optional[List[float]] = None

    def observe(self, sample: float) -> None:
        """Record one sample."""
        self.count += 1
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)
        self.minimum = min(self.minimum, sample)
        self.maximum = max(self.maximum, sample)
        if self.samples is not None:
            self.samples.append(sample)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (0.0 below two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def combine(
        self, count: int, mean: float, m2: float, minimum: float, maximum: float
    ) -> None:
        """Fold another tally's state into this one (parallel Welford merge).

        The sweep runner uses this to merge per-worker registries; the
        combined count/extrema are exact, mean and variance are the
        standard pairwise combination.
        """
        if count <= 0:
            return
        if self.count == 0:
            self.count, self._mean, self._m2 = count, mean, m2
            self.minimum, self.maximum = minimum, maximum
            return
        total = self.count + count
        delta = mean - self._mean
        self._m2 += m2 + delta * delta * self.count * count / total
        self._mean += delta * count / total
        self.count = total
        self.minimum = min(self.minimum, minimum)
        self.maximum = max(self.maximum, maximum)

    def __repr__(self) -> str:
        return f"Tally({self.name!r}, n={self.count}, mean={self.mean:.3f})"


@dataclass
class TimeSeries:
    """Timestamped samples, e.g. queue lengths over simulated time."""

    name: str
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one ``(time, value)`` sample; time must not go backwards."""
        if self.samples and time < self.samples[-1][0]:
            raise ValueError(f"time series {self.name!r} must be monotone in time")
        self.samples.append((time, value))

    def time_weighted_mean(self, end_time: float) -> float:
        """Mean value weighted by holding time, from first sample to ``end_time``."""
        if not self.samples:
            return 0.0
        total = 0.0
        for (t0, v), (t1, _v1) in zip(self.samples, self.samples[1:]):
            total += v * (t1 - t0)
        last_t, last_v = self.samples[-1]
        if end_time > last_t:
            total += last_v * (end_time - last_t)
        span = end_time - self.samples[0][0]
        return total / span if span > 0 else self.samples[-1][1]

    @property
    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self.samples[-1][1] if self.samples else 0.0

    def __len__(self) -> int:
        return len(self.samples)
