"""FIFO server resources over the event loop.

A :class:`Resource` models a device with ``capacity`` identical servers
(disk arms, cache ports, a ring's insertion register, a pool of IPs).
Callers submit *jobs* with a known service time; the resource runs up to
``capacity`` jobs at once and queues the rest in FIFO order.  Utilization
and queueing statistics are tracked for the experiment reports.

Hot-path note: observability is pre-bound at construction (the simulator's
session never flips after ``__init__``), so the per-job cost of disabled
tracing/metrics is one ``is not None`` check rather than chained attribute
loads and registry lookups.  The queue-depth series instrument is likewise
resolved once instead of re-keyed on every submit.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Lease:
    """A manually held server slot, returned by :meth:`Resource.acquire`.

    Release exactly once — directly or as a context manager::

        with resource.acquire(label="compaction") as lease:
            ...  # one server is held for the block

    Under sanitize mode, leases still open when the run finalizes are
    reported as acquire-without-release leaks.
    """

    __slots__ = ("resource", "label", "acquired_at", "released", "lease_id")

    def __init__(
        self, resource: "Resource", label: str, acquired_at: float, lease_id: int
    ):
        self.resource = resource
        self.label = label
        self.acquired_at = acquired_at
        self.released = False
        self.lease_id = lease_id

    def release(self) -> None:
        """Return the server to the pool (idempotence is an error)."""
        if self.released:
            raise SimulationError(
                f"{self.resource.name}: lease {self.label!r} released twice"
            )
        self.released = True
        self.resource._release_lease(self)

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "released" if self.released else f"held since {self.acquired_at}"
        return f"Lease({self.resource.name!r}, {self.label!r}, {state})"


@dataclass
class ResourceStats:
    """Aggregate statistics for one resource."""

    jobs_completed: int = 0
    busy_time: float = 0.0
    wait_time: float = 0.0
    bytes_served: int = 0
    peak_queue: int = 0

    def utilization(self, elapsed: float, capacity: int) -> float:
        """Mean fraction of servers busy over ``elapsed`` ms."""
        if elapsed <= 0 or capacity <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * capacity))

    def mean_wait(self) -> float:
        """Mean queueing delay per completed job, ms."""
        if not self.jobs_completed:
            return 0.0
        return self.wait_time / self.jobs_completed


#: Tolerance for float-summation dust when checking busy time against
#: wall-clock capacity.  Anything beyond this is real over-accounting.
_UTILIZATION_SLOP = 1e-9


def checked_utilization(
    sim: Simulator, busy_ms: float, elapsed_ms: float, capacity: int, what: str
) -> float:
    """Busy-time utilization with an over-accounting oracle, not a clamp.

    ``busy_ms > elapsed_ms * capacity`` means some interval of service was
    credited twice (the failover double-count this guards against), so it
    is reported as a sanitizer failure — or raised directly when sanitize
    mode is off — instead of being silently truncated to 1.0.  Only
    float-summation dust inside ``_UTILIZATION_SLOP`` is shaved.
    """
    if elapsed_ms <= 0 or capacity <= 0:
        return 0.0
    util = busy_ms / (elapsed_ms * capacity)
    if util > 1.0 + _UTILIZATION_SLOP:
        message = (
            f"{what}: busy time {busy_ms:.6f} ms exceeds wall-clock capacity "
            f"{elapsed_ms:.6f} ms x {capacity} servers (utilization {util:.9f}); "
            f"some service interval was credited more than once"
        )
        if sim.sanitizer is not None:
            sim.sanitizer.fail(message)
        raise SimulationError(message)
    return min(util, 1.0)


class Resource:
    """A ``capacity``-server FIFO queueing resource.

    ``submit(service_time, done, nbytes)`` enqueues a job; ``done`` fires
    when the job's service completes.  Service is non-preemptive.
    """

    def __init__(self, sim: Simulator, name: str, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"resource {name!r} needs capacity >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.stats = ResourceStats()
        self._busy = 0
        self._queue: Deque[
            Tuple[float, Callable[[], None], int, float, Optional[str], str]
        ] = deque()
        #: Jobs currently in service: job id -> (start time, service time).
        self._in_service: Dict[int, Tuple[float, float]] = {}
        self._job_ids = itertools.count()
        #: Manually held servers (insertion-ordered so leak reports are
        #: deterministic); see :meth:`acquire`.
        self._open_leases: Dict[int, Lease] = {}
        self._lease_ids = itertools.count()
        if sim.sanitizer is not None:
            sim.sanitizer.register_finish_check(
                f"resource[{name}]", self._sanitize_finish
            )
        # Pre-bound observability (None when the axis is disabled).
        self._trace = sim.tracer if sim.tracer.enabled else None
        # Pre-bound span collection: service intervals fold into the
        # resource's utilization time-series, and jobs tagged with a query
        # contribute attribution spans.  Observation only — no events.
        self._spans = sim.spans
        if self._spans is not None:
            self._spans.register_capacity(name, capacity)
        if sim.metrics.enabled:
            self._wait_tally = sim.metrics.tally("resource.wait_ms", resource=name)
            self._depth_series = sim.metrics.series(
                "resource.queue_depth", resource=name, run=sim.run_id
            )
        else:
            self._wait_tally = None
            self._depth_series = None

    # -- state ----------------------------------------------------------------

    @property
    def busy(self) -> int:
        """Servers currently serving."""
        return self._busy

    @property
    def queued(self) -> int:
        """Jobs waiting for a server."""
        return len(self._queue)

    @property
    def idle(self) -> int:
        """Free servers."""
        return self.capacity - self._busy

    def in_flight_busy_ms(self) -> float:
        """Service time already elapsed on jobs still being served.

        Completed jobs credit :attr:`ResourceStats.busy_time`; this is the
        complement, so mid-run utilization reads do not under-report a
        server halfway through a long transfer.
        """
        now = self.sim.now
        return sum(
            min(now - start, service) for start, service in self._in_service.values()
        )

    def utilization(self, elapsed_ms: Optional[float] = None) -> float:
        """Mean fraction of servers busy over ``elapsed_ms`` (default: now),
        counting both completed and in-flight service time."""
        if elapsed_ms is None:
            elapsed_ms = self.sim.now
        if elapsed_ms <= 0:
            return 0.0
        busy = self.stats.busy_time + self.in_flight_busy_ms()
        return min(1.0, busy / (elapsed_ms * self.capacity))

    # -- manual holds ------------------------------------------------------------

    def acquire(self, label: str = "") -> Lease:
        """Hold one idle server until the returned lease is released.

        Unlike :meth:`submit` (which models a known service time), a lease
        is open-ended — the caller decides when the server comes back.
        Callers must check :attr:`idle` first; acquiring with no idle
        server raises (leases never queue, so they cannot deadlock the
        FIFO jobs behind them).
        """
        if self._busy >= self.capacity:
            raise SimulationError(
                f"{self.name}: no idle server to acquire ({self._busy}/{self.capacity} busy)"
            )
        self._busy += 1
        lease = Lease(self, label, self.sim.now, next(self._lease_ids))
        self._open_leases[lease.lease_id] = lease
        return lease

    def _release_lease(self, lease: Lease) -> None:
        self._open_leases.pop(lease.lease_id, None)
        self._busy -= 1
        held = self.sim.now - lease.acquired_at
        self.stats.busy_time += held
        self._dispatch()

    @property
    def open_leases(self) -> int:
        """Manually held servers not yet released."""
        return len(self._open_leases)

    def _sanitize_finish(self) -> List[str]:
        """End-of-run invariants for the sanitizer (leaked leases)."""
        return [
            f"lease {lease.label or lease.lease_id!r} acquired at "
            f"t={lease.acquired_at:.3f} was never released"
            for lease in self._open_leases.values()
        ]

    # -- job submission ----------------------------------------------------------

    def submit(
        self,
        service_time: float,
        done: Optional[Callable[[], None]] = None,
        nbytes: int = 0,
        query: Optional[str] = None,
        span_kind: str = "service",
    ) -> None:
        """Enqueue a job needing ``service_time`` ms of one server.

        ``nbytes`` is accounting only (for bandwidth reports); ``done`` is
        called at completion time.  ``query``/``span_kind`` tag the job for
        span collection (ignored when spans are off): the in-service
        interval is recorded against the query under that attribution
        bucket, while time spent waiting in this FIFO stays uncovered and
        lands in the queueing bucket.
        """
        if service_time < 0:
            raise SimulationError(f"{self.name}: negative service time {service_time}")
        self._queue.append(
            (service_time, done or (lambda: None), nbytes, self.sim.now, query, span_kind)
        )
        if self._depth_series is not None:
            self._depth_series.record(self.sim.now, len(self._queue))
        self._dispatch()
        # Peak depth is measured *after* dispatch: a job that went straight
        # into a free server never waited, so an uncongested resource
        # reports peak_queue == 0 (it used to read 1 — the depth was
        # sampled before the dispatch pop).
        depth = len(self._queue)
        if depth > self.stats.peak_queue:
            self.stats.peak_queue = depth

    def _dispatch(self) -> None:
        while self._busy < self.capacity and self._queue:
            service_time, done, nbytes, enqueued_at, query, span_kind = (
                self._queue.popleft()
            )
            self._busy += 1
            wait = self.sim.now - enqueued_at
            if self._spans is not None:
                self._spans.resource_busy(self.name, self.sim.now, service_time)
                if query is not None:
                    self._spans.record(
                        span_kind, query, self.sim.now,
                        self.sim.now + service_time, name=self.name,
                    )
            self.stats.wait_time += wait
            job_id = next(self._job_ids)
            self._in_service[job_id] = (self.sim.now, service_time)
            if self._trace is not None:
                self._trace.span(
                    f"{self.name}.service",
                    "resource",
                    self.sim.now,
                    service_time,
                    self.name,
                    args={"bytes": nbytes, "wait_ms": wait},
                )
            if self._wait_tally is not None:
                self._wait_tally.observe(wait)
                self._depth_series.record(self.sim.now, len(self._queue))

            def finish(st=service_time, cb=done, nb=nbytes, jid=job_id):
                self._busy -= 1
                del self._in_service[jid]
                self.stats.jobs_completed += 1
                self.stats.busy_time += st
                self.stats.bytes_served += nb
                cb()
                self._dispatch()

            self.sim.schedule(service_time, finish, label=f"{self.name}.finish")

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, {self._busy}/{self.capacity} busy, "
            f"{len(self._queue)} queued)"
        )
