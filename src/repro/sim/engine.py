"""The event loop: a binary-heap future-event list with a millisecond clock.

Events are plain callbacks.  Ties in time are broken by a monotone sequence
number so simulation runs are exactly reproducible regardless of callback
contents.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is ``(time, sequence)``; the callback itself never participates
    in comparisons.  Cancelled events stay in the heap but are skipped.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent this event from firing (lazy deletion)."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, tracer=None, metrics=None):
        self._now = 0.0
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        # Observability binds once, at construction: explicit arguments
        # win, otherwise the ambient repro.obs session (disabled by
        # default).  Imported lazily — repro.obs reuses the monitor
        # instruments from this package.
        if tracer is None or metrics is None:
            from repro.obs import ambient

            session = ambient()
            tracer = tracer if tracer is not None else session.tracer
            metrics = metrics if metrics is not None else session.metrics
        self.tracer = tracer
        self.metrics = metrics
        # The ``run`` metric label: sweeps build many simulators under one
        # registry; the label keeps their series and gauges apart.
        if metrics.enabled:
            from repro.obs import next_run_id

            self.run_id = next_run_id()
        else:
            self.run_id = 0

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still in the heap (including cancelled ones)."""
        return sum(1 for e in self._heap if not e.cancelled)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` ms from now; returns the event."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._sequence), action, label)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, action, label)

    # -- execution --------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event; returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    event.label or "event", "sim", event.time, "simulator"
                )
            if self.metrics.enabled:
                self.metrics.counter("sim.events").add()
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        Returns the final simulated time.  ``max_events`` is a safety net
        against protocol livelock in the machine simulators; exceeding it
        raises :class:`SimulationError` rather than spinning forever.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now:.3f} "
                        f"(likely a protocol livelock; next: {head.label!r})"
                    )
                self.step()
                fired += 1
            # The clock always advances to ``until`` — even when the heap
            # drains first — so elapsed-time denominators (utilization,
            # offered Mbps) are consistent across stopping conditions.
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now
