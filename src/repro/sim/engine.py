"""The event loop: a batched future-event list with a millisecond clock.

Events are plain callbacks.  Ties in time are broken by a monotone sequence
number so simulation runs are exactly reproducible regardless of callback
contents.

Hot-path notes:

* The future-event list (:mod:`repro.sim.schedulers`) keys on *distinct*
  timestamps and hands back whole same-time batches, so the dispatch loop
  pays one priority-queue operation per distinct timestamp instead of one
  per event.  Within a batch, events sit in scheduling order (buckets only
  grow by append and sequence numbers are monotone), which preserves the
  pre-batching ``(time, sequence)`` total order bit-for-bit.
* Observability hooks are pre-bound at construction (a session binds once,
  at ``__init__``) so a disabled run pays one ``is not None`` check per
  event instead of chained attribute loads.

The structure behind the batches is selectable: the default tie-batched
binary heap, or an opt-in calendar queue (``Simulator(scheduler="calendar")``,
ambient :func:`scheduling`, or the ``REPRO_SIM_SCHEDULER`` environment
variable).  Both produce byte-identical runs; see
:mod:`repro.sim.schedulers`.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional

from repro.errors import SimulationError
from repro.sim.schedulers import make_scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.check.sanitizer import Sanitizer
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.obs.spans import SpanCollector

#: Ambient scheduler name; read once by each Simulator at construction.
#: Seeded from the environment so sweep worker processes (fork or spawn)
#: inherit the parent's selection.
_ambient_scheduler: str = os.environ.get("REPRO_SIM_SCHEDULER", "heap")


def ambient_scheduler() -> str:
    """The scheduler simulators built right now will use by default."""
    return _ambient_scheduler


@contextmanager
def scheduling(name: str) -> Iterator[None]:
    """Select the future-event list for simulators constructed inside.

    Mirrors :func:`repro.check.sanitizing`: the selection is ambient, and
    it is exported through ``REPRO_SIM_SCHEDULER`` so sweep worker
    processes build their simulators the same way.
    """
    global _ambient_scheduler
    previous = _ambient_scheduler
    previous_env = os.environ.get("REPRO_SIM_SCHEDULER")
    _ambient_scheduler = name
    os.environ["REPRO_SIM_SCHEDULER"] = name
    try:
        yield
    finally:
        _ambient_scheduler = previous
        if previous_env is None:
            os.environ.pop("REPRO_SIM_SCHEDULER", None)
        else:
            os.environ["REPRO_SIM_SCHEDULER"] = previous_env


class Event:
    """One scheduled callback.

    Ordering is carried by ``(time, sequence)``; the event object itself is
    never compared.  Cancelled events stay in their bucket but are skipped
    (lazy deletion); the simulator's live-event counter is maintained
    eagerly by :meth:`cancel` so ``Simulator.pending`` is O(1).
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        sequence: int,
        action: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
    ):
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = cancelled
        self.fired = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing (lazy deletion)."""
        if not self.cancelled:
            self.cancelled = True
            if not self.fired:
                sim = self._sim
                if sim is not None:
                    sim._live -= 1

    def __repr__(self) -> str:
        state = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.sequence}{state})"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    5.0
    >>> fired
    [5.0]
    """

    def __init__(
        self,
        tracer=None,
        metrics=None,
        sanitize: Optional[bool] = None,
        faults: Optional["FaultPlan"] = None,
        scheduler: Optional[str] = None,
    ):
        self._now = 0.0
        if scheduler is None:
            scheduler = _ambient_scheduler
        self.scheduler = scheduler
        self._fel = make_scheduler(scheduler)
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        #: Pending (scheduled, not yet fired, not cancelled) events.
        self._live = 0
        # The batch currently being drained: ``run``/``step`` share it so a
        # horizon stop, a max_events stop, or single-stepping can resume
        # mid-batch without disturbing order.
        self._batch: List[Event] = []
        self._batch_pos = 0
        self._batch_time = 0.0
        # The sanitizer binds once, like observability: explicit argument
        # wins, otherwise the ambient sanitize mode (off by default).  A
        # non-sanitizing run holds None and pays one identity check per
        # event.
        if sanitize is None:
            from repro.check.sanitizer import is_active

            sanitize = is_active()
        if sanitize:
            from repro.check.sanitizer import Sanitizer

            self._sanitizer: Optional["Sanitizer"] = Sanitizer()
        else:
            self._sanitizer = None
        # Observability binds once, at construction: explicit arguments
        # win, otherwise the ambient repro.obs session (disabled by
        # default).  Imported lazily — repro.obs reuses the monitor
        # instruments from this package.
        if tracer is None or metrics is None:
            from repro.obs import ambient

            session = ambient()
            tracer = tracer if tracer is not None else session.tracer
            metrics = metrics if metrics is not None else session.metrics
        self.tracer = tracer
        self.metrics = metrics
        # Pre-bound fast paths: None when the axis is disabled, so the
        # event loop does one identity check instead of two attribute
        # chains per event.  ``enabled`` never flips after construction.
        self._trace = tracer if tracer.enabled else None
        self._event_counter = metrics.counter("sim.events") if metrics.enabled else None
        # The ``run`` metric label: sweeps build many simulators under one
        # registry; the label keeps their series and gauges apart.
        if metrics.enabled:
            from repro.obs import next_run_id

            self.run_id = next_run_id()
        else:
            self.run_id = 0
        # Fault injection binds the same way the sanitizer does: explicit
        # plan wins, else the ambient repro.faults plan.  A plan with
        # nothing armed binds no injector, so components keep their
        # fault-free fast paths and the run is bit-identical to an
        # unarmed one.  (Bound after observability — the injector
        # pre-binds this simulator's tracer/metrics.)
        if faults is None:
            from repro.faults.plan import active_plan

            faults = active_plan()
        if faults is not None and faults.armed:
            from repro.faults.injector import FaultInjector

            self._faults: Optional["FaultInjector"] = FaultInjector(faults, self)
        else:
            self._faults = None
        # Span collection binds last, the same ambient way: None when off,
        # so components pre-bind ``sim.spans`` and pay one identity check.
        # Armed collection only *observes* — it never schedules events,
        # so ``events_processed`` (and every report byte) is unchanged;
        # ``repro check --tracing-identity`` proves it.
        from repro.obs.spans import active_collector

        self.spans: Optional["SpanCollector"] = active_collector()

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired (plus fused-away credits)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Scheduled events that are neither fired nor cancelled.

        O(1): a live counter maintained by ``schedule``/``cancel`` and the
        dispatch loop — callers polling it in a loop used to trigger a
        full heap scan per call.
        """
        return self._live

    @property
    def sanitizer(self) -> Optional["Sanitizer"]:
        """The run's sanitizer, or None when sanitize mode is off."""
        return self._sanitizer

    def finalize_sanitizer(self) -> None:
        """Run the sanitizer's end-of-run invariant checks (no-op when off).

        The owning machine calls this after the event loop drains; checks
        include resource lease leaks, cache frame accounting, and ring
        packet conservation.  Raises :class:`repro.errors.SanitizerError`
        on any violation.
        """
        if self._sanitizer is not None:
            self._sanitizer.finish()

    @property
    def faults(self) -> Optional["FaultInjector"]:
        """The run's fault injector, or None when no fault plan is armed."""
        return self._faults

    def finalize_faults(self) -> None:
        """Publish the injector's recovery counters as gauges (no-op when off).

        The owning machine calls this next to :meth:`finalize_sanitizer`
        once the event loop drains.
        """
        if self._faults is not None:
            self._faults.finish()

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` ms from now; returns the event."""
        # Delay validation comes first so callers see SimulationError for
        # a negative delay in *both* modes; the sanitizer's own negative
        # check is downstream of this one and only adds NaN/inf coverage.
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if self._sanitizer is not None:
            # Checks NaN/infinite delays and same-timestamp order
            # hazards; raises SanitizerError with a breadcrumb.
            self._sanitizer.on_schedule(self._now, delay, label)
        return self._push(self._now + delay, action, label)

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, action, label)

    def schedule_abs(self, when: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule at the *exact* absolute timestamp ``when``.

        ``schedule_at`` re-derives ``now + (when - now)``, which can land an
        ulp off ``when``.  Fused operator chains need the bit-identical
        timestamp the unfused chain's cascading ``schedule`` calls would
        have produced, so this entry point stores ``when`` untouched.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (at={when}, now={self._now})"
            )
        if self._sanitizer is not None:
            self._sanitizer.on_schedule(self._now, when - self._now, label, at=when)
        return self._push(when, action, label)

    def _push(self, when: float, action: Callable[[], None], label: str) -> Event:
        event = Event(when, next(self._sequence), action, label)
        event._sim = self
        self._fel.push(when, event)
        self._live += 1
        return event

    def count_fused(self, events: int) -> None:
        """Credit ``events`` collapsed-away logical events to the totals.

        Operator fusion (:mod:`repro.sim.fusion`) replaces a deterministic
        chain of ``k`` engine events with one; the fused site credits
        ``k - 1`` here when the fused event fires, keeping
        ``events_processed`` and the ``sim.events`` counter identical to
        the unfused run — reports and the bench trajectory stay comparable
        across the flag.
        """
        if events <= 0:
            return
        self._events_processed += events
        if self._event_counter is not None:
            self._event_counter.add(events)

    # -- execution --------------------------------------------------------------

    def _fire(self, time: float, event: Event) -> None:
        """Advance the clock to ``time``, record, and run ``event``."""
        self._now = time
        event.fired = True
        self._live -= 1
        self._events_processed += 1
        if self._sanitizer is not None:
            self._sanitizer.on_fire(time, event.label)
        if self._trace is not None:
            self._trace.instant(event.label or "event", "sim", time, "simulator")
        if self._event_counter is not None:
            self._event_counter.add()
        event.action()

    def _next_batch(self) -> bool:
        """Load the next batch from the future-event list; False when empty."""
        when = self._fel.peek_time()
        if when is None:
            return False
        self._batch_time, self._batch = self._fel.pop_batch()
        self._batch_pos = 0
        return True

    def step(self) -> bool:
        """Fire the next event; returns False when nothing is pending.

        Shares the reentrancy guard with :meth:`run`: stepping from inside
        a callback would interleave two dispatch loops and corrupt
        ``events_processed``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while True:
                batch = self._batch
                pos = self._batch_pos
                if pos >= len(batch):
                    if not self._next_batch():
                        return False
                    batch = self._batch
                    pos = 0
                event = batch[pos]
                self._batch_pos = pos + 1
                if event.cancelled:
                    if self._sanitizer is not None:
                        self._sanitizer.on_drop(self._batch_time, event.label)
                    continue
                self._fire(self._batch_time, event)
                return True
        finally:
            self._running = False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the list drains, ``until`` is reached, or ``max_events`` fire.

        Returns the final simulated time.  ``max_events`` is a safety net
        against protocol livelock in the machine simulators; exceeding it
        raises :class:`SimulationError` rather than spinning forever.

        Batches whose timestamp lies beyond ``until`` are left untouched —
        cancelled events past the horizon are *not* drained (draining them
        used to emit sanitizer drop breadcrumbs stamped after the clock and
        left the event list in a different state than an equivalent
        ``step()`` sequence).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        sanitizer = self._sanitizer
        trace = self._trace
        counter = self._event_counter
        try:
            while True:
                batch = self._batch
                pos = self._batch_pos
                if pos >= len(batch):
                    when = self._fel.peek_time()
                    if when is None:
                        break
                    if until is not None and when > until:
                        break
                    self._batch_time, batch = self._fel.pop_batch()
                    self._batch = batch
                    pos = 0
                else:
                    # Resuming a batch left over from step()/max_events.
                    when = self._batch_time
                    if until is not None and when > until:
                        break
                when = self._batch_time
                size = len(batch)
                # Same-time events scheduled by these callbacks open a
                # fresh bucket in the event list (this one was popped), so
                # ``batch`` never grows mid-drain; the outer loop picks the
                # new bucket up as the next batch at the same timestamp.
                while pos < size:
                    event = batch[pos]
                    if event.cancelled:
                        pos += 1
                        self._batch_pos = pos
                        if sanitizer is not None:
                            sanitizer.on_drop(when, event.label)
                        continue
                    if max_events is not None and fired >= max_events:
                        self._batch_pos = pos
                        raise SimulationError(
                            f"exceeded max_events={max_events} at t={self._now:.3f} "
                            f"(likely a protocol livelock; next: {event.label!r})"
                        )
                    pos += 1
                    # Consume before running: an exception in a hook or the
                    # action must not leave the event eligible to re-fire.
                    self._batch_pos = pos
                    # The clock advances only when an event *fires* — an
                    # all-cancelled batch must not drag ``now`` forward.
                    self._now = when
                    event.fired = True
                    self._live -= 1
                    self._events_processed += 1
                    fired += 1
                    if sanitizer is not None:
                        sanitizer.on_fire(when, event.label)
                    if trace is not None:
                        trace.instant(event.label or "event", "sim", when, "simulator")
                    if counter is not None:
                        counter.add()
                    event.action()
            # The clock always advances to ``until`` — even when the event
            # list drains first — so elapsed-time denominators (utilization,
            # offered Mbps) are consistent across stopping conditions.
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now
