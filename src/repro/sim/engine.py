"""The event loop: a binary-heap future-event list with a millisecond clock.

Events are plain callbacks.  Ties in time are broken by a monotone sequence
number so simulation runs are exactly reproducible regardless of callback
contents.

Hot-path note: the heap holds ``(time, sequence, Event)`` tuples rather
than ordered dataclasses — tuple comparison is a single C-level operation,
where dataclass ordering re-enters Python per field.  The sequence number
is unique, so the :class:`Event` object itself never participates in a
comparison.  Observability hooks are likewise pre-bound at construction
(a session binds once, at ``__init__``) so a disabled run pays one ``is
not None`` check per event instead of chained attribute loads.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.check.sanitizer import Sanitizer
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan


class Event:
    """One scheduled callback.

    Heap ordering is carried by the enclosing ``(time, sequence)`` tuple;
    the event itself is never compared.  Cancelled events stay in the heap
    but are skipped.
    """

    __slots__ = ("time", "sequence", "action", "label", "cancelled")

    def __init__(
        self,
        time: float,
        sequence: int,
        action: Callable[[], None],
        label: str = "",
        cancelled: bool = False,
    ):
        self.time = time
        self.sequence = sequence
        self.action = action
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Prevent this event from firing (lazy deletion)."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.sequence}{state})"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(
        self,
        tracer=None,
        metrics=None,
        sanitize: Optional[bool] = None,
        faults: Optional["FaultPlan"] = None,
    ):
        self._now = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        # The sanitizer binds once, like observability: explicit argument
        # wins, otherwise the ambient sanitize mode (off by default).  A
        # non-sanitizing run holds None and pays one identity check per
        # event.
        if sanitize is None:
            from repro.check.sanitizer import is_active

            sanitize = is_active()
        if sanitize:
            from repro.check.sanitizer import Sanitizer

            self._sanitizer: Optional["Sanitizer"] = Sanitizer()
        else:
            self._sanitizer = None
        # Observability binds once, at construction: explicit arguments
        # win, otherwise the ambient repro.obs session (disabled by
        # default).  Imported lazily — repro.obs reuses the monitor
        # instruments from this package.
        if tracer is None or metrics is None:
            from repro.obs import ambient

            session = ambient()
            tracer = tracer if tracer is not None else session.tracer
            metrics = metrics if metrics is not None else session.metrics
        self.tracer = tracer
        self.metrics = metrics
        # Pre-bound fast paths: None when the axis is disabled, so the
        # event loop does one identity check instead of two attribute
        # chains per event.  ``enabled`` never flips after construction.
        self._trace = tracer if tracer.enabled else None
        self._event_counter = metrics.counter("sim.events") if metrics.enabled else None
        # The ``run`` metric label: sweeps build many simulators under one
        # registry; the label keeps their series and gauges apart.
        if metrics.enabled:
            from repro.obs import next_run_id

            self.run_id = next_run_id()
        else:
            self.run_id = 0
        # Fault injection binds the same way the sanitizer does: explicit
        # plan wins, else the ambient repro.faults plan.  A plan with
        # nothing armed binds no injector, so components keep their
        # fault-free fast paths and the run is bit-identical to an
        # unarmed one.  (Bound after observability — the injector
        # pre-binds this simulator's tracer/metrics.)
        if faults is None:
            from repro.faults.plan import active_plan

            faults = active_plan()
        if faults is not None and faults.armed:
            from repro.faults.injector import FaultInjector

            self._faults: Optional["FaultInjector"] = FaultInjector(faults, self)
        else:
            self._faults = None

    # -- clock ----------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Events still in the heap (including cancelled ones)."""
        return sum(1 for _, _, event in self._heap if not event.cancelled)

    @property
    def sanitizer(self) -> Optional["Sanitizer"]:
        """The run's sanitizer, or None when sanitize mode is off."""
        return self._sanitizer

    def finalize_sanitizer(self) -> None:
        """Run the sanitizer's end-of-run invariant checks (no-op when off).

        The owning machine calls this after the event loop drains; checks
        include resource lease leaks, cache frame accounting, and ring
        packet conservation.  Raises :class:`repro.errors.SanitizerError`
        on any violation.
        """
        if self._sanitizer is not None:
            self._sanitizer.finish()

    @property
    def faults(self) -> Optional["FaultInjector"]:
        """The run's fault injector, or None when no fault plan is armed."""
        return self._faults

    def finalize_faults(self) -> None:
        """Publish the injector's recovery counters as gauges (no-op when off).

        The owning machine calls this next to :meth:`finalize_sanitizer`
        once the event loop drains.
        """
        if self._faults is not None:
            self._faults.finish()

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` ms from now; returns the event."""
        if self._sanitizer is not None:
            # Checks NaN/infinite/negative delays and same-timestamp
            # order hazards; raises SanitizerError with a breadcrumb.
            self._sanitizer.on_schedule(self._now, delay, label)
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        sequence = next(self._sequence)
        event = Event(time, sequence, action, label)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        return self.schedule(time - self._now, action, label)

    # -- execution --------------------------------------------------------------

    def _fire(self, time: float, event: Event) -> None:
        """Advance the clock to ``time``, record, and run ``event``."""
        self._now = time
        self._events_processed += 1
        if self._sanitizer is not None:
            self._sanitizer.on_fire(time, event.label)
        if self._trace is not None:
            self._trace.instant(event.label or "event", "sim", time, "simulator")
        if self._event_counter is not None:
            self._event_counter.add()
        event.action()

    def step(self) -> bool:
        """Fire the next event; returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                if self._sanitizer is not None:
                    self._sanitizer.on_drop(time, event.label)
                continue
            self._fire(time, event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events`` fire.

        Returns the final simulated time.  ``max_events`` is a safety net
        against protocol livelock in the machine simulators; exceeding it
        raises :class:`SimulationError` rather than spinning forever.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                time, _, event = heap[0]
                if event.cancelled:
                    heappop(heap)
                    if self._sanitizer is not None:
                        self._sanitizer.on_drop(time, event.label)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} at t={self._now:.3f} "
                        f"(likely a protocol livelock; next: {event.label!r})"
                    )
                heappop(heap)
                self._fire(time, event)
                fired += 1
            # The clock always advances to ``until`` — even when the heap
            # drains first — so elapsed-time denominators (utilization,
            # offered Mbps) are consistent across stopping conditions.
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now
