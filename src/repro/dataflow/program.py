"""Compile query trees into data-flow programs (cells + destination links).

"We assume that the instruction in each memory cell corresponds to a node
in the query tree and that the data is represented by page tables."

Base-relation operands are pre-loaded into the leaf cells' slots (the
machine model keeps data cache-resident); interior edges become
destination links that the distribution network serves at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import MachineError
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.query.tree import DeleteNode, QueryNode, QueryTree, ScanNode, UpdateNode
from repro.dataflow.cell import Cell


@dataclass
class DataflowProgram:
    """One compiled query: its cells, root, and preloaded base pages."""

    tree: QueryTree
    cells: List[Cell] = field(default_factory=list)
    root: Optional[Cell] = None
    #: (cell, slot) pairs preloaded with base pages at start time.
    preloaded: List[Tuple[Cell, int, int]] = field(default_factory=list)

    def cell_for(self, node: QueryNode) -> Cell:
        """The cell compiled from ``node``."""
        for cell in self.cells:
            if cell.node is node:
                return cell
        raise MachineError(f"no cell for node {node!r}")


def compile_query(
    tree: QueryTree, catalog: Catalog, page_bytes: int = 2048
) -> DataflowProgram:
    """Build the cell graph for ``tree`` and preload base operands."""
    tree.validate(catalog)
    program = DataflowProgram(tree=tree)
    by_node: Dict[int, Cell] = {}

    for node in tree.nodes():
        if isinstance(node, ScanNode):
            continue
        operand_schemas: List[Tuple[str, Schema]] = []
        for child in _operand_children(node):
            operand_schemas.append(
                (_operand_name(child), child.output_schema(catalog))
            )
        cell = Cell(node, operand_schemas, node.output_schema(catalog))
        by_node[node.node_id] = cell
        program.cells.append(cell)
        program.root = cell

    if program.root is None:
        raise MachineError(f"query {tree.name} has no operator nodes")

    # Wire destinations and preload base operands.
    for node_id, cell in by_node.items():
        for slot_index, child in enumerate(_operand_children(cell.node)):
            if isinstance(child, ScanNode):
                relation = catalog.get(child.relation_name)
                # Shared read-only images, memoized on the relation.
                pages = relation.packed_pages(page_bytes)
                for page in pages:
                    cell.operands[slot_index].deliver(page)
                cell.operands[slot_index].finish()
                program.preloaded.append((cell, slot_index, len(pages)))
            else:
                by_node[child.node_id].destinations.append((cell, slot_index))
    return program


def _operand_children(node: QueryNode) -> List[QueryNode]:
    """Operand producers for ``node``.

    Childless write roots (delete/update) read the target relation
    itself: synthesize a scan so the preload path fills their single
    operand slot with the target's current pages.
    """
    if isinstance(node, (DeleteNode, UpdateNode)):
        return [ScanNode(node.target_relation)]
    return list(node.children)


def _operand_name(node: QueryNode) -> str:
    if isinstance(node, ScanNode):
        return node.relation_name
    return f"node{node.node_id}"
